//! Personalized recommendation on a MovieLens-style rating network — the
//! paper's first motivating application (§I).
//!
//! Finds the significant (α,β)-community of a query user inside one
//! genre and derives two recommendation lists from it: users who share
//! the taste (friend suggestions) and movies the user has not yet rated
//! (watch suggestions).
//!
//! Run with: `cargo run -p scs-core --example recommendation --release`

use datasets::{generate_movielens, MovieLensConfig};
use scs::{Algorithm, CommunitySearch};

fn main() {
    let ml = generate_movielens(&MovieLensConfig::default());
    println!("full rating graph: {}", ml.graph.summary());

    // Work on the comedy genre (genre 0), as in the paper's case study.
    let genre = 0;
    let (g, user_map, movie_map) = ml.extract_genre(genre);
    println!("genre-{genre} subgraph: {}", g.summary());

    let search = CommunitySearch::new(g);
    let delta = search.delta();
    // A genre fan as the query user; parameters scaled from the paper's
    // q=6778, α=β=45 case study to the analogue's δ.
    let query_orig = ml.some_fan(genre);
    let query_ui = user_map
        .iter()
        .position(|&orig| orig == ml.graph.local_index(query_orig))
        .expect("fans rate in-genre movies, so they appear in the subgraph");
    let q = search.graph().upper(query_ui);
    let t = (delta as f64 * 0.7).round().max(2.0) as usize;
    println!("δ = {delta}, using α = β = {t}");

    let sc = search.significant_community(q, t, t, Algorithm::Auto);
    if sc.is_empty() {
        println!("no significant ({t},{t})-community for this user");
        return;
    }
    let (users, movies) = sc.layer_vertices();
    println!(
        "significant community: {} users, {} movies, min rating {:.1}, avg rating {:.2}",
        users.len(),
        movies.len(),
        sc.min_weight().unwrap(),
        sc.mean_weight().unwrap()
    );

    // Friend suggestions: community users other than q.
    let friends: Vec<usize> = users
        .iter()
        .filter(|&&u| u != q)
        .take(5)
        .map(|&u| user_map[search.graph().local_index(u)])
        .collect();
    println!("suggested friends (original user ids): {friends:?}");

    // Watch suggestions: community movies q has not rated.
    let unseen: Vec<usize> = movies
        .iter()
        .filter(|&&mv| !search.graph().has_edge(q, mv))
        .take(5)
        .map(|&mv| movie_map[search.graph().local_index(mv)])
        .collect();
    println!("suggested movies (original movie ids): {unseen:?}");

    // Contrast with the purely structural community: it includes the
    // planted "grump" users who watch the genre but rate it poorly.
    let structural = search.community(q, t, t);
    let extra_users = structural.layer_vertices().0.len() - users.len();
    println!(
        "structural (α,β)-community has {} more users (incl. low-raters) \
         and min rating {:.1}",
        extra_users,
        structural.min_weight().unwrap()
    );
}
