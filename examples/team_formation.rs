//! Team formation on a developer–project contribution network — the
//! paper's third motivating application (§I).
//!
//! Edge weights count tasks a developer completed in a project. Starting
//! from a key project, the significant (α,β)-community assembles a team
//! whose every member has a *proven track record* (every membership edge
//! carries at least f(R) completed tasks).
//!
//! Run with: `cargo run -p scs-core --example team_formation --release`

use bigraph::builder::{DuplicatePolicy, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 60 developers × 25 projects. A veteran core (devs 0..8, projects
    // 0..5) has deep contribution history; the rest is casual.
    let mut b = GraphBuilder::with_policy(DuplicatePolicy::Sum);
    for d in 0..8 {
        for p in 0..5 {
            b.add_edge(d, p, rng.gen_range(20..=60) as f64);
        }
    }
    for _ in 0..350 {
        let d = rng.gen_range(0..60);
        let p = rng.gen_range(0..25);
        b.add_edge(d, p, rng.gen_range(1..=8) as f64);
    }
    let g = b.build().expect("sum policy absorbs duplicates");
    println!("contribution graph: {}", g.summary());

    let search = CommunitySearch::new(g);
    let key_project = search.graph().lower(2);

    // Each team member must have worked on ≥ 3 of the team's projects;
    // each project must involve ≥ 3 team members.
    let (alpha, beta) = (3, 3);
    let team = search.significant_community(key_project, alpha, beta, Algorithm::Auto);
    if team.is_empty() {
        println!("no qualifying team around project 2");
        return;
    }
    let (devs, projects) = team.layer_vertices();
    println!(
        "\nteam for project #2: {} developers across {} projects",
        devs.len(),
        projects.len()
    );
    println!(
        "weakest membership edge: {:.0} completed tasks (guaranteed minimum)",
        team.min_weight().unwrap()
    );
    let roster: Vec<usize> = devs
        .iter()
        .map(|&d| search.graph().local_index(d))
        .collect();
    println!("roster: {roster:?}");
    assert!(
        roster.iter().all(|&d| d < 8),
        "the veteran core should form the team"
    );

    // Compare against the structural community: it admits developers with
    // one-task drive-by contributions.
    let structural = search.community(key_project, alpha, beta);
    println!(
        "\nstructural (3,3)-community: {} developers, weakest edge {:.0} task(s)",
        structural.layer_vertices().0.len(),
        structural.min_weight().unwrap()
    );
}
