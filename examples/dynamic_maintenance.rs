//! Dynamic index maintenance: keep `Iδ` consistent while edges stream in
//! and out (Section III-B, "Discussion of index maintenance").
//!
//! Run with: `cargo run -p scs-core --example dynamic_maintenance --release`

use bigraph::generators::random_bipartite;
use bigraph::weights::WeightModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, DeltaIndex, DynamicIndex};

fn main() {
    let mut rng = StdRng::seed_from_u64(2021);
    let base = random_bipartite(80, 80, 700, &mut rng);
    let g = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.apply(&base, &mut rng);
    println!("initial graph: {}", g.summary());

    let mut index = DynamicIndex::new(g);
    println!("initial δ = {}", index.index().delta());

    // Stream 30 mixed updates.
    let mut inserts = 0;
    let mut removals = 0;
    for step in 0..30 {
        if rng.gen_bool(0.5) && index.graph().n_edges() > 0 {
            let e = bigraph::EdgeId(rng.gen_range(0..index.graph().n_edges()) as u32);
            let (u, l) = index.graph().endpoints(e);
            let (ui, li) = (index.graph().local_index(u), index.graph().local_index(l));
            index.remove_edge(ui, li).expect("edge exists");
            removals += 1;
        } else {
            let (u, l) = (rng.gen_range(0..80), rng.gen_range(0..80));
            let w = rng.gen_range(1.0..10.0);
            // Ignore duplicates: insert_edge reports them as errors.
            if index.insert_edge(u, l, w).is_ok() {
                inserts += 1;
            }
        }
        if step % 10 == 9 {
            println!(
                "after {} updates: m = {}, δ = {}",
                step + 1,
                index.graph().n_edges(),
                index.index().delta()
            );
        }
    }
    println!("\napplied {inserts} insertions, {removals} removals");

    // The maintained index answers exactly like a fresh rebuild.
    let fresh = DeltaIndex::build(index.graph());
    assert_eq!(fresh.delta(), index.index().delta());
    let mut checked = 0;
    for a in 1..=fresh.delta() {
        for b in 1..=fresh.delta() {
            for vi in [0usize, 20, 40] {
                let q = index.graph().upper(vi);
                let maintained = index.query_community(q, a, b);
                let rebuilt = fresh.query_community(index.graph(), q, a, b);
                assert!(maintained.same_edges(&rebuilt));
                checked += 1;
            }
        }
    }
    println!("maintained index ≡ fresh rebuild across {checked} queries ✓");

    // And queries keep working end-to-end.
    let q = index.graph().upper(0);
    let r = index.significant_community(q, 2, 2, Algorithm::Peel);
    println!(
        "significant (2,2)-community of u0: {} edges, f(R) = {:?}",
        r.size(),
        r.min_weight()
    );
}
