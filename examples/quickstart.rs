//! Quickstart: build a small weighted bipartite graph, index it, and run
//! a significant (α,β)-community search — the paper's Figure 1 scenario —
//! then serve the same queries concurrently and read back the engine's
//! per-stage latency telemetry.
//!
//! Run with: `cargo run --example quickstart`

use bigraph::builder::figure1_example;
use scs::{Algorithm, CommunitySearch};
use scs_service::{QueryEngine, QueryRequest, ServiceConfig, Stage};

fn main() {
    // The user–movie network of the paper's Figure 1: 7 users, 7 movies,
    // edge weights are star ratings.
    let g = figure1_example();
    println!("graph: {}", g.summary());

    let search = CommunitySearch::new(g);
    println!("degeneracy δ = {}", search.delta());

    // "Eric" is upper vertex 2; search his (3,2)-community.
    let eric = search.graph().upper(2);
    let community = search.community(eric, 3, 2);
    println!(
        "\n(3,2)-community of Eric: {} edges, {} users, {} movies, min rating {:?}",
        community.size(),
        community.layer_vertices().0.len(),
        community.layer_vertices().1.len(),
        community.min_weight()
    );

    // The significant (3,2)-community keeps only the strongly rated part
    // (excluding "Taylor" and "Alien" in the paper's story).
    let sc = search.significant_community(eric, 3, 2, Algorithm::Auto);
    println!(
        "significant (3,2)-community: {} edges, min rating {:?}",
        sc.size(),
        sc.min_weight()
    );
    let users_dropped = community
        .layer_vertices()
        .0
        .iter()
        .filter(|&&u| !sc.contains_vertex(u))
        .count();
    let movies_dropped = community
        .layer_vertices()
        .1
        .iter()
        .filter(|&&l| !sc.contains_vertex(l))
        .count();
    println!(
        "excluded vs structural community: {users_dropped} user(s), {movies_dropped} movie(s)"
    );

    // All algorithms agree; pick by parameter regime (see Fig. 13).
    for algo in [Algorithm::Peel, Algorithm::Expand, Algorithm::Binary] {
        let r = search.significant_community(eric, 3, 2, algo);
        assert!(r.same_edges(&sc));
    }
    println!("\npeel / expand / binary all agree ✓");

    // The serving layer: the same graph behind a concurrent engine,
    // queried per-request and in a batch. Telemetry is on by default
    // (and allocation-free), so afterwards the stats can say where each
    // microsecond went — queue wait, snapshot, cache, kernel, publish,
    // reply.
    let engine = QueryEngine::start(
        CommunitySearch::shared(figure1_example()),
        ServiceConfig::default(),
    );
    let g = engine.current_index().0.graph().clone();
    let reqs: Vec<QueryRequest> = (0..g.n_upper())
        .map(|i| QueryRequest::new(g.upper(i), 2, 2, Algorithm::Auto))
        .collect();
    for req in &reqs {
        engine.query(*req); // cold: leaders compute
    }
    engine.query_batch(&reqs); // warm: one batch job, served from cache

    let stats = engine.stats();
    println!(
        "\nserved {} requests ({} batch job) — stage breakdown:",
        stats.completed, stats.batches
    );
    println!(
        "  {:<11} {:>6} {:>9} {:>7} {:>7}",
        "stage", "count", "mean µs", "p99 µs", "max µs"
    );
    for (stage, s) in Stage::ALL.iter().zip(stats.stages.iter()) {
        if s.count == 0 {
            continue; // stages no request passed through stay silent
        }
        println!(
            "  {:<11} {:>6} {:>9.1} {:>7} {:>7}",
            stage.name(),
            s.count,
            s.mean_us,
            s.p99_us,
            s.max_us
        );
    }
    if let Some(sq) = stats.slow.first() {
        println!("slowest retained request: {sq}");
    }
    engine.shutdown();
}
