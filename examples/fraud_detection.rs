//! Fraud detection on a customer–item purchase network — the paper's
//! second motivating application (§I).
//!
//! Fraud rings form dense bipartite blocks (fake accounts boosting the
//! same items), and because modern fraudsters use *few* accounts with
//! *many* purchases each, the per-edge transaction counts inside the
//! ring are unusually high. Given a suspicious item, the significant
//! (α,β)-community pinpoints the ring while plain (α,β)-core search also
//! drags in organically popular items.
//!
//! Run with: `cargo run -p scs-core --example fraud_detection --release`

use bigraph::builder::{DuplicatePolicy, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Organic marketplace: 400 customers × 200 items, light activity
    // (1–3 purchases per edge).
    let mut b = GraphBuilder::with_policy(DuplicatePolicy::Sum);
    for _ in 0..3_000 {
        let c = rng.gen_range(0..400);
        let i = rng.gen_range(0..200);
        b.add_edge(c, i, rng.gen_range(1..=3) as f64);
    }
    // Fraud ring: customers 400..408 boost items 200..206 with heavy
    // repeat purchases (15–30 each).
    for c in 400..408 {
        for i in 200..206 {
            b.add_edge(c, i, rng.gen_range(15..=30) as f64);
        }
        // Camouflage: each fake account also buys a few normal items.
        for _ in 0..4 {
            b.add_edge(c, rng.gen_range(0..200), rng.gen_range(1..=2) as f64);
        }
    }
    let g = b.build().expect("sum policy absorbs duplicates");
    println!("marketplace graph: {}", g.summary());

    let search = CommunitySearch::new(g);
    let suspicious_item = search.graph().lower(203);
    println!("investigating item #203 (δ = {})", search.delta());

    // Ring members each bought ≥ 5 boosted items, boosted items were each
    // bought by ≥ 5 ring members.
    let (alpha, beta) = (5, 5);
    let structural = search.community(suspicious_item, alpha, beta);
    let ring = search.significant_community(suspicious_item, alpha, beta, Algorithm::Expand);

    let (s_users, s_items) = structural.layer_vertices();
    let (r_users, r_items) = ring.layer_vertices();
    println!(
        "\n(5,5)-community: {} customers, {} items, min weight {:.0}",
        s_users.len(),
        s_items.len(),
        structural.min_weight().unwrap()
    );
    println!(
        "significant (5,5)-community: {} customers, {} items, min weight {:.0}",
        r_users.len(),
        r_items.len(),
        ring.min_weight().unwrap()
    );

    let flagged: Vec<usize> = r_users
        .iter()
        .map(|&u| search.graph().local_index(u))
        .collect();
    println!("flagged accounts: {flagged:?}");
    assert!(
        flagged.iter().all(|&c| c >= 400),
        "significant community should contain only ring accounts"
    );
    // Maximizing the minimum weight may trim ring members whose weakest
    // boost is below f(R); the point is zero false positives and a
    // recovered core.
    assert!(flagged.len() >= 5, "most of the ring recovered");
    println!(
        "\n{} of 8 planted fraud accounts recovered, 0 false positives ✓",
        flagged.len()
    );
}
