//! Vendored stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion) API used by the benches in
//! `crates/bench/benches/`.
//!
//! The build environment is offline, so instead of the real statistical
//! harness this crate provides a tiny timing loop with the same surface
//! (`Criterion`, `benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`). Each sample times one closure
//! invocation; the report prints min / mean / max per benchmark id. The
//! absolute numbers are honest wall-clock timings — only the outlier
//! rejection and plots of real criterion are missing.

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (each sample is one
    /// invocation of the routine under test).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `routine` against `input` and prints one report line.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            routine(&mut b, input);
            samples.push(b.elapsed);
        }
        report(&id.0, &samples);
        self
    }

    /// Times a routine that needs no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed);
        }
        report(&id.0, &samples);
        self
    }

    /// Ends the group (upstream criterion renders summaries here).
    pub fn finish(self) {}
}

fn report(id: &str, samples: &[Duration]) {
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
    println!(
        "{id:<40} samples={:<3} min={:>12?} mean={:>12?} max={:>12?}",
        samples.len(),
        min,
        mean,
        max
    );
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Labels a benchmark `<function>/<parameter>`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to the routine; [`Bencher::iter`] times the hot closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once under the timer. (Real criterion runs it many times
    /// per sample; one invocation keeps `cargo bench` fast offline while
    /// measuring the same code path.)
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        let out = f();
        self.elapsed += t0.elapsed();
        drop(out);
    }
}

/// Re-export so `criterion::black_box` callers work; defers to
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares `pub fn $name()` running each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` running the listed groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", "x"), &7usize, |b, &x| {
            b.iter(|| {
                calls += 1;
                black_box(x * 2)
            })
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
