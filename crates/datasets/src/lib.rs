//! # datasets — synthetic analogues of the paper's evaluation datasets
//!
//! The paper evaluates on 11 real bipartite graphs from KONECT (Table I),
//! up to 137M edges. Those traces cannot be redistributed or downloaded
//! here, so this crate builds laptop-scale synthetic analogues that
//! preserve the *relative structural properties* the experiments depend
//! on — which side is heavy, degree skew, hub extremity, δ vs α_max —
//! plus the MovieLens-style rating generator with planted taste
//! communities that the effectiveness experiments (Fig. 6/7, Table II)
//! require, and query workload sampling. See DESIGN.md §3 for the full
//! substitution argument.

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

pub mod catalog;
pub mod movielens;
pub mod workload;

pub use catalog::{DatasetSpec, WeightKind};
pub use movielens::{generate_movielens, MovieLens, MovieLensConfig, UserKind};
pub use workload::{random_core_queries, random_vertices};
