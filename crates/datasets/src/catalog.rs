//! The 11-dataset catalog mirroring Table I of the paper.
//!
//! Every spec scales its original down by a fixed factor (recorded in
//! `scale_note`) while keeping the layer-size ratio and degree skew:
//! `Lastfm` keeps its tiny, ultra-dense upper layer; `Discogs` its tiny
//! lower layer; `Wikipedia-en` its extreme upper hub (α_max in the
//! millions originally); `DBLP` stays near-uniform with a small δ;
//! `MovieLens` stays the densest. The experiment harness recomputes the
//! Table I columns (δ, α_max, β_max, |R_{δ,δ}|) on the analogues.

use bigraph::generators::{chung_lu_bipartite, power_law_degrees, ChungLuConfig};
use bigraph::weights::WeightModel;
use bigraph::BipartiteGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which weight model the dataset uses (paper §V-A: ratings where the
/// source has them, random-walk-with-restart where it does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// 1–5 star ratings (Bookcrossing, MovieLens …).
    Ratings,
    /// Uniform positive reals (interaction strengths).
    Uniform,
    /// Random walk with restart relevance — the paper's choice for the
    /// unweighted sources DT and PA.
    RandomWalk,
}

/// A synthetic analogue of one of the paper's datasets.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Two-letter tag from Table I (BS, GH, SO, …).
    pub name: &'static str,
    /// Long name of the original KONECT dataset.
    pub source: &'static str,
    /// Upper-layer size of the analogue.
    pub n_upper: usize,
    /// Lower-layer size of the analogue.
    pub n_lower: usize,
    /// Edge count of the analogue.
    pub m: usize,
    /// Power-law exponent of the upper degree sequence.
    pub gamma_upper: f64,
    /// Power-law exponent of the lower degree sequence.
    pub gamma_lower: f64,
    /// Maximum expected upper degree (before hub injection).
    pub dmax_upper: f64,
    /// Maximum expected lower degree.
    pub dmax_lower: f64,
    /// If set, one upper vertex's expected degree is raised to this
    /// fraction of the lower layer (the EN-style mega-hub).
    pub upper_hub_fraction: Option<f64>,
    /// Weight model.
    pub weights: WeightKind,
    /// Downscale factor vs the original (documentation only).
    pub scale_note: &'static str,
}

impl DatasetSpec {
    /// All 11 analogues in Table I order.
    pub fn catalog() -> Vec<DatasetSpec> {
        use WeightKind::*;
        vec![
            DatasetSpec {
                name: "BS",
                source: "Bookcrossing",
                n_upper: 3_900,
                n_lower: 9_300,
                m: 21_600,
                gamma_upper: 2.2,
                gamma_lower: 2.4,
                dmax_upper: 450.0,
                dmax_lower: 60.0,
                upper_hub_fraction: None,
                weights: Ratings,
                scale_note: "1/20",
            },
            DatasetSpec {
                name: "GH",
                source: "Github",
                n_upper: 2_800,
                n_lower: 6_000,
                m: 22_000,
                gamma_upper: 2.0,
                gamma_lower: 1.9,
                dmax_upper: 60.0,
                dmax_lower: 220.0,
                upper_hub_fraction: None,
                weights: Uniform,
                scale_note: "1/20",
            },
            DatasetSpec {
                name: "SO",
                source: "StackOverflow",
                n_upper: 13_600,
                n_lower: 2_400,
                m: 32_000,
                gamma_upper: 2.1,
                gamma_lower: 1.8,
                dmax_upper: 160.0,
                dmax_lower: 250.0,
                upper_hub_fraction: None,
                weights: Uniform,
                scale_note: "1/40",
            },
            DatasetSpec {
                name: "LS",
                source: "Lastfm",
                n_upper: 200,
                n_lower: 13_500,
                m: 55_000,
                gamma_upper: 1.6,
                gamma_lower: 2.3,
                dmax_upper: 1_800.0,
                dmax_lower: 40.0,
                upper_hub_fraction: None,
                weights: Uniform,
                scale_note: "1/80 edges, upper layer kept small & dense",
            },
            DatasetSpec {
                name: "DT",
                source: "Discogs",
                n_upper: 20_000,
                n_lower: 96,
                m: 72_000,
                gamma_upper: 2.3,
                gamma_lower: 1.5,
                dmax_upper: 25.0,
                dmax_lower: 4_000.0,
                upper_hub_fraction: None,
                weights: RandomWalk,
                scale_note: "1/80 edges, lower layer kept tiny",
            },
            DatasetSpec {
                name: "AR",
                source: "Amazon",
                n_upper: 27_000,
                n_lower: 15_000,
                m: 72_000,
                gamma_upper: 2.4,
                gamma_lower: 2.3,
                dmax_upper: 160.0,
                dmax_lower: 60.0,
                upper_hub_fraction: None,
                weights: Ratings,
                scale_note: "1/80",
            },
            DatasetSpec {
                name: "PA",
                source: "DBLP",
                n_upper: 7_200,
                n_lower: 20_000,
                m: 43_000,
                gamma_upper: 2.8,
                gamma_lower: 3.2,
                dmax_upper: 35.0,
                dmax_lower: 8.0,
                upper_hub_fraction: None,
                weights: RandomWalk,
                scale_note: "1/200, near-uniform degrees ⇒ small δ",
            },
            DatasetSpec {
                name: "ML",
                source: "MovieLens-25M",
                n_upper: 2_600,
                n_lower: 1_500,
                m: 62_000,
                gamma_upper: 1.7,
                gamma_lower: 1.6,
                dmax_upper: 700.0,
                dmax_lower: 900.0,
                upper_hub_fraction: None,
                weights: Ratings,
                scale_note: "1/400, kept the densest dataset",
            },
            DatasetSpec {
                name: "DUI",
                source: "Delicious-ui",
                n_upper: 830,
                n_lower: 33_800,
                m: 102_000,
                gamma_upper: 1.6,
                gamma_lower: 2.5,
                dmax_upper: 2_500.0,
                dmax_lower: 35.0,
                upper_hub_fraction: None,
                weights: Uniform,
                scale_note: "1/1000",
            },
            DatasetSpec {
                name: "EN",
                source: "Wikipedia-en",
                n_upper: 3_800,
                n_lower: 21_500,
                m: 122_000,
                gamma_upper: 1.9,
                gamma_lower: 2.2,
                dmax_upper: 400.0,
                dmax_lower: 90.0,
                upper_hub_fraction: Some(0.85),
                weights: Uniform,
                scale_note: "1/1000, keeps the α_max ≫ δ mega-hub",
            },
            DatasetSpec {
                name: "DTI",
                source: "Delicious-ti",
                n_upper: 3_000,
                n_lower: 22_500,
                m: 91_000,
                gamma_upper: 1.8,
                gamma_lower: 2.4,
                dmax_upper: 900.0,
                dmax_lower: 45.0,
                upper_hub_fraction: Some(0.6),
                weights: Uniform,
                scale_note: "1/1500",
            },
        ]
    }

    /// Looks a spec up by its Table I tag.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::catalog().into_iter().find(|s| s.name == name)
    }

    /// Returns a proportionally shrunk copy (for fast tests): layer
    /// sizes and edge count multiplied by `factor`, degree caps adjusted.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let mut s = self.clone();
        s.n_upper = ((s.n_upper as f64 * factor) as usize).max(8);
        s.n_lower = ((s.n_lower as f64 * factor) as usize).max(8);
        s.m = ((s.m as f64 * factor) as usize).max(16);
        s.dmax_upper = (s.dmax_upper * factor).max(4.0);
        s.dmax_lower = (s.dmax_lower * factor).max(4.0);
        s
    }

    /// Builds the weighted analogue deterministically from `seed`.
    pub fn build(&self, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(self.name));
        let mut upper = power_law_degrees(
            self.n_upper,
            self.gamma_upper,
            1.0,
            self.dmax_upper,
            &mut rng,
        );
        let lower = power_law_degrees(
            self.n_lower,
            self.gamma_lower,
            1.0,
            self.dmax_lower,
            &mut rng,
        );
        if let Some(frac) = self.upper_hub_fraction {
            // One mega-hub adjacent to most of the lower layer, as in
            // Wikipedia-en where a bot account touches millions of pages.
            upper[0] = self.n_lower as f64 * frac;
        }
        let cfg = ChungLuConfig {
            upper_degrees: upper,
            lower_degrees: lower,
            m: self.m,
        };
        let g = chung_lu_bipartite(&cfg, &mut rng);
        let model = match self.weights {
            WeightKind::Ratings => WeightModel::Ratings { levels: 5 },
            WeightKind::Uniform => WeightModel::Uniform { lo: 0.0, hi: 1.0 },
            WeightKind::RandomWalk => WeightModel::RandomWalk {
                restart: 0.15,
                steps_per_vertex: 60,
                scale: 100.0,
            },
        };
        model.apply(&g, &mut rng)
    }
}

/// Tiny deterministic string hash so each dataset gets a distinct stream
/// from the same user seed.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bicore::degeneracy::degeneracy;

    #[test]
    fn catalog_has_eleven_unique_names() {
        let cat = DatasetSpec::catalog();
        assert_eq!(cat.len(), 11);
        let mut names: Vec<_> = cat.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        assert!(DatasetSpec::by_name("ML").is_some());
        assert!(DatasetSpec::by_name("XX").is_none());
    }

    #[test]
    fn small_builds_have_expected_shape() {
        // Build 1/10-scale versions quickly and sanity-check structure.
        for spec in DatasetSpec::catalog() {
            let small = spec.scaled(0.1);
            let g = small.build(42);
            assert_eq!(
                g.n_edges(),
                small.m.min(small.n_upper * small.n_lower),
                "{}",
                spec.name
            );
            assert!(g.n_upper() <= small.n_upper);
            assert!(g.min_weight().unwrap_or(0.0) >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::by_name("BS").unwrap().scaled(0.05);
        let g1 = spec.build(7);
        let g2 = spec.build(7);
        assert_eq!(g1.n_edges(), g2.n_edges());
        for e in g1.edge_ids() {
            assert_eq!(g1.endpoints(e), g2.endpoints(e));
            assert_eq!(g1.weight(e), g2.weight(e));
        }
        let g3 = spec.build(8);
        let differs = g1
            .edge_ids()
            .any(|e| e.index() < g3.n_edges() && g1.endpoints(e) != g3.endpoints(e));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn relative_density_shape_preserved() {
        // ML must be the densest analogue, PA among the sparsest in δ.
        let ml = DatasetSpec::by_name("ML").unwrap().scaled(0.15).build(1);
        let pa = DatasetSpec::by_name("PA").unwrap().scaled(0.15).build(1);
        let d_ml = degeneracy(&ml);
        let d_pa = degeneracy(&pa);
        assert!(
            d_ml > 2 * d_pa.max(1),
            "δ(ML)={d_ml} should dominate δ(PA)={d_pa}"
        );
    }

    #[test]
    fn hub_present_in_en() {
        let en = DatasetSpec::by_name("EN").unwrap().scaled(0.1).build(3);
        let max_deg = en.max_degree(bigraph::Side::Upper);
        let delta = degeneracy(&en);
        assert!(
            max_deg > 10 * delta.max(1),
            "EN needs α_max ({max_deg}) ≫ δ ({delta})"
        );
    }

    #[test]
    fn ratings_datasets_have_star_weights() {
        let bs = DatasetSpec::by_name("BS").unwrap().scaled(0.05).build(9);
        assert!(bs
            .weights()
            .iter()
            .all(|&w| w.fract() == 0.0 && (1.0..=5.0).contains(&w)));
    }
}

/// Writes every catalog analogue as a 0-based edge-list TSV into `dir`
/// (created if missing), returning the file paths in Table I order.
/// Useful for driving the `scs` CLI or external tools.
pub fn export_catalog(
    dir: &std::path::Path,
    scale: f64,
    seed: u64,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut out = Vec::new();
    for spec in DatasetSpec::catalog() {
        let spec = if scale < 1.0 {
            spec.scaled(scale)
        } else {
            spec
        };
        let g = spec.build(seed);
        let path = dir.join(format!("{}.tsv", spec.name.to_lowercase()));
        bigraph::edgelist::write_edgelist_file(&g, &path)?;
        out.push(path);
    }
    Ok(out)
}

#[cfg(test)]
mod export_tests {
    use super::*;
    use bigraph::edgelist::{read_edgelist_file, ReadOptions};

    #[test]
    fn export_roundtrips() {
        let dir = std::env::temp_dir().join("scs_catalog_export_test");
        let paths = export_catalog(&dir, 0.02, 5).unwrap();
        assert_eq!(paths.len(), 11);
        for p in &paths {
            let g = read_edgelist_file(p, &ReadOptions::default()).unwrap();
            assert!(g.n_edges() > 0, "{}", p.display());
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
