//! Query workload generation.
//!
//! The paper's efficiency experiments "randomly select 100 queries and
//! take the average" — implicitly queries that have a nonempty result at
//! the tested (α,β). [`random_core_queries`] samples vertices from the
//! (α,β)-core; [`random_vertices`] samples unconditionally (for
//! robustness testing with possibly-empty answers).

use bicore::abcore::abcore;
use bigraph::{BipartiteGraph, Vertex};
use rand::Rng;

/// Samples `n` vertices uniformly from the whole graph (any side),
/// with replacement. Empty graph yields an empty workload.
pub fn random_vertices<R: Rng>(g: &BipartiteGraph, n: usize, rng: &mut R) -> Vec<Vertex> {
    if g.n_vertices() == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|_| bigraph::Vertex(rng.gen_range(0..g.n_vertices()) as u32))
        .collect()
}

/// Samples `n` query vertices uniformly from the (α,β)-core, with
/// replacement, so every query has a nonempty community. Returns an
/// empty vector when the core is empty.
pub fn random_core_queries<R: Rng>(
    g: &BipartiteGraph,
    alpha: usize,
    beta: usize,
    n: usize,
    rng: &mut R,
) -> Vec<Vertex> {
    let core = abcore(g, alpha, beta);
    let members: Vec<Vertex> = core.vertices(g).collect();
    if members.is_empty() {
        return Vec::new();
    }
    (0..n)
        .map(|_| members[rng.gen_range(0..members.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generators::{complete_biclique, random_bipartite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn core_queries_are_core_members() {
        let mut rng = StdRng::seed_from_u64(1000);
        let g = random_bipartite(40, 40, 300, &mut rng);
        let qs = random_core_queries(&g, 2, 2, 50, &mut rng);
        let core = abcore(&g, 2, 2);
        assert!(!qs.is_empty());
        for q in qs {
            assert!(core.contains(q));
        }
    }

    #[test]
    fn empty_core_yields_empty_workload() {
        let g = complete_biclique(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_core_queries(&g, 5, 5, 10, &mut rng).is_empty());
    }

    #[test]
    fn random_vertices_in_range() {
        let g = complete_biclique(3, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let vs = random_vertices(&g, 25, &mut rng);
        assert_eq!(vs.len(), 25);
        assert!(vs.iter().all(|v| v.index() < g.n_vertices()));
    }
}
