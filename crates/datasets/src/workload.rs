//! Query workload generation.
//!
//! The paper's efficiency experiments "randomly select 100 queries and
//! take the average" — implicitly queries that have a nonempty result at
//! the tested (α,β). [`random_core_queries`] samples vertices from the
//! (α,β)-core; [`random_vertices`] samples unconditionally (for
//! robustness testing with possibly-empty answers).

use bicore::abcore::abcore;
use bigraph::{BipartiteGraph, Vertex};
use rand::Rng;

/// Samples `n` vertices uniformly from the whole graph (any side),
/// with replacement. Empty graph yields an empty workload.
pub fn random_vertices<R: Rng>(g: &BipartiteGraph, n: usize, rng: &mut R) -> Vec<Vertex> {
    if g.n_vertices() == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|_| bigraph::Vertex(rng.gen_range(0..g.n_vertices()) as u32))
        .collect()
}

/// The vertices of the (α,β)-core in a deterministic (vertex-id) order
/// — the population every core-restricted workload samples from. Empty
/// when the core is empty. Exposed so callers that need a non-uniform
/// draw (e.g. a Zipf-skewed query stream) can weight the same
/// population [`random_core_queries`] uses.
pub fn core_members(g: &BipartiteGraph, alpha: usize, beta: usize) -> Vec<Vertex> {
    abcore(g, alpha, beta).vertices(g).collect()
}

/// Samples `n` query vertices uniformly from the (α,β)-core, with
/// replacement, so every query has a nonempty community. Returns an
/// empty vector when the core is empty.
pub fn random_core_queries<R: Rng>(
    g: &BipartiteGraph,
    alpha: usize,
    beta: usize,
    n: usize,
    rng: &mut R,
) -> Vec<Vertex> {
    let members = core_members(g, alpha, beta);
    if members.is_empty() {
        return Vec::new();
    }
    (0..n)
        .map(|_| members[rng.gen_range(0..members.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generators::{complete_biclique, random_bipartite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn core_queries_are_core_members() {
        let mut rng = StdRng::seed_from_u64(1000);
        let g = random_bipartite(40, 40, 300, &mut rng);
        let qs = random_core_queries(&g, 2, 2, 50, &mut rng);
        let core = abcore(&g, 2, 2);
        assert!(!qs.is_empty());
        for q in qs {
            assert!(core.contains(q));
        }
    }

    #[test]
    fn core_members_are_deterministic_and_in_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_bipartite(40, 40, 300, &mut rng);
        let m = core_members(&g, 2, 2);
        assert_eq!(m, core_members(&g, 2, 2), "population order must be stable");
        let core = abcore(&g, 2, 2);
        assert!(!m.is_empty());
        assert!(m.iter().all(|&v| core.contains(v)));
    }

    #[test]
    fn empty_core_yields_empty_workload() {
        let g = complete_biclique(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_core_queries(&g, 5, 5, 10, &mut rng).is_empty());
    }

    #[test]
    fn random_vertices_in_range() {
        let g = complete_biclique(3, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let vs = random_vertices(&g, 25, &mut rng);
        assert_eq!(vs.len(), 25);
        assert!(vs.iter().all(|v| v.index() < g.n_vertices()));
    }
}
