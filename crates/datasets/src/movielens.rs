//! MovieLens-style rating generator with planted taste communities.
//!
//! The paper's effectiveness study runs on the real MovieLens-25M
//! user–movie graph, extracting the comedy-genre subgraph and showing
//! that the significant (α,β)-community keeps exactly the users who give
//! many *high* ratings while (α,β)-core/bitruss/biclique keep anyone
//! structurally embedded, and `C4★` keeps anyone touching a high-rated
//! movie. This generator plants precisely those user archetypes per
//! genre:
//!
//! * **fans** — rate many in-genre movies, almost all 4–5 stars;
//! * **grumps** — watch just as many in-genre movies but rate them low
//!   (the "dislike users" of Fig. 6(b): structurally cohesive, weight
//!   poor);
//! * **casuals** — a handful of random ratings across genres.

use bigraph::builder::{DuplicatePolicy, GraphBuilder};
use bigraph::{BipartiteGraph, Vertex, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_movielens`].
#[derive(Debug, Clone)]
pub struct MovieLensConfig {
    /// Number of genres.
    pub n_genres: usize,
    /// Movies per genre.
    pub movies_per_genre: usize,
    /// Fans per genre.
    pub fans_per_genre: usize,
    /// Grumps (dislike users) per genre.
    pub grumps_per_genre: usize,
    /// Casual users (global, not tied to a genre).
    pub n_casuals: usize,
    /// How many in-genre movies each fan/grump rates.
    pub ratings_per_fan: usize,
    /// How many random movies each casual rates.
    pub ratings_per_casual: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovieLensConfig {
    fn default() -> Self {
        MovieLensConfig {
            n_genres: 4,
            movies_per_genre: 60,
            fans_per_genre: 80,
            grumps_per_genre: 25,
            n_casuals: 300,
            ratings_per_fan: 35,
            ratings_per_casual: 5,
            seed: 20210411,
        }
    }
}

/// Output of [`generate_movielens`]: the rating graph plus ground truth.
#[derive(Debug, Clone)]
pub struct MovieLens {
    /// The user–movie rating graph (upper = users, lower = movies,
    /// weights = star ratings in 1..=5 with half-star granularity).
    pub graph: BipartiteGraph,
    /// Genre of each movie (by lower index).
    pub movie_genre: Vec<usize>,
    /// Archetype of each user (by upper index).
    pub user_kind: Vec<UserKind>,
    config: MovieLensConfig,
}

/// Ground-truth user archetypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserKind {
    /// Fan of the given genre: dense, high ratings.
    Fan(usize),
    /// Dislike user of the given genre: dense, low ratings.
    Grump(usize),
    /// Sparse random rater.
    Casual,
}

impl MovieLens {
    /// The generator configuration used.
    pub fn config(&self) -> &MovieLensConfig {
        &self.config
    }

    /// A representative fan of `genre` (useful as a query vertex).
    pub fn some_fan(&self, genre: usize) -> Vertex {
        let idx = self
            .user_kind
            .iter()
            .position(|&k| k == UserKind::Fan(genre))
            .expect("every genre has fans");
        self.graph.upper(idx)
    }

    /// Extracts the subgraph of ratings on `genre`'s movies as a fresh
    /// graph with compacted ids. Returns `(graph, user_map, movie_map)`
    /// where the maps give, per new index, the original upper/lower
    /// index.
    pub fn extract_genre(&self, genre: usize) -> (BipartiteGraph, Vec<usize>, Vec<usize>) {
        let g = &self.graph;
        let mut user_map: Vec<usize> = Vec::new();
        let mut user_new = vec![usize::MAX; g.n_upper()];
        let mut movie_map: Vec<usize> = Vec::new();
        let mut movie_new = vec![usize::MAX; g.n_lower()];
        let mut b = GraphBuilder::with_policy(DuplicatePolicy::Error);
        for e in g.edge_ids() {
            let (u, l) = g.endpoints(e);
            let li = g.local_index(l);
            if self.movie_genre[li] != genre {
                continue;
            }
            let ui = g.local_index(u);
            if user_new[ui] == usize::MAX {
                user_new[ui] = user_map.len();
                user_map.push(ui);
            }
            if movie_new[li] == usize::MAX {
                movie_new[li] = movie_map.len();
                movie_map.push(li);
            }
            b.add_edge(user_new[ui], movie_new[li], g.weight(e));
        }
        (
            b.build().expect("genre extraction preserves uniqueness"),
            user_map,
            movie_map,
        )
    }
}

/// Generates the planted-community rating graph.
pub fn generate_movielens(cfg: &MovieLensConfig) -> MovieLens {
    assert!(cfg.n_genres > 0 && cfg.movies_per_genre > 1, "need movies");
    assert!(
        cfg.ratings_per_fan <= cfg.movies_per_genre,
        "fans cannot rate more movies than the genre has"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_movies = cfg.n_genres * cfg.movies_per_genre;
    let movie_genre: Vec<usize> = (0..n_movies).map(|i| i / cfg.movies_per_genre).collect();

    let mut user_kind: Vec<UserKind> = Vec::new();
    for genre in 0..cfg.n_genres {
        user_kind.extend(std::iter::repeat_n(
            UserKind::Fan(genre),
            cfg.fans_per_genre,
        ));
        user_kind.extend(std::iter::repeat_n(
            UserKind::Grump(genre),
            cfg.grumps_per_genre,
        ));
    }
    user_kind.extend(std::iter::repeat_n(UserKind::Casual, cfg.n_casuals));

    let mut b = GraphBuilder::with_policy(DuplicatePolicy::KeepFirst);
    b.ensure_lower(n_movies - 1);
    b.ensure_upper(user_kind.len() - 1);

    let pick_movies = |genre: Option<usize>, k: usize, rng: &mut StdRng| -> Vec<usize> {
        // Sample k distinct movies, within a genre or globally.
        let (lo, hi) = match genre {
            Some(gid) => (gid * cfg.movies_per_genre, (gid + 1) * cfg.movies_per_genre),
            None => (0, n_movies),
        };
        let mut chosen: Vec<usize> = (lo..hi).collect();
        // Partial Fisher–Yates.
        let k = k.min(chosen.len());
        for i in 0..k {
            let j = rng.gen_range(i..chosen.len());
            chosen.swap(i, j);
        }
        chosen.truncate(k);
        chosen
    };

    for (ui, &kind) in user_kind.iter().enumerate() {
        match kind {
            UserKind::Fan(genre) => {
                for movie in pick_movies(Some(genre), cfg.ratings_per_fan, &mut rng) {
                    let rating: Weight = if rng.gen_bool(0.8) {
                        if rng.gen_bool(0.6) {
                            5.0
                        } else {
                            4.5
                        }
                    } else {
                        4.0
                    };
                    b.add_edge(ui, movie, rating);
                }
                // A few off-genre ratings, mixed quality.
                for movie in pick_movies(None, 3, &mut rng) {
                    b.add_edge(ui, movie, rng.gen_range(2..=10) as Weight / 2.0);
                }
            }
            UserKind::Grump(genre) => {
                for movie in pick_movies(Some(genre), cfg.ratings_per_fan, &mut rng) {
                    let rating: Weight = rng.gen_range(2..=6) as Weight / 2.0; // 1.0–3.0
                    b.add_edge(ui, movie, rating);
                }
            }
            UserKind::Casual => {
                for movie in pick_movies(None, cfg.ratings_per_casual, &mut rng) {
                    let rating = rng.gen_range(2..=10) as Weight / 2.0;
                    b.add_edge(ui, movie, rating);
                }
            }
        }
    }
    MovieLens {
        graph: b.build().expect("KeepFirst dedup cannot fail"),
        movie_genre,
        user_kind,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_config() {
        let cfg = MovieLensConfig::default();
        let ml = generate_movielens(&cfg);
        assert_eq!(ml.graph.n_lower(), cfg.n_genres * cfg.movies_per_genre);
        assert_eq!(
            ml.graph.n_upper(),
            cfg.n_genres * (cfg.fans_per_genre + cfg.grumps_per_genre) + cfg.n_casuals
        );
        assert_eq!(ml.movie_genre.len(), ml.graph.n_lower());
        assert_eq!(ml.user_kind.len(), ml.graph.n_upper());
    }

    #[test]
    fn fans_rate_high_grumps_low() {
        let ml = generate_movielens(&MovieLensConfig::default());
        let g = &ml.graph;
        let mut fan_sum = 0.0;
        let mut fan_n = 0usize;
        let mut grump_sum = 0.0;
        let mut grump_n = 0usize;
        for u in g.upper_vertices() {
            let kind = ml.user_kind[g.local_index(u)];
            for &e in g.incident_edges(u) {
                match kind {
                    UserKind::Fan(_) => {
                        fan_sum += g.weight(e);
                        fan_n += 1;
                    }
                    UserKind::Grump(_) => {
                        grump_sum += g.weight(e);
                        grump_n += 1;
                    }
                    UserKind::Casual => {}
                }
            }
        }
        let fan_avg = fan_sum / fan_n as f64;
        let grump_avg = grump_sum / grump_n as f64;
        assert!(fan_avg > 4.2, "fan avg {fan_avg}");
        assert!(grump_avg < 2.5, "grump avg {grump_avg}");
    }

    #[test]
    fn genre_extraction_is_consistent() {
        let ml = generate_movielens(&MovieLensConfig::default());
        let (sub, user_map, movie_map) = ml.extract_genre(1);
        assert!(sub.n_edges() > 0);
        // Every extracted movie belongs to genre 1.
        for &orig in &movie_map {
            assert_eq!(ml.movie_genre[orig], 1);
        }
        // Spot-check edge weights survive.
        let e0 = bigraph::EdgeId(0);
        let (u, l) = sub.endpoints(e0);
        let orig_u = ml.graph.upper(user_map[sub.local_index(u)]);
        let orig_l = ml.graph.lower(movie_map[sub.local_index(l)]);
        let orig_e = ml.graph.find_edge(orig_u, orig_l).expect("edge exists");
        assert_eq!(sub.weight(e0), ml.graph.weight(orig_e));
    }

    #[test]
    fn some_fan_is_a_fan() {
        let ml = generate_movielens(&MovieLensConfig::default());
        let f = ml.some_fan(2);
        assert_eq!(ml.user_kind[ml.graph.local_index(f)], UserKind::Fan(2));
    }

    #[test]
    fn deterministic() {
        let a = generate_movielens(&MovieLensConfig::default());
        let b = generate_movielens(&MovieLensConfig::default());
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
    }
}
