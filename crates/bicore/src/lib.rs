//! # bicore — (α,β)-core machinery for bipartite graphs
//!
//! Everything the significant (α,β)-community search library needs to
//! reason about (α,β)-cores (Definition 1 of Wang et al., ICDE 2021):
//!
//! * [`abcore`](mod@abcore) — online peeling computation of the (α,β)-core and the
//!   online query algorithm `Qo` (Ding et al., CIKM'17);
//! * [`decompose`] — α-offset/β-offset decomposition (`s_a(u,α)`,
//!   `s_b(u,β)`, Definition 6), the kernel shared by every index;
//! * [`degeneracy`](mod@degeneracy) — the degeneracy δ (Definition 7) via unipartite
//!   k-core decomposition;
//! * [`bicore_index`] — the bicore index `Iv` of Liu et al. (WWW'19) and
//!   its query algorithm `Qv`, the indexed baseline of the paper's Fig. 8.

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

pub mod abcore;
pub mod bicore_index;
pub mod decompose;
pub mod degeneracy;

pub use abcore::{
    abcore, abcore_community, abcore_community_in, abcore_community_into, abcore_in, CoreMembership,
};
pub use bicore_index::BicoreIndex;
pub use decompose::{
    alpha_offsets, alpha_offsets_into, beta_offsets, beta_offsets_into, OffsetTable,
};
pub use degeneracy::{degeneracy, unipartite_core_numbers};
