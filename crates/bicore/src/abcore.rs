//! Online (α,β)-core computation and the online query algorithm `Qo`.
//!
//! `Qo` (Ding et al., CIKM'17) computes the (α,β)-core by peeling the
//! whole graph from scratch and then extracts the connected component of
//! the query vertex — the index-free baseline of the paper's Fig. 8.

use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};
use std::collections::VecDeque;

/// Vertex membership of an (α,β)-core, plus live degrees.
#[derive(Debug, Clone)]
pub struct CoreMembership {
    alpha: usize,
    beta: usize,
    alive: Vec<bool>,
    degree: Vec<u32>,
    n_alive: usize,
}

impl CoreMembership {
    /// The α constraint this membership was computed for.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The β constraint this membership was computed for.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// `true` iff `v` belongs to the (α,β)-core.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        self.alive[v.index()]
    }

    /// Degree of `v` inside the core (0 if not a member).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.degree[v.index()] as usize
    }

    /// Number of member vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_alive
    }

    /// `true` iff the core is empty.
    pub fn is_empty(&self) -> bool {
        self.n_alive == 0
    }

    /// Member vertices in id order.
    pub fn vertices<'a>(&'a self, g: &'a BipartiteGraph) -> impl Iterator<Item = Vertex> + 'a {
        g.vertices().filter(move |&v| self.alive[v.index()])
    }

    /// All edges of the core (both endpoints alive), as a [`Subgraph`].
    pub fn edges<'g>(&self, g: &'g BipartiteGraph) -> Subgraph<'g> {
        let edges: Vec<EdgeId> = g
            .edge_ids()
            .filter(|&e| {
                let (u, l) = g.endpoints(e);
                self.alive[u.index()] && self.alive[l.index()]
            })
            .collect();
        Subgraph::from_edges(g, edges)
    }
}

/// Computes the (α,β)-core of `g` by iterative peeling — `O(m)` time.
///
/// The core is the *maximal* subgraph in which every upper vertex has
/// degree ≥ α and every lower vertex degree ≥ β (Definition 1); peeling
/// under-degree vertices until fixpoint yields exactly that subgraph.
pub fn abcore(g: &BipartiteGraph, alpha: usize, beta: usize) -> CoreMembership {
    assert!(alpha >= 1 && beta >= 1, "degree constraints must be >= 1");
    let n = g.n_vertices();
    let mut degree: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    let mut alive = vec![true; n];
    let mut n_alive = n;
    let mut stack: Vec<Vertex> = Vec::new();
    for v in g.vertices() {
        let need = if g.is_upper(v) { alpha } else { beta } as u32;
        if degree[v.index()] < need {
            alive[v.index()] = false;
            stack.push(v);
        }
    }
    n_alive -= stack.len();
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            let wi = w.index();
            if !alive[wi] {
                continue;
            }
            degree[wi] -= 1;
            let need = if g.is_upper(w) { alpha } else { beta } as u32;
            if degree[wi] < need {
                alive[wi] = false;
                n_alive -= 1;
                stack.push(w);
            }
        }
    }
    for v in g.vertices() {
        if !alive[v.index()] {
            degree[v.index()] = 0;
        }
    }
    CoreMembership {
        alpha,
        beta,
        alive,
        degree,
        n_alive,
    }
}

/// The online query algorithm `Qo`: computes the (α,β)-community
/// `C_{α,β}(q)` — the connected component of `q` inside the (α,β)-core —
/// by peeling from scratch and BFS. `O(m)` time per query.
///
/// Returns the empty subgraph when `q` is not in the (α,β)-core.
pub fn abcore_community<'g>(
    g: &'g BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    let core = abcore(g, alpha, beta);
    community_in_core(g, &core, q)
}

/// BFS extraction of `q`'s component within a precomputed core
/// membership. Shared by `Qo` and `Qv`.
pub fn community_in_core<'g>(
    g: &'g BipartiteGraph,
    core: &CoreMembership,
    q: Vertex,
) -> Subgraph<'g> {
    if !core.contains(q) {
        return Subgraph::empty(g);
    }
    let mut visited = vec![false; g.n_vertices()];
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut queue = VecDeque::new();
    visited[q.index()] = true;
    queue.push_back(q);
    while let Some(x) = queue.pop_front() {
        for (w, e) in g.neighbors_with_edges(x) {
            if !core.contains(w) {
                continue;
            }
            if g.is_upper(x) {
                edges.push(e); // record each edge from its upper endpoint
            }
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    Subgraph::from_edges(g, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::{figure2_example, GraphBuilder};
    use bigraph::generators::{complete_biclique, random_bipartite};
    use bigraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn biclique_core() {
        let g = complete_biclique(3, 4);
        let core = abcore(&g, 4, 3);
        assert_eq!(core.n_vertices(), 7);
        assert!(!core.is_empty());
        let too_much = abcore(&g, 5, 3);
        assert!(too_much.is_empty());
        assert_eq!(core.alpha(), 4);
        assert_eq!(core.beta(), 3);
    }

    #[test]
    fn degrees_inside_core() {
        let mut b = GraphBuilder::new();
        // 2x2 biclique + pendant.
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        b.add_edge(1, 1, 1.0);
        b.add_edge(2, 0, 1.0);
        let g = b.build().unwrap();
        let core = abcore(&g, 2, 2);
        assert!(core.contains(g.upper(0)));
        assert!(!core.contains(g.upper(2)));
        // l0 has raw degree 3 but core degree 2.
        assert_eq!(core.degree(g.lower(0)), 2);
        assert_eq!(core.degree(g.upper(2)), 0);
        assert_eq!(core.vertices(&g).count(), 4);
        assert_eq!(core.edges(&g).size(), 4);
    }

    #[test]
    fn matches_generic_peel() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = random_bipartite(25, 25, 120, &mut rng);
            for a in 1..=4 {
                for b in 1..=4 {
                    let fast = abcore(&g, a, b).edges(&g);
                    let brute = Subgraph::full(&g).peel_to_core(a, b);
                    assert!(fast.same_edges(&brute), "α={a} β={b}");
                }
            }
        }
    }

    #[test]
    fn figure2_community_of_u3() {
        let g = figure2_example();
        let u3 = g.upper(2);
        let c = abcore_community(&g, u3, 2, 2);
        // Paper: Figure 2(b) — 13 edges over u1..u4, v1..v4.
        assert_eq!(c.size(), 13);
        let (us, ls) = c.layer_vertices();
        assert_eq!(us.len(), 4);
        assert_eq!(ls.len(), 4);
        assert!(c.is_connected());
        assert!(c.satisfies_degrees(2, 2));
    }

    #[test]
    fn missing_query_vertex_gives_empty() {
        let g = figure2_example();
        // u5 (paper id) has degree 1, so it is not in the (2,2)-core.
        let c = abcore_community(&g, g.upper(4), 2, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn community_is_component_not_whole_core() {
        // Two disjoint 2x2 bicliques.
        let mut b = GraphBuilder::new();
        for (uo, lo) in [(0, 0), (2, 2)] {
            for du in 0..2 {
                for dl in 0..2 {
                    b.add_edge(uo + du, lo + dl, 1.0);
                }
            }
        }
        let g = b.build().unwrap();
        let core = abcore(&g, 2, 2);
        assert_eq!(core.n_vertices(), 8);
        let c = abcore_community(&g, g.upper(0), 2, 2);
        assert_eq!(c.size(), 4);
        assert!(!c.contains_vertex(g.upper(2)));
    }

    #[test]
    #[should_panic(expected = "degree constraints")]
    fn zero_alpha_panics() {
        let g = complete_biclique(2, 2);
        abcore(&g, 0, 1);
    }
}
