//! Online (α,β)-core computation and the online query algorithm `Qo`.
//!
//! `Qo` (Ding et al., CIKM'17) computes the (α,β)-core by peeling the
//! whole graph from scratch and then extracts the connected component of
//! the query vertex — the index-free baseline of the paper's Fig. 8.

use bigraph::arena::{ArenaEdges, ResultArena};
use bigraph::workspace::Workspace;
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};
use std::collections::VecDeque;

/// Vertex membership of an (α,β)-core, plus live degrees.
#[derive(Debug, Clone)]
pub struct CoreMembership {
    alpha: usize,
    beta: usize,
    alive: Vec<bool>,
    degree: Vec<u32>,
    n_alive: usize,
}

impl CoreMembership {
    /// The α constraint this membership was computed for.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The β constraint this membership was computed for.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// `true` iff `v` belongs to the (α,β)-core.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        self.alive[v.index()]
    }

    /// Degree of `v` inside the core (0 if not a member).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.degree[v.index()] as usize
    }

    /// Number of member vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_alive
    }

    /// `true` iff the core is empty.
    pub fn is_empty(&self) -> bool {
        self.n_alive == 0
    }

    /// Member vertices in id order.
    pub fn vertices<'a>(&'a self, g: &'a BipartiteGraph) -> impl Iterator<Item = Vertex> + 'a {
        g.vertices().filter(move |&v| self.alive[v.index()])
    }

    /// All edges of the core (both endpoints alive), as a [`Subgraph`].
    pub fn edges<'g>(&self, g: &'g BipartiteGraph) -> Subgraph<'g> {
        let edges: Vec<EdgeId> = g
            .edge_ids()
            .filter(|&e| {
                let (u, l) = g.endpoints(e);
                self.alive[u.index()] && self.alive[l.index()]
            })
            .collect();
        Subgraph::from_edges(g, edges)
    }
}

/// Computes the (α,β)-core of `g` by iterative peeling — `O(m)` time.
///
/// The core is the *maximal* subgraph in which every upper vertex has
/// degree ≥ α and every lower vertex degree ≥ β (Definition 1); peeling
/// under-degree vertices until fixpoint yields exactly that subgraph.
///
/// Thin wrapper over [`abcore_in`] that allocates a throwaway
/// [`Workspace`]; callers issuing many queries should hold a workspace
/// and use the `_in` form.
pub fn abcore(g: &BipartiteGraph, alpha: usize, beta: usize) -> CoreMembership {
    let mut ws = Workspace::new();
    let n_alive = abcore_in(g, alpha, beta, &mut ws);
    let n = g.n_vertices();
    let mut alive = vec![false; n];
    let mut degree = vec![0u32; n];
    for v in g.vertices() {
        if !ws.dead.contains(v) {
            alive[v.index()] = true;
            degree[v.index()] = ws.degree[v];
        }
    }
    CoreMembership {
        alpha,
        beta,
        alive,
        degree,
        n_alive,
    }
}

/// Allocation-free (α,β)-core peel into a reusable [`Workspace`].
///
/// On return, `ws.dead` holds exactly the vertices peeled away
/// (`!ws.dead.contains(v)` ⇔ `v` is in the core) and `ws.degree[v]` is
/// the core degree of every surviving vertex (values for dead vertices
/// are unspecified). Clobbers `ws.dead`, `ws.degree` and `ws.queue`.
/// Returns the number of core vertices.
pub fn abcore_in(g: &BipartiteGraph, alpha: usize, beta: usize, ws: &mut Workspace) -> usize {
    assert!(alpha >= 1 && beta >= 1, "degree constraints must be >= 1");
    ws.fit(g);
    ws.dead.clear();
    ws.queue.clear();
    let Workspace {
        dead,
        degree,
        queue,
        ..
    } = ws;
    let n = g.n_vertices();
    for v in g.vertices() {
        degree[v] = g.degree(v) as u32;
    }
    let mut n_alive = n;
    for v in g.vertices() {
        let need = if g.is_upper(v) { alpha } else { beta } as u32;
        if degree[v] < need {
            dead.insert(v); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            queue.push(v.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        }
    }
    n_alive -= queue.len();
    while let Some(vi) = queue.pop() {
        for &w in g.neighbors(Vertex(vi)) {
            if dead.contains(w) {
                continue;
            }
            degree[w] -= 1;
            let need = if g.is_upper(w) { alpha } else { beta } as u32;
            if degree[w] < need {
                dead.insert(w); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                n_alive -= 1;
                queue.push(w.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            }
        }
    }
    n_alive
}

/// The online query algorithm `Qo`: computes the (α,β)-community
/// `C_{α,β}(q)` — the connected component of `q` inside the (α,β)-core —
/// by peeling from scratch and BFS. `O(m)` time per query.
///
/// Returns the empty subgraph when `q` is not in the (α,β)-core.
pub fn abcore_community<'g>(
    g: &'g BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    let mut ws = Workspace::new();
    abcore_community_in(g, q, alpha, beta, &mut ws)
}

/// [`abcore_community`] with reusable scratch; see [`abcore_community_into`].
pub fn abcore_community_in<'g>(
    g: &'g BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut Workspace,
) -> Subgraph<'g> {
    let mut out = Vec::new();
    abcore_community_into(g, q, alpha, beta, ws, &mut out);
    Subgraph::from_edges(g, out)
}

/// Fully allocation-free `Qo`: peels the (α,β)-core with [`abcore_in`],
/// then BFS-extracts `q`'s component into `out` (cleared first; sorted
/// and deduplicated like [`Subgraph::from_edges`]). Clobbers `ws.dead`,
/// `ws.degree`, `ws.visited` and `ws.queue`.
// scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
pub fn abcore_community_into(
    g: &BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut Workspace,
    out: &mut Vec<EdgeId>,
) {
    out.clear();
    abcore_in(g, alpha, beta, ws);
    if ws.dead.contains(q) {
        return;
    }
    ws.visited.clear();
    ws.queue.clear();
    let Workspace {
        visited,
        dead,
        queue,
        ..
    } = ws;
    visited.insert(q); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    queue.push(q.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    while let Some(xi) = queue.pop() {
        let x = Vertex(xi);
        for (w, e) in g.neighbors_with_edges(x) {
            if dead.contains(w) {
                continue;
            }
            if g.is_upper(x) {
                out.push(e); // record each edge from its upper endpoint; contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            }
            // contract-ok: warm workspace scratch; growth is cold
            if visited.insert(w) {
                queue.push(w.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// [`abcore_community_into`] writing the result into arena storage
/// instead of a caller-owned `Vec`: the community's edge ids land in a
/// slab of `arena` and the returned [`ArenaEdges`] handle pins them.
/// With a warm workspace *and* a warm arena (a free slab available)
/// this is fully allocation-free — the serving layer's step-1 analogue
/// of `scs::CommunitySearch::significant_community_arena`. Clobbers the
/// same workspace fields as [`abcore_community_into`] plus
/// `ws.out_edges` (used as the staging buffer).
// scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
pub fn abcore_community_arena(
    g: &BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut Workspace,
    arena: &mut ResultArena,
) -> ArenaEdges {
    let mut out = std::mem::take(&mut ws.out_edges);
    abcore_community_into(g, q, alpha, beta, ws, &mut out);
    let stored = arena.store(&out);
    ws.out_edges = out;
    stored
}

/// BFS extraction of `q`'s component within a precomputed core
/// membership. Shared by `Qo` and `Qv`.
pub fn community_in_core<'g>(
    g: &'g BipartiteGraph,
    core: &CoreMembership,
    q: Vertex,
) -> Subgraph<'g> {
    if !core.contains(q) {
        return Subgraph::empty(g);
    }
    let mut visited = vec![false; g.n_vertices()];
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut queue = VecDeque::new();
    visited[q.index()] = true;
    queue.push_back(q);
    while let Some(x) = queue.pop_front() {
        for (w, e) in g.neighbors_with_edges(x) {
            if !core.contains(w) {
                continue;
            }
            if g.is_upper(x) {
                edges.push(e); // record each edge from its upper endpoint
            }
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    Subgraph::from_edges(g, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::{figure2_example, GraphBuilder};
    use bigraph::generators::{complete_biclique, random_bipartite};
    use bigraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn biclique_core() {
        let g = complete_biclique(3, 4);
        let core = abcore(&g, 4, 3);
        assert_eq!(core.n_vertices(), 7);
        assert!(!core.is_empty());
        let too_much = abcore(&g, 5, 3);
        assert!(too_much.is_empty());
        assert_eq!(core.alpha(), 4);
        assert_eq!(core.beta(), 3);
    }

    #[test]
    fn degrees_inside_core() {
        let mut b = GraphBuilder::new();
        // 2x2 biclique + pendant.
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        b.add_edge(1, 1, 1.0);
        b.add_edge(2, 0, 1.0);
        let g = b.build().unwrap();
        let core = abcore(&g, 2, 2);
        assert!(core.contains(g.upper(0)));
        assert!(!core.contains(g.upper(2)));
        // l0 has raw degree 3 but core degree 2.
        assert_eq!(core.degree(g.lower(0)), 2);
        assert_eq!(core.degree(g.upper(2)), 0);
        assert_eq!(core.vertices(&g).count(), 4);
        assert_eq!(core.edges(&g).size(), 4);
    }

    #[test]
    fn matches_generic_peel() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = random_bipartite(25, 25, 120, &mut rng);
            for a in 1..=4 {
                for b in 1..=4 {
                    let fast = abcore(&g, a, b).edges(&g);
                    let brute = Subgraph::full(&g).peel_to_core(a, b);
                    assert!(fast.same_edges(&brute), "α={a} β={b}");
                }
            }
        }
    }

    #[test]
    fn figure2_community_of_u3() {
        let g = figure2_example();
        let u3 = g.upper(2);
        let c = abcore_community(&g, u3, 2, 2);
        // Paper: Figure 2(b) — 13 edges over u1..u4, v1..v4.
        assert_eq!(c.size(), 13);
        let (us, ls) = c.layer_vertices();
        assert_eq!(us.len(), 4);
        assert_eq!(ls.len(), 4);
        assert!(c.is_connected());
        assert!(c.satisfies_degrees(2, 2));
    }

    #[test]
    fn missing_query_vertex_gives_empty() {
        let g = figure2_example();
        // u5 (paper id) has degree 1, so it is not in the (2,2)-core.
        let c = abcore_community(&g, g.upper(4), 2, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn community_is_component_not_whole_core() {
        // Two disjoint 2x2 bicliques.
        let mut b = GraphBuilder::new();
        for (uo, lo) in [(0, 0), (2, 2)] {
            for du in 0..2 {
                for dl in 0..2 {
                    b.add_edge(uo + du, lo + dl, 1.0);
                }
            }
        }
        let g = b.build().unwrap();
        let core = abcore(&g, 2, 2);
        assert_eq!(core.n_vertices(), 8);
        let c = abcore_community(&g, g.upper(0), 2, 2);
        assert_eq!(c.size(), 4);
        assert!(!c.contains_vertex(g.upper(2)));
    }

    #[test]
    #[should_panic(expected = "degree constraints")]
    fn zero_alpha_panics() {
        let g = complete_biclique(2, 2);
        abcore(&g, 0, 1);
    }

    #[test]
    fn reused_workspace_matches_fresh_wrappers() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ws = Workspace::new();
        let mut out = Vec::new();
        // Graphs of different sizes through one workspace: membership,
        // degrees and communities must match the allocating wrappers.
        for (nu, nl, m) in [(20, 20, 90), (35, 30, 180), (10, 12, 40)] {
            let g = random_bipartite(nu, nl, m, &mut rng);
            for (a, b) in [(1, 1), (2, 2), (2, 3)] {
                let fresh = abcore(&g, a, b);
                let n_alive = abcore_in(&g, a, b, &mut ws);
                assert_eq!(n_alive, fresh.n_vertices());
                for v in g.vertices() {
                    assert_eq!(!ws.dead.contains(v), fresh.contains(v), "{v:?}");
                    if fresh.contains(v) {
                        assert_eq!(ws.degree[v] as usize, fresh.degree(v), "{v:?}");
                    }
                }
                for qi in 0..nu.min(5) {
                    let q = g.upper(qi);
                    abcore_community_into(&g, q, a, b, &mut ws, &mut out);
                    let direct = abcore_community(&g, q, a, b);
                    assert_eq!(out, direct.edges(), "α={a} β={b} q={q:?}");
                }
            }
        }
        assert!(ws.allocations_avoided() > 0);
    }

    #[test]
    fn arena_community_matches_vec_community() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = random_bipartite(25, 25, 140, &mut rng);
        let mut ws = Workspace::new();
        let mut arena = ResultArena::new();
        let mut held = Vec::new();
        for qi in 0..10 {
            let q = g.upper(qi);
            let direct = abcore_community(&g, q, 2, 2);
            let stored = abcore_community_arena(&g, q, 2, 2, &mut ws, &mut arena);
            assert_eq!(stored.as_slice(), direct.edges(), "q={q:?}");
            assert!(stored.pinned());
            held.push((stored, direct));
        }
        // All handles stay valid together — live results pin storage.
        for (stored, direct) in &held {
            assert_eq!(stored.as_slice(), direct.edges());
        }
        assert_eq!(arena.stats().stored, 10);
    }
}
