//! Degeneracy δ (Definition 7) via unipartite k-core decomposition.
//!
//! For a bipartite graph, the (τ,τ)-core coincides with the unipartite
//! τ-core (the degree constraint is the same on both sides), so δ — the
//! largest τ with a nonempty (τ,τ)-core — equals the maximum core number
//! of the graph viewed as a plain undirected graph. The paper computes δ
//! the same way (Algorithm 3 line 2, citing ref.\[21\] of the paper).
//!
//! δ ≤ √m: a (δ,δ)-core has at least δ² edges... more precisely it has at
//! least δ vertices per side each of degree ≥ δ, so m ≥ δ², i.e. δ ≤ √m.

use bigraph::{BipartiteGraph, Vertex};

/// Core number `c(v)` for every vertex: the largest k such that `v`
/// belongs to the k-core. Bin-sort peeling, `O(n + m)`.
pub fn unipartite_core_numbers(g: &BipartiteGraph) -> Vec<u32> {
    let n = g.n_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree (Batagelj–Zaveršnik).
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &deg {
        bin[d as usize] += 1;
    }
    let mut start = 0u32;
    for b in bin.iter_mut() {
        let cnt = *b;
        *b = start;
        start += cnt;
    }
    let mut pos = vec![0u32; n]; // position of vertex in `vert`
    let mut vert = vec![0u32; n]; // vertices sorted by current degree
    for v in 0..n {
        let d = deg[v] as usize;
        pos[v] = bin[d];
        vert[bin[d] as usize] = v as u32;
        bin[d] += 1;
    }
    // Restore bin starts.
    for d in (1..bin.len()).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = deg[v];
        for &w in g.neighbors(Vertex(v as u32)) {
            let w = w.index();
            if deg[w] > deg[v] {
                // Move w to the front of its bucket and shrink its degree.
                let dw = deg[w] as usize;
                let pw = pos[w] as usize;
                let pfirst = bin[dw] as usize;
                let vfirst = vert[pfirst] as usize;
                if w != vfirst {
                    vert.swap(pw, pfirst);
                    pos[w] = pfirst as u32;
                    pos[vfirst] = pw as u32;
                }
                bin[dw] += 1;
                deg[w] -= 1;
            }
        }
    }
    core
}

/// The degeneracy δ of `g`: the largest τ such that the (τ,τ)-core is
/// nonempty. Returns 0 for an edgeless graph.
pub fn degeneracy(g: &BipartiteGraph) -> usize {
    unipartite_core_numbers(g).into_iter().max().unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::{figure2_example, GraphBuilder};
    use bigraph::generators::{complete_biclique, random_bipartite};
    use bigraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn biclique_degeneracy() {
        // K_{a,b} has δ = min(a, b).
        assert_eq!(degeneracy(&complete_biclique(3, 7)), 3);
        assert_eq!(degeneracy(&complete_biclique(5, 5)), 5);
        assert_eq!(degeneracy(&complete_biclique(1, 9)), 1);
    }

    #[test]
    fn figure2_degeneracy_is_3() {
        // Paper §I: "Iδ only needs to store (1,1)-core, (2,2)-core and
        // (3,3)-core since δ = 3".
        assert_eq!(degeneracy(&figure2_example()), 3);
    }

    #[test]
    fn core_numbers_define_tau_tau_cores() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let g = random_bipartite(20, 20, 140, &mut rng);
            let core = unipartite_core_numbers(&g);
            let delta = degeneracy(&g);
            for tau in 1..=delta + 1 {
                let brute = Subgraph::full(&g).peel_to_core(tau, tau);
                let mut member = vec![false; g.n_vertices()];
                for v in brute.vertices() {
                    member[v.index()] = true;
                }
                for v in g.vertices() {
                    assert_eq!(
                        core[v.index()] as usize >= tau,
                        member[v.index()],
                        "τ={tau} {v:?}"
                    );
                }
            }
            // δ really is the max nonempty level.
            assert!(!Subgraph::full(&g).peel_to_core(delta, delta).is_empty());
            assert!(Subgraph::full(&g)
                .peel_to_core(delta + 1, delta + 1)
                .is_empty());
        }
    }

    #[test]
    fn degeneracy_sqrt_bound() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = random_bipartite(80, 80, 1200, &mut rng);
        let d = degeneracy(&g);
        assert!(
            (d * d) as usize <= g.n_edges(),
            "δ²={} > m={}",
            d * d,
            g.n_edges()
        );
    }

    #[test]
    fn edgeless_and_empty() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(degeneracy(&g), 0);
        assert!(unipartite_core_numbers(&g).is_empty());
        let mut b = GraphBuilder::new();
        b.ensure_upper(2);
        b.ensure_lower(2);
        let g = b.build().unwrap();
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn star_has_degeneracy_1() {
        let mut b = GraphBuilder::new();
        for l in 0..10 {
            b.add_edge(0, l, 1.0);
        }
        let g = b.build().unwrap();
        assert_eq!(degeneracy(&g), 1);
        let core = unipartite_core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1));
    }
}
