//! α-offset / β-offset decomposition (Definition 6 of the paper).
//!
//! For a fixed α, the α-offset `s_a(v, α)` of a vertex `v` is the maximal
//! β such that `v` belongs to the (α,β)-core (0 if `v` is not even in the
//! (α,1)-core). Offsets are the backbone of every index in the paper:
//! `v ∈ (α,β)-core ⇔ s_a(v,α) ≥ β`, and adjacency lists sorted by offset
//! give the early-termination property that makes retrieval optimal.
//!
//! The kernel here computes all offsets for one fixed α in `O(m)` time by
//! a β-ascending peel with a lazy bucket queue (bin-sort peeling, as in
//! k-core decomposition, ref.\[21\] of the paper). Running it for α = 1..δ gives the paper's
//! `O(δ·m)` index construction bound (Lemma 6).

use bigraph::workspace::Workspace;
use bigraph::{BipartiteGraph, Side, Vertex};

/// Computes `s_a(v, α)` for every vertex `v` (the maximal β with
/// `v ∈ (α,β)-core`), in `O(m + α_max)` time.
pub fn alpha_offsets(g: &BipartiteGraph, alpha: usize) -> Vec<u32> {
    let mut out = Vec::new();
    alpha_offsets_into(g, alpha, &mut Workspace::new(), &mut out);
    out
}

/// Computes `s_b(v, β)` for every vertex `v` (the maximal α with
/// `v ∈ (α,β)-core`), in `O(m + β_max)` time.
pub fn beta_offsets(g: &BipartiteGraph, beta: usize) -> Vec<u32> {
    let mut out = Vec::new();
    beta_offsets_into(g, beta, &mut Workspace::new(), &mut out);
    out
}

/// [`alpha_offsets`] with reusable scratch: `out` receives the offsets
/// (cleared first), `ws` provides the peeling buffers. Index
/// construction calls this once per level, so reuse across levels keeps
/// the `O(δ·m)` build free of per-level buffer churn.
pub fn alpha_offsets_into(
    g: &BipartiteGraph,
    alpha: usize,
    ws: &mut Workspace,
    out: &mut Vec<u32>,
) {
    offsets_impl_in(g, Side::Upper, alpha as u32, ws, out)
}

/// [`beta_offsets`] with reusable scratch; see [`alpha_offsets_into`].
pub fn beta_offsets_into(g: &BipartiteGraph, beta: usize, ws: &mut Workspace, out: &mut Vec<u32>) {
    offsets_impl_in(g, Side::Lower, beta as u32, ws, out)
}

/// Offset kernel.
///
/// `fixed_side` is the layer whose degree constraint is pinned to `k`
/// (upper for α-offsets, lower for β-offsets); the produced value per
/// vertex is the maximal constraint on the *free* layer under which the
/// vertex stays in the core. Clobbers `ws.dead`, `ws.degree`,
/// `ws.queue` and `ws.stack`; the bucket queue is level-local.
fn offsets_impl_in(
    g: &BipartiteGraph,
    fixed_side: Side,
    k: u32,
    ws: &mut Workspace,
    out: &mut Vec<u32>,
) {
    let n = g.n_vertices();
    out.clear();
    out.resize(n, 0);
    if n == 0 || k == 0 {
        // k = 0 is degenerate: every vertex with an incident edge stays
        // forever; callers always pass k >= 1.
        return;
    }
    ws.fit(g);
    ws.dead.clear();
    ws.queue.clear();
    ws.stack.clear();
    let Workspace {
        dead,
        degree: deg,
        queue: stack,
        stack: cascade,
        ..
    } = ws;
    let offset = out;
    for v in g.vertices() {
        deg[v] = g.degree(v) as u32;
    }
    let fixed_is_upper = fixed_side == Side::Upper;
    let is_fixed = |g: &BipartiteGraph, v: Vertex| g.is_upper(v) == fixed_is_upper;

    // Phase 1: reduce to the (k, 1)-core — fixed-side vertices need
    // degree >= k, free-side vertices need degree >= 1.
    for v in g.vertices() {
        let need = if is_fixed(g, v) { k } else { 1 };
        if deg[v] < need {
            dead.insert(v);
            stack.push(v.0);
        }
    }
    while let Some(vi) = stack.pop() {
        for &w in g.neighbors(Vertex(vi)) {
            if dead.contains(w) {
                continue;
            }
            deg[w] -= 1;
            let need = if is_fixed(g, w) { k } else { 1 };
            if deg[w] < need {
                dead.insert(w);
                stack.push(w.0);
            }
        }
    }

    // Phase 2: ascending peel over the free-side constraint. At the start
    // of level L the live graph is the (k, L)-core; removing free-side
    // vertices with degree <= L (cascading fixed-side removals when their
    // degree drops below k) yields the (k, L+1)-core. Every vertex removed
    // at level L has offset L; vertices that survive to the end never
    // exist (the graph always empties because degrees are finite).
    let free_count = g
        .vertices()
        .filter(|&v| !dead.contains(v) && !is_fixed(g, v))
        .count();
    let mut remaining = free_count;
    if remaining == 0 {
        return;
    }
    let max_free_deg = g
        .vertices()
        .filter(|&v| !dead.contains(v) && !is_fixed(g, v))
        .map(|v| deg[v] as usize)
        .max()
        .unwrap_or(0);
    // Lazy bucket queue: each free vertex is (re-)pushed whenever its
    // degree drops; stale entries are skipped on pop.
    let mut buckets: Vec<Vec<Vertex>> = vec![Vec::new(); max_free_deg + 1];
    for v in g.vertices() {
        if !dead.contains(v) && !is_fixed(g, v) {
            buckets[deg[v] as usize].push(v);
        }
    }

    let mut level: u32 = 0;
    let mut cursor: usize = 0; // buckets below `cursor` are empty
    while remaining > 0 {
        // Jump to the next removal level: the minimum live free degree.
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        debug_assert!(cursor < buckets.len(), "live vertices must be queued");
        level = level.max(cursor as u32);

        // Drain all buckets <= level, with cascade.
        while cursor as u32 <= level {
            let Some(v) = buckets[cursor].pop() else {
                cursor += 1;
                if cursor >= buckets.len() || cursor as u32 > level {
                    break;
                }
                continue;
            };
            if dead.contains(v) || deg[v] as usize != cursor {
                continue; // stale entry
            }
            // Remove free vertex v at this level.
            dead.insert(v);
            offset[v.index()] = level;
            remaining -= 1;
            cascade.push(v.0);
            while let Some(xi) = cascade.pop() {
                for &w in g.neighbors(Vertex(xi)) {
                    if dead.contains(w) {
                        continue;
                    }
                    deg[w] -= 1;
                    if is_fixed(g, w) {
                        if deg[w] < k {
                            dead.insert(w);
                            offset[w.index()] = level;
                            cascade.push(w.0);
                        }
                    } else {
                        let nd = deg[w] as usize;
                        buckets[nd].push(w);
                        if nd < cursor {
                            cursor = nd;
                        }
                    }
                }
            }
        }
    }
}

/// Precomputed offsets for a contiguous range of fixed-side constraints
/// `k = 1..=k_max` — the table form consumed by index construction.
#[derive(Debug, Clone)]
pub struct OffsetTable {
    fixed_side: Side,
    /// `rows[k-1][v]` = offset of `v` at fixed constraint `k`.
    rows: Vec<Vec<u32>>,
}

impl OffsetTable {
    /// Computes offsets for all `k in 1..=k_max`; `O(k_max · m)` time and
    /// `O(k_max · n)` space. One workspace is shared across the levels,
    /// so only the output rows themselves are allocated.
    pub fn compute(g: &BipartiteGraph, fixed_side: Side, k_max: usize) -> Self {
        let mut ws = Workspace::new();
        let rows = (1..=k_max)
            .map(|k| {
                let mut row = Vec::new();
                offsets_impl_in(g, fixed_side, k as u32, &mut ws, &mut row);
                row
            })
            .collect();
        OffsetTable { fixed_side, rows }
    }

    /// The side whose constraint is fixed per row.
    pub fn fixed_side(&self) -> Side {
        self.fixed_side
    }

    /// Largest fixed constraint covered.
    pub fn k_max(&self) -> usize {
        self.rows.len()
    }

    /// Offset of `v` under fixed constraint `k`.
    ///
    /// # Panics
    /// If `k` is 0 or exceeds [`Self::k_max`].
    #[inline]
    pub fn offset(&self, k: usize, v: Vertex) -> u32 {
        self.rows[k - 1][v.index()]
    }

    /// The full row for fixed constraint `k` (indexed by vertex).
    #[inline]
    pub fn row(&self, k: usize) -> &[u32] {
        &self.rows[k - 1]
    }

    /// Membership test: for an α-offset table, `v ∈ (k, other)-core`;
    /// for a β-offset table, `v ∈ (other, k)-core`.
    #[inline]
    pub fn in_core(&self, k: usize, other: usize, v: Vertex) -> bool {
        k >= 1 && k <= self.k_max() && self.offset(k, v) as usize >= other
    }

    /// Heap bytes held by the table (for the Fig. 11 size accounting).
    pub fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.len() * std::mem::size_of::<u32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::{figure2_example, GraphBuilder};
    use bigraph::Subgraph;

    /// Brute-force membership oracle via generic peeling.
    fn brute_core_members(g: &BipartiteGraph, a: usize, b: usize) -> Vec<bool> {
        let core = Subgraph::full(g).peel_to_core(a, b);
        let mut member = vec![false; g.n_vertices()];
        for v in core.vertices() {
            member[v.index()] = true;
        }
        member
    }

    fn check_offsets_match_brute(g: &BipartiteGraph, a_max: usize, b_max: usize) {
        for a in 1..=a_max {
            let off = alpha_offsets(g, a);
            for b in 1..=b_max {
                let brute = brute_core_members(g, a, b);
                for v in g.vertices() {
                    assert_eq!(
                        off[v.index()] as usize >= b,
                        brute[v.index()],
                        "alpha mismatch at α={a}, β={b}, {v:?} (offset {})",
                        off[v.index()]
                    );
                }
            }
        }
        for b in 1..=b_max {
            let off = beta_offsets(g, b);
            for a in 1..=a_max {
                let brute = brute_core_members(g, a, b);
                for v in g.vertices() {
                    assert_eq!(
                        off[v.index()] as usize >= a,
                        brute[v.index()],
                        "beta mismatch at α={a}, β={b}, {v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn square_plus_pendant() {
        // 2x2 biclique {u0,u1}x{l0,l1} plus pendant u2-l0.
        let mut bld = GraphBuilder::new();
        bld.add_edge(0, 0, 1.0);
        bld.add_edge(0, 1, 1.0);
        bld.add_edge(1, 0, 1.0);
        bld.add_edge(1, 1, 1.0);
        bld.add_edge(2, 0, 1.0);
        let g = bld.build().unwrap();
        let off1 = alpha_offsets(&g, 1);
        // α=1: s_a(l0,1) = 3 (the (1,3)-core keeps l0 with u0,u1,u2).
        assert_eq!(off1[g.lower(0).index()], 3);
        assert_eq!(off1[g.lower(1).index()], 2);
        // u2 survives in the (1,3)-core too: it only needs one neighbor
        // (l0), and l0 is still there.
        assert_eq!(off1[g.upper(2).index()], 3);
        let off2 = alpha_offsets(&g, 2);
        // α=2: u2 (degree 1) drops out immediately.
        assert_eq!(off2[g.upper(2).index()], 0);
        assert_eq!(off2[g.upper(0).index()], 2);
        assert_eq!(off2[g.lower(0).index()], 2);
        let off3 = alpha_offsets(&g, 3);
        assert!(off3.iter().all(|&x| x == 0));
        check_offsets_match_brute(&g, 4, 4);
    }

    #[test]
    fn figure2_offsets() {
        let g = figure2_example();
        let u = |k: usize| g.upper(k - 1);
        let v = |k: usize| g.lower(k - 1);
        // δ = 3 for this graph; the (3,3)-core is {u1,u2,u3}×{v1,v2,v3}.
        let off3 = alpha_offsets(&g, 3);
        for k in 1..=3 {
            assert_eq!(off3[u(k).index()], 3, "u{k}");
            assert_eq!(off3[v(k).index()], 3, "v{k}");
        }
        assert_eq!(off3[u(4).index()], 0); // deg(u4)=2 < 3: never in a (3,·)-core

        // α=1: a vertex stays in the (1,β)-core as long as *one* neighbor
        // survives; v1 keeps degree 999 forever, so everyone adjacent to
        // v1 — u1 included — survives to β = 999.
        let off1 = alpha_offsets(&g, 1);
        assert_eq!(off1[u(1).index()], 999);
        assert_eq!(off1[v(1).index()], 999);
        // v5 has only u1; it dies as soon as β exceeds u1's shrinking
        // degree... in fact at α=1 u1 never shrinks below 1, so v5 lives
        // while u1 lives, but v5 itself needs degree ≥ β: deg(v5)=1 ⇒
        // s_a(v5,1) = 1.
        assert_eq!(off1[v(5).index()], 1);
        // α=2: paper's Figure 2(b): the (2,2)-community of u3 exists and
        // u3 is in it.
        let off2 = alpha_offsets(&g, 2);
        assert!(off2[u(3).index()] >= 2);
        assert_eq!(off2[u(1).index()], 4); // u1's α=2 offsets: v1..v4 survive
    }

    #[test]
    fn offsets_match_brute_force_random() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..5 {
            let g = bigraph::generators::random_bipartite(
                12 + trial,
                10 + trial,
                40 + 5 * trial,
                &mut rng,
            );
            check_offsets_match_brute(&g, 6, 6);
        }
    }

    #[test]
    fn offset_monotone_in_alpha() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let g = bigraph::generators::random_bipartite(30, 30, 200, &mut rng);
        let mut prev: Option<Vec<u32>> = None;
        for a in 1..=8 {
            let off = alpha_offsets(&g, a);
            if let Some(p) = &prev {
                for v in g.vertices() {
                    assert!(
                        off[v.index()] <= p[v.index()],
                        "offset must not increase with α"
                    );
                }
            }
            prev = Some(off);
        }
    }

    #[test]
    fn table_lookup() {
        let g = figure2_example();
        let t = OffsetTable::compute(&g, Side::Upper, 3);
        assert_eq!(t.k_max(), 3);
        assert_eq!(t.fixed_side(), Side::Upper);
        assert_eq!(t.offset(3, g.upper(0)), 3);
        assert!(t.in_core(2, 2, g.upper(2)));
        assert!(!t.in_core(3, 3, g.upper(3)));
        assert!(!t.in_core(4, 1, g.upper(0))); // beyond k_max
        assert!(t.heap_bytes() >= 3 * g.n_vertices() * 4);
        assert_eq!(t.row(3).len(), g.n_vertices());
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(alpha_offsets(&g, 1).is_empty());
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        let g = b.build().unwrap();
        assert_eq!(alpha_offsets(&g, 1), vec![1, 1]);
        assert_eq!(alpha_offsets(&g, 2), vec![0, 0]);
        assert_eq!(beta_offsets(&g, 1), vec![1, 1]);
    }
}
