//! The bicore index `Iv` (Liu et al., WWW'19) and its query algorithm
//! `Qv` — the indexed baseline the paper compares against in Figs. 8–11.
//!
//! `Iv` stores *vertex* information only: for each constraint value up to
//! the degeneracy δ, the offset of every vertex. That pins down the
//! vertex set `V(R_{α,β})` of any (α,β)-core in optimal time, but
//! retrieving the *community* `C_{α,β}(q)` still has to BFS through the
//! original adjacency lists and test every neighbor for membership —
//! touching edges outside the community. That inefficiency (quantified by
//! [`QueryStats::edges_touched`]) is exactly what motivates the paper's
//! edge-storing index `Iδ`.

use crate::decompose::OffsetTable;
use crate::degeneracy::degeneracy;
use bigraph::{BipartiteGraph, EdgeId, Side, Subgraph, Vertex};
use std::collections::VecDeque;

/// Instrumentation returned by [`BicoreIndex::query_community_with_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Adjacency entries inspected during the BFS (each inspection may or
    /// may not contribute an edge of the result).
    pub edges_touched: usize,
    /// Edges of the resulting community.
    pub result_edges: usize,
}

/// The bicore index `Iv`: per-vertex α-offsets for α ≤ δ and β-offsets
/// for β ≤ δ.
///
/// Since any nonempty (α,β)-core has `min(α,β) ≤ δ` (Lemma 4), these two
/// offset families decide membership for *every* (α,β) pair.
#[derive(Debug, Clone)]
pub struct BicoreIndex {
    delta: usize,
    alpha_table: OffsetTable,
    beta_table: OffsetTable,
}

impl BicoreIndex {
    /// Builds the index in `O(δ·m)` time and `O(δ·n)` space.
    pub fn build(g: &BipartiteGraph) -> Self {
        let delta = degeneracy(g);
        BicoreIndex {
            delta,
            alpha_table: OffsetTable::compute(g, Side::Upper, delta),
            beta_table: OffsetTable::compute(g, Side::Lower, delta),
        }
    }

    /// The degeneracy δ of the indexed graph.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// `true` iff `v` belongs to the (α,β)-core.
    #[inline]
    pub fn in_core(&self, alpha: usize, beta: usize, v: Vertex) -> bool {
        if alpha >= 1 && alpha <= self.delta {
            self.alpha_table.offset(alpha, v) as usize >= beta
        } else if beta >= 1 && beta <= self.delta {
            self.beta_table.offset(beta, v) as usize >= alpha
        } else {
            // min(α,β) > δ (or a zero constraint): core is empty.
            false
        }
    }

    /// `s_a(v, α)` for `α ≤ δ`.
    ///
    /// # Panics
    /// If `alpha` is 0 or exceeds δ.
    #[inline]
    pub fn alpha_offset(&self, alpha: usize, v: Vertex) -> u32 {
        self.alpha_table.offset(alpha, v)
    }

    /// `s_b(v, β)` for `β ≤ δ`.
    ///
    /// # Panics
    /// If `beta` is 0 or exceeds δ.
    #[inline]
    pub fn beta_offset(&self, beta: usize, v: Vertex) -> u32 {
        self.beta_table.offset(beta, v)
    }

    /// The vertex set of the (α,β)-core, in id order. Optimal in the
    /// output size plus `O(n)` scan — this is what `Iv` was designed for.
    pub fn core_vertices(&self, g: &BipartiteGraph, alpha: usize, beta: usize) -> Vec<Vertex> {
        g.vertices()
            .filter(|&v| self.in_core(alpha, beta, v))
            .collect()
    }

    /// The query algorithm `Qv`: retrieves `C_{α,β}(q)` by BFS over the
    /// *original* adjacency, filtering neighbors through the index.
    pub fn query_community<'g>(
        &self,
        g: &'g BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
    ) -> Subgraph<'g> {
        self.query_community_with_stats(g, q, alpha, beta).0
    }

    /// [`Self::query_community`] plus touch statistics, so tests and
    /// benchmarks can observe the extra edges `Qv` inspects compared to
    /// the optimal `Qopt`.
    pub fn query_community_with_stats<'g>(
        &self,
        g: &'g BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
    ) -> (Subgraph<'g>, QueryStats) {
        let mut stats = QueryStats::default();
        if !self.in_core(alpha, beta, q) {
            return (Subgraph::empty(g), stats);
        }
        let mut visited = vec![false; g.n_vertices()];
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut queue = VecDeque::new();
        visited[q.index()] = true;
        queue.push_back(q);
        while let Some(x) = queue.pop_front() {
            for (w, e) in g.neighbors_with_edges(x) {
                stats.edges_touched += 1;
                if !self.in_core(alpha, beta, w) {
                    continue;
                }
                if g.is_upper(x) {
                    edges.push(e);
                }
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        stats.result_edges = edges.len();
        (Subgraph::from_edges(g, edges), stats)
    }

    /// Heap bytes held by the index (Fig. 11 accounting).
    pub fn heap_bytes(&self) -> usize {
        self.alpha_table.heap_bytes() + self.beta_table.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abcore::{abcore, abcore_community};
    use bigraph::builder::figure2_example;
    use bigraph::generators::random_bipartite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn membership_matches_online_peel() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..4 {
            let g = random_bipartite(25, 20, 150, &mut rng);
            let idx = BicoreIndex::build(&g);
            let delta = idx.delta();
            // Cover α/β both below and above δ.
            for a in 1..=(delta + 3) {
                for b in 1..=(delta + 3) {
                    let core = abcore(&g, a, b);
                    for v in g.vertices() {
                        assert_eq!(
                            idx.in_core(a, b, v),
                            core.contains(v),
                            "α={a} β={b} {v:?} (δ={delta})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn qv_matches_qo() {
        let mut rng = StdRng::seed_from_u64(78);
        let g = random_bipartite(30, 30, 220, &mut rng);
        let idx = BicoreIndex::build(&g);
        for a in 1..=4 {
            for b in 1..=4 {
                for vi in [0usize, 7, 29] {
                    let q = g.upper(vi);
                    let via_index = idx.query_community(&g, q, a, b);
                    let online = abcore_community(&g, q, a, b);
                    assert!(via_index.same_edges(&online), "α={a} β={b} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn figure2_qv() {
        let g = figure2_example();
        let idx = BicoreIndex::build(&g);
        assert_eq!(idx.delta(), 3);
        let (c, stats) = idx.query_community_with_stats(&g, g.upper(2), 2, 2);
        assert_eq!(c.size(), 13);
        assert_eq!(stats.result_edges, 13);
        // Qv touches extra edges: u1 is in the community and its full
        // adjacency (999 edges) is scanned.
        assert!(
            stats.edges_touched > 900,
            "expected heavy over-touching, got {}",
            stats.edges_touched
        );
    }

    #[test]
    fn query_outside_core_is_empty() {
        let g = figure2_example();
        let idx = BicoreIndex::build(&g);
        let (c, stats) = idx.query_community_with_stats(&g, g.upper(500), 2, 2);
        assert!(c.is_empty());
        assert_eq!(stats.edges_touched, 0);
    }

    #[test]
    fn constraints_beyond_delta_both_sides() {
        let g = figure2_example();
        let idx = BicoreIndex::build(&g);
        // α=999 > δ=3, β=1 ≤ δ: u1's star survives as the (999,1)-core?
        // v1 has 999 neighbors, so the (999,1)-core is v1 plus all uppers
        // ... each upper needs degree ≥ 999 — only u1 qualifies (degree
        // 999). u1 + its neighbors: neighbors need degree ≥ 1. So the
        // (999,1)-core is u1 ∪ N(u1).
        assert!(idx.in_core(999, 1, g.upper(0)));
        assert!(idx.in_core(999, 1, g.lower(500)));
        assert!(!idx.in_core(999, 1, g.upper(1)));
        assert!(!idx.in_core(999, 2, g.upper(0))); // v5.. die, u1 keeps 4? No: needs 999.
        assert!(!idx.in_core(4, 4, g.upper(0))); // min > δ
        let vs = idx.core_vertices(&g, 999, 1);
        assert_eq!(vs.len(), 1000);
    }

    #[test]
    fn heap_bytes_scales_with_delta() {
        let g = figure2_example();
        let idx = BicoreIndex::build(&g);
        // 2 tables × δ rows × n vertices × 4 bytes.
        assert_eq!(idx.heap_bytes(), 2 * 3 * g.n_vertices() * 4);
    }
}
