//! Fixture: an explicit atomic order in an audited file name
//! (`telemetry.rs`) with no pairing note on the increment below.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn read(counter: &AtomicU64) -> u64 {
    // ordering: standalone counter; pairs with nothing, Relaxed is enough.
    counter.load(Ordering::Relaxed)
}
