//! Seeded: two locks taken in opposite orders by two methods — the
//! classic two-lock inversion the lock-order pass must flag as a cycle.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
