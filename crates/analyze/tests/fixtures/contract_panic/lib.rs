//! Seeded: a `no-panic` function that unwraps in its own body.

// scs-contract: no-panic
pub fn read_slot(slots: &[u64], i: usize) -> u64 {
    let v = slots.get(i).copied();
    v.unwrap()
}
