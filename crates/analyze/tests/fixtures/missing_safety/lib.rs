//! Fixture: one `unsafe` site with no SAFETY justification.
//! The allowlist admits the site, so only `unsafe-safety-comment` fires.

pub struct RacyCell(std::cell::UnsafeCell<u32>);

unsafe impl Sync for RacyCell {}
