//! Seeded: explicit atomics in a file nobody audits — the analyzer
//! should emit one hint pointing at the config opt-in, not one
//! diagnostic per site.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);
pub static MISSES: AtomicU64 = AtomicU64::new(0);

pub fn hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
}
