//! Seeded: several independent findings in one file — the renderer
//! must report each of them, sorted by line.

// scs-contract: no-alloc
pub fn hot(out: &mut [u64]) -> String {
    let label = format!("{} slots", out.len());
    let copy = out.to_vec();
    out[0] = copy.len() as u64;
    label
}

// scs-contract: no-bloc
pub fn typo() {}
