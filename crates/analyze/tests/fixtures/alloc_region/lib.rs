//! Fixture: a heap call inside a declared alloc-free region, next to a
//! properly waived one.

// scs-lint: alloc-free
pub fn hot(xs: &[u32], shared: &std::sync::Arc<Vec<u32>>) -> std::sync::Arc<Vec<u32>> {
    let mut sum = 0u32;
    for &x in xs {
        sum = sum.wrapping_add(x);
    }
    let doomed = format!("sum = {sum}");
    let _ = doomed;
    shared.clone() // alloc-ok: Arc refcount bump, no heap traffic
}
// scs-lint: end-alloc-free

pub fn cold() -> Vec<u32> {
    Vec::with_capacity(8)
}
