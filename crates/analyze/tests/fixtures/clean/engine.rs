//! Fixture: a file that satisfies every rule — justified unsafe, an
//! ordering comment, and an alloc-free region with only a waived clone.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Shared(std::cell::UnsafeCell<u64>);

// SAFETY: writes are externally serialized by the owning engine; readers
// only observe frozen regions (fixture stand-in for the arena argument).
unsafe impl Sync for Shared {}

// scs-lint: alloc-free
pub fn publish(seq: &AtomicU64, value: u64, shared: &std::sync::Arc<u64>) -> std::sync::Arc<u64> {
    // ordering: Release pairs with the Acquire load in subscribe() so the
    // value write is visible before the new sequence number.
    seq.store(value, Ordering::Release);
    shared.clone() // alloc-ok: Arc refcount bump
}
// scs-lint: end-alloc-free

pub fn subscribe(seq: &AtomicU64) -> u64 {
    // ordering: Acquire pairs with the Release store in publish().
    seq.load(Ordering::Acquire)
}
