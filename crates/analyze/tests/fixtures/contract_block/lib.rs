//! Seeded: a `no-block` function that takes a mutex one call down.

use std::sync::Mutex;

pub struct Gauge {
    value: Mutex<u64>,
}

impl Gauge {
    // scs-contract: no-block
    pub fn sample(&self) -> u64 {
        self.read_locked()
    }

    fn read_locked(&self) -> u64 {
        *self.value.lock().unwrap()
    }
}
