//! Seeded: this file IS on the config audit list, so a bare
//! `Ordering::Relaxed` is a full diagnostic, not an opt-in hint.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn read() -> u64 {
    // ordering: Relaxed — monotonic counter, read for display only.
    HITS.load(Ordering::Relaxed)
}
