//! Fixture: two justified unsafe sites against a budget of one, plus a
//! stale allowlist entry — both directions of allowlist drift.

pub struct RacyCell(std::cell::UnsafeCell<u32>);

// SAFETY: fixture stand-in; access is externally serialized.
unsafe impl Sync for RacyCell {}

impl RacyCell {
    pub fn get(&self) -> u32 {
        // SAFETY: fixture stand-in; no concurrent writer exists.
        unsafe { *self.0.get() }
    }
}
