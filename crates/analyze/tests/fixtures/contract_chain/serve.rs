//! Seeded: a `no-alloc` root whose violation sits three calls deep.
//! The diagnostic must print the whole chain, root to offender.

// scs-contract: no-alloc
pub fn serve_one(out: &mut [u32]) {
    route(out);
}

fn route(out: &mut [u32]) {
    gather(out);
}

fn gather(out: &mut [u32]) {
    emit(out);
}

fn emit(out: &mut [u32]) {
    let scratch = Vec::with_capacity(out.len());
    for (slot, v) in out.iter_mut().zip(scratch) {
        *slot = v;
    }
}
