//! Regression tree: everything in here LOOKS like a violation but is
//! commentary, string data, or test-only code — the analyzer must stay
//! silent. The file is named `engine.rs` so it sits on the default
//! ordering audit list.

/// Doc comments may discuss `Vec::new()`, `format!` and `.push(` —
/// prose about heap APIs is not a call to them. Even a literal
/// `scs-lint: alloc-free` marker in a doc comment opens no region.
// scs-contract: no-alloc
pub fn hot(out: &mut [u64]) -> u64 {
    // An inert marker in a string: "scs-lint: alloc-free" must not
    // open a region, and deny patterns inside literals must not fire.
    let banner = "Vec::new() format! .push( scs-lint: alloc-free";
    out[0] = banner.len() as u64;
    out[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn test_hot_allocates_freely() {
        // Test-only code allocates and touches atomics without
        // ordering comments; none of it is production surface.
        let mut out = vec![0u64; 4];
        let copied = out.to_vec();
        let gauge = AtomicU64::new(copied.len() as u64);
        gauge.fetch_add(hot(&mut out), Ordering::Relaxed);
        assert_eq!(gauge.load(Ordering::Relaxed), 46 + 4);
    }
}
