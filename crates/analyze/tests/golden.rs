//! Golden-output tests for `scs analyze`: each seeded fixture tree must
//! produce *exactly one* diagnostic with the exact rendered text, the
//! clean tree must produce none, and `--allow` must silence a rule.
//!
//! The fixture trees live under `tests/fixtures/`, which the workspace
//! walk skips by name — so `scs analyze` on the real repo never sees the
//! seeded violations.

use scs_analyze::{analyze_workspace, Analysis, Config, Rule};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> Analysis {
    analyze_workspace(&Config::new(fixture(name))).expect("fixture tree analyzes")
}

#[test]
fn missing_safety_comment_is_exactly_one_diagnostic() {
    let a = run("missing_safety");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:6: [unsafe-safety-comment] `unsafe` without a `// SAFETY:` justification \
             on the same line or in the comment block directly above"
                .to_string()
        ]
    );
    assert_eq!(a.unsafe_sites, 1);
}

#[test]
fn unjustified_ordering_is_exactly_one_diagnostic() {
    let a = run("ordering");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "telemetry.rs:7: [atomic-ordering-comment] `Ordering::Relaxed` without a \
             `// ordering:` comment naming its pairing (same line or within 6 lines above)"
                .to_string()
        ]
    );
    // The justified load in the same file is counted but not flagged.
    assert_eq!(a.ordering_sites, 2);
}

#[test]
fn alloc_call_in_alloc_free_region_is_exactly_one_diagnostic() {
    let a = run("alloc_region");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:10: [alloc-free-region] heap API `format!` inside a \
             `scs-lint: alloc-free` region (waive a justified false positive with \
             `// alloc-ok: <reason>`)"
                .to_string()
        ]
    );
    assert_eq!(a.alloc_free_regions, 1);
}

#[test]
fn clean_tree_produces_no_diagnostics() {
    let a = run("clean");
    assert!(a.is_clean(), "unexpected diagnostics: {:?}", a.diagnostics);
    // ...and actually exercised every rule's subject matter.
    assert_eq!(a.unsafe_sites, 1);
    assert!(a.ordering_sites >= 2);
    assert_eq!(a.alloc_free_regions, 1);
    assert!(a.render().ends_with("clean"));
}

#[test]
fn unsafe_allowlist_drift_fails_in_both_directions() {
    let a = run("allowlist");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "gone.rs:0: [unsafe-allowlist] unsafe-allowlist.txt budgets 3 unsafe site(s) \
             but only 0 exist; tighten the entry"
                .to_string(),
            "lib.rs:12: [unsafe-allowlist] 2 unsafe site(s) but unsafe-allowlist.txt \
             budgets 1; new unsafe must be admitted there deliberately"
                .to_string(),
        ]
    );
    assert_eq!(a.unsafe_sites, 2);
}

#[test]
fn allow_flag_silences_a_rule() {
    let mut cfg = Config::new(fixture("alloc_region"));
    cfg.disabled.push(Rule::AllocFree);
    let a = analyze_workspace(&cfg).unwrap();
    assert!(a.is_clean(), "{:?}", a.diagnostics);
}

#[test]
fn render_reports_violation_counts() {
    let a = run("missing_safety");
    let text = a.render();
    assert!(text.contains("1 violation(s)"), "{text}");
    assert!(text.starts_with("lib.rs:6:"), "{text}");
}

// ---------------------------------------------------------------------------
// Contract propagation, lock order, config-driven audit.

#[test]
fn transitive_no_alloc_violation_prints_the_full_call_chain() {
    // The heap call sits three calls below the contract root; the
    // diagnostic must name every hop with file:line provenance.
    let a = run("contract_chain");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "serve.rs:18: [contract] `Vec::with_capacity` violates the `no-alloc` contract \
             of `serve_one`; call chain: serve_one (serve.rs:5) → route (serve.rs:9) → \
             gather (serve.rs:13) → emit (serve.rs:17); waive a justified site with \
             `// contract-ok: <reason>`"
                .to_string()
        ]
    );
    assert_eq!(a.contract_roots, 1);
    // Root plus all three transitive callees were proven.
    assert_eq!(a.contract_fns_checked, 4);
}

#[test]
fn no_panic_contract_flags_an_unwrap_in_the_root() {
    let a = run("contract_panic");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:6: [contract] `.unwrap(` violates the `no-panic` contract of \
             `read_slot`; call chain: read_slot (lib.rs:4); waive a justified site with \
             `// contract-ok: <reason>`"
                .to_string()
        ]
    );
}

#[test]
fn no_block_contract_follows_a_method_call_to_a_lock() {
    // `sample` never locks directly; the violation is in the callee it
    // resolves through `self`.
    let a = run("contract_block");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:16: [contract] `.lock(` violates the `no-block` contract of \
             `Gauge::sample`; call chain: Gauge::sample (lib.rs:11) → Gauge::read_locked \
             (lib.rs:15); waive a justified site with `// contract-ok: <reason>`"
                .to_string()
        ]
    );
}

#[test]
fn two_lock_inversion_is_reported_as_a_cycle_with_provenance() {
    let a = run("lock_inversion");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:14: [lock-order] lock-order cycle (potential deadlock): `Pair::a` → \
             `Pair::b` → `Pair::a`; acquired as `Pair::a` → `Pair::b` in Pair::forward \
             (lib.rs:14); `Pair::b` → `Pair::a` in Pair::backward (lib.rs:20); pick one \
             acquisition order or waive a misread site with `// lock-ok: <reason>`"
                .to_string()
        ]
    );
    assert_eq!(a.lock_sites, 4);
    assert_eq!(a.lock_edges, 2);
}

#[test]
fn unaudited_atomics_get_one_hint_naming_the_config_file() {
    // Two bare `Relaxed` sites, but only ONE hint: the finding is "this
    // file needs opting in", not a per-site scold.
    let a = run("ordering_hint");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "counters.rs:11: [atomic-ordering-comment] `Ordering::Relaxed` in a file not \
             in the ordering audit list; add `\"counters.rs\"` to `[ordering] audit` in \
             scs-analyze.toml and justify each site with a `// ordering:` comment"
                .to_string()
        ]
    );
    assert_eq!(a.ordering_sites, 0);
}

#[test]
fn config_file_opts_a_file_into_the_full_ordering_audit() {
    // Same file name as the hint fixture, but `scs-analyze.toml` lists
    // it — so the bare site is a real diagnostic and the justified one
    // passes.
    let a = run("ordering_config");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "counters.rs:9: [atomic-ordering-comment] `Ordering::Relaxed` without a \
             `// ordering:` comment naming its pairing (same line or within 6 lines above)"
                .to_string()
        ]
    );
    assert_eq!(a.ordering_sites, 2);
}

#[test]
fn one_file_can_carry_several_diagnostics() {
    let a = run("multi_diag");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:6: [contract] `format!` violates the `no-alloc` contract of `hot`; \
             call chain: hot (lib.rs:5); waive a justified site with \
             `// contract-ok: <reason>`"
                .to_string(),
            "lib.rs:7: [contract] `.to_vec(` violates the `no-alloc` contract of `hot`; \
             call chain: hot (lib.rs:5); waive a justified site with \
             `// contract-ok: <reason>`"
                .to_string(),
            "lib.rs:12: [contract] unknown contract `no-bloc` (contracts: no-alloc, \
             no-panic, no-block)"
                .to_string(),
        ]
    );
}

#[test]
fn markers_in_strings_docs_and_test_modules_do_not_fire() {
    // Deny patterns in doc comments and string literals, plus
    // allocation and bare atomics inside `#[cfg(test)]` of an audited
    // file: all inert.
    let a = run("false_positives");
    assert!(a.is_clean(), "unexpected diagnostics: {:?}", a.diagnostics);
    assert_eq!(
        a.alloc_free_regions, 0,
        "marker in a string opened a region"
    );
    // The test-range atomics are still counted as audited sites —
    // they are just not diagnosed.
    assert_eq!(a.ordering_sites, 2);
    assert_eq!(a.contract_roots, 1);
}

// ---------------------------------------------------------------------------
// Output formats.

#[test]
fn github_format_emits_one_error_command_per_diagnostic() {
    let a = run("multi_diag");
    let text = a.render_as(scs_analyze::Format::Github);
    assert_eq!(text.matches("::error ").count(), 3, "{text}");
    assert!(
        text.starts_with("::error file=lib.rs,line=6,title=scs-analyze contract::"),
        "{text}"
    );
    // Commas/colons in the message body are escaped per the workflow-
    // command grammar only in properties; the data payload keeps them.
    assert!(text.contains("violates the `no-alloc` contract"), "{text}");
    assert!(text.ends_with("3 violation(s)"), "{text}");
}

#[test]
fn json_format_is_machine_readable_and_self_describing() {
    let a = run("lock_inversion");
    let text = a.render_as(scs_analyze::Format::Json);
    assert!(text.contains("\"rule\": \"lock-order\""), "{text}");
    assert!(text.contains("\"path\": \"lib.rs\""), "{text}");
    assert!(text.contains("\"line\": 14"), "{text}");
    assert!(text.contains("\"lock_edges\": 2"), "{text}");
    assert!(text.contains("\"clean\": false"), "{text}");
    let clean = run("false_positives").render_as(scs_analyze::Format::Json);
    assert!(clean.contains("\"diagnostics\": []"), "{clean}");
    assert!(clean.contains("\"clean\": true"), "{clean}");
}
