//! Golden-output tests for `scs analyze`: each seeded fixture tree must
//! produce *exactly one* diagnostic with the exact rendered text, the
//! clean tree must produce none, and `--allow` must silence a rule.
//!
//! The fixture trees live under `tests/fixtures/`, which the workspace
//! walk skips by name — so `scs analyze` on the real repo never sees the
//! seeded violations.

use scs_analyze::{analyze_workspace, Analysis, Config, Rule};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> Analysis {
    analyze_workspace(&Config::new(fixture(name))).expect("fixture tree analyzes")
}

#[test]
fn missing_safety_comment_is_exactly_one_diagnostic() {
    let a = run("missing_safety");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:6: [unsafe-safety-comment] `unsafe` without a `// SAFETY:` justification \
             on the same line or in the comment block directly above"
                .to_string()
        ]
    );
    assert_eq!(a.unsafe_sites, 1);
}

#[test]
fn unjustified_ordering_is_exactly_one_diagnostic() {
    let a = run("ordering");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "telemetry.rs:7: [atomic-ordering-comment] `Ordering::Relaxed` without a \
             `// ordering:` comment naming its pairing (same line or within 6 lines above)"
                .to_string()
        ]
    );
    // The justified load in the same file is counted but not flagged.
    assert_eq!(a.ordering_sites, 2);
}

#[test]
fn alloc_call_in_alloc_free_region_is_exactly_one_diagnostic() {
    let a = run("alloc_region");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "lib.rs:10: [alloc-free-region] heap API `format!` inside a \
             `scs-lint: alloc-free` region (waive a justified false positive with \
             `// alloc-ok: <reason>`)"
                .to_string()
        ]
    );
    assert_eq!(a.alloc_free_regions, 1);
}

#[test]
fn clean_tree_produces_no_diagnostics() {
    let a = run("clean");
    assert!(a.is_clean(), "unexpected diagnostics: {:?}", a.diagnostics);
    // ...and actually exercised every rule's subject matter.
    assert_eq!(a.unsafe_sites, 1);
    assert!(a.ordering_sites >= 2);
    assert_eq!(a.alloc_free_regions, 1);
    assert!(a.render().ends_with("clean"));
}

#[test]
fn unsafe_allowlist_drift_fails_in_both_directions() {
    let a = run("allowlist");
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "gone.rs:0: [unsafe-allowlist] unsafe-allowlist.txt budgets 3 unsafe site(s) \
             but only 0 exist; tighten the entry"
                .to_string(),
            "lib.rs:12: [unsafe-allowlist] 2 unsafe site(s) but unsafe-allowlist.txt \
             budgets 1; new unsafe must be admitted there deliberately"
                .to_string(),
        ]
    );
    assert_eq!(a.unsafe_sites, 2);
}

#[test]
fn allow_flag_silences_a_rule() {
    let mut cfg = Config::new(fixture("alloc_region"));
    cfg.disabled.push(Rule::AllocFree);
    let a = analyze_workspace(&cfg).unwrap();
    assert!(a.is_clean(), "{:?}", a.diagnostics);
}

#[test]
fn render_reports_violation_counts() {
    let a = run("missing_safety");
    let text = a.render();
    assert!(text.contains("1 violation(s)"), "{text}");
    assert!(text.starts_with("lib.rs:6:"), "{text}");
}
