//! The analyzer's strongest fixture is the workspace itself: every
//! rule runs over the real crates and must come back clean, with the
//! coverage counters proving the rules actually had subject matter —
//! a bug that silently skipped every file would also "pass".

use scs_analyze::{analyze_workspace, Config};
use std::path::PathBuf;

#[test]
fn the_real_workspace_is_clean_and_the_rules_saw_real_work() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let a = analyze_workspace(&Config::new(root)).expect("workspace analyzes");
    assert!(
        a.is_clean(),
        "scs analyze found {} diagnostic(s) in the workspace:\n{}",
        a.diagnostics.len(),
        a.render()
    );

    // Coverage floors — not exact counts, so ordinary growth does not
    // break the test, but a scan that quietly saw nothing does.
    assert!(
        a.files_scanned >= 80,
        "only {} files scanned",
        a.files_scanned
    );
    assert!(a.unsafe_sites >= 10, "only {} unsafe sites", a.unsafe_sites);
    assert!(
        a.ordering_sites >= 50,
        "only {} audited ordering sites",
        a.ordering_sites
    );
    // The leader query path, the kernels and the telemetry writers all
    // carry contracts; transitive propagation must reach well past the
    // roots themselves.
    assert!(
        a.contract_roots >= 20,
        "only {} contract roots",
        a.contract_roots
    );
    assert!(
        a.contract_fns_checked >= 100,
        "only {} fns proven under contract",
        a.contract_fns_checked
    );
    // The lock-order graph is populated (and, per is_clean, acyclic).
    assert!(a.lock_sites >= 20, "only {} lock sites", a.lock_sites);
    assert!(a.lock_edges >= 5, "only {} lock edges", a.lock_edges);
}
