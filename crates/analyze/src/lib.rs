//! # scs-analyze — repo-specific concurrency-correctness lints
//!
//! The serving engine is built on hand-rolled lock-free protocols (the
//! seqlock slow-query ring, epoch-swap installs, pooled one-shot reply
//! cells, generation-tagged arena slabs). Their invariants live in
//! comments; this crate makes the comments *mandatory* and machine-checks
//! the repo conventions clippy cannot express:
//!
//! * [`Rule::SafetyComment`] — every `unsafe` site (block, fn, impl,
//!   trait) carries a `// SAFETY:` justification on the same line or in
//!   the comment block immediately above. Clippy's
//!   `undocumented_unsafe_blocks` covers blocks only; this rule also
//!   covers `unsafe fn` / `unsafe impl` and runs on test code.
//! * [`Rule::OrderingComment`] — every explicit atomic ordering
//!   (`Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel` / `SeqCst`,
//!   including fences) in the audited hot-path files
//!   ([`ORDERING_AUDIT_FILES`]: `engine.rs`, `telemetry.rs`, `arena.rs`)
//!   carries a `// ordering:` comment naming what it pairs with (or why
//!   no pairing is needed). The comment may sit on the same line or up to
//!   [`ORDERING_COMMENT_WINDOW`] lines above, so one comment can justify
//!   a short cluster of stores that publish together.
//! * [`Rule::AllocFree`] — regions bracketed by `// scs-lint: alloc-free`
//!   and `// scs-lint: end-alloc-free` may not call heap APIs
//!   (`Box::new`, `Vec::new`/`with_capacity`, `vec!`/`format!`,
//!   `to_vec`/`to_owned`/`to_string`, `collect`, `clone`). A line-level
//!   `// alloc-ok: <reason>` waiver admits the false positives
//!   (refcount-bump `Arc::clone`, `Copy` clones) *with a written reason*.
//!   These regions are the static complement of the release-mode
//!   counting-allocator gates: the gates prove the warm path allocated
//!   nothing at runtime, the regions keep allocation from being
//!   *introduced* where the gates don't reach.
//! * [`Rule::UnsafeAllowlist`] — the workspace's `unsafe` footprint is
//!   pinned by [`ALLOWLIST_FILE`] at the workspace root: per-file site
//!   budgets that must match reality in both directions (a new `unsafe`
//!   outside the budget fails; a stale over-budget entry fails too, so
//!   the allowlist can only shrink or be edited deliberately).
//!
//! Everything is std-only and offline: a hand-rolled lexer strips
//! comments, strings and char literals well enough to lint without a
//! full parser, [`analyze_workspace`] walks the tree (skipping `target`,
//! VCS dirs and lint-fixture trees), and diagnostics come back as
//! sorted `file:line: [rule] message` records. `scs analyze` exits
//! non-zero when any diagnostic survives the `--allow` set, which is
//! what CI gates on.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Files whose atomic orderings must each carry a `// ordering:` comment.
pub const ORDERING_AUDIT_FILES: [&str; 3] = ["engine.rs", "telemetry.rs", "arena.rs"];

/// How many lines above an atomic op an `// ordering:` comment may sit.
pub const ORDERING_COMMENT_WINDOW: usize = 6;

/// How many comment/attribute-only lines above an `unsafe` site a
/// `// SAFETY:` comment may sit.
pub const SAFETY_COMMENT_WINDOW: usize = 12;

/// The per-file unsafe budget, looked up relative to the analysis root.
pub const ALLOWLIST_FILE: &str = "unsafe-allowlist.txt";

/// Region markers for [`Rule::AllocFree`].
pub const REGION_START: &str = "scs-lint: alloc-free";
/// Closes a [`REGION_START`] region.
pub const REGION_END: &str = "scs-lint: end-alloc-free";
/// Line-level waiver inside an alloc-free region; must carry a reason.
pub const ALLOC_WAIVER: &str = "alloc-ok:";

/// Heap-API call patterns forbidden inside alloc-free regions. Matched
/// against comment- and string-stripped source, so mentions in docs or
/// literals don't fire.
pub const HEAP_PATTERNS: [&str; 13] = [
    "Box::new",
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    "format!",
    "String::new",
    "String::from",
    ".to_vec(",
    ".to_owned(",
    ".to_string(",
    ".collect(",
    ".collect::",
    ".clone(",
];

const ORDERING_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One lint rule. `--allow <name>` disables a rule for a run (the CI
/// invocation allows nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unsafe` without an adjacent `// SAFETY:` justification.
    SafetyComment,
    /// Explicit atomic ordering without a `// ordering:` pairing note.
    OrderingComment,
    /// Heap API call inside a `scs-lint: alloc-free` region.
    AllocFree,
    /// `unsafe` footprint drifted from `unsafe-allowlist.txt`.
    UnsafeAllowlist,
}

impl Rule {
    /// Every rule, in diagnostic-sort order.
    pub const ALL: [Rule; 4] = [
        Rule::SafetyComment,
        Rule::OrderingComment,
        Rule::AllocFree,
        Rule::UnsafeAllowlist,
    ];

    /// Stable name used in diagnostics and `--allow`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "unsafe-safety-comment",
            Rule::OrderingComment => "atomic-ordering-comment",
            Rule::AllocFree => "alloc-free-region",
            Rule::UnsafeAllowlist => "unsafe-allowlist",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: `path:line: [rule] message`, path relative to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the analysis root, `/`-separated.
    pub path: String,
    /// 1-based line of the offending site (0 for whole-file findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-facing explanation with the expected fix.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// What to analyze and which rules to skip.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding [`ALLOWLIST_FILE`]).
    pub root: PathBuf,
    /// Rules disabled via `--allow`.
    pub disabled: Vec<Rule>,
}

impl Config {
    /// All rules enabled.
    pub fn new(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            disabled: Vec::new(),
        }
    }

    fn enabled(&self, rule: Rule) -> bool {
        !self.disabled.contains(&rule)
    }
}

/// The result of a run: diagnostics plus coverage counters, so a "clean"
/// run can be told apart from a run that scanned nothing.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Sorted findings (path, then line, then rule).
    pub diagnostics: Vec<Diagnostic>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// `unsafe` sites seen (compliant or not).
    pub unsafe_sites: usize,
    /// Explicit atomic orderings seen in audited files.
    pub ordering_sites: usize,
    /// `scs-lint: alloc-free` regions seen.
    pub alloc_free_regions: usize,
}

impl Analysis {
    /// `true` iff no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The report `scs analyze` prints: every diagnostic, then a
    /// one-line coverage summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "scs analyze: {} file(s), {} unsafe site(s), {} audited ordering(s), {} alloc-free region(s): {}",
            self.files_scanned,
            self.unsafe_sites,
            self.ordering_sites,
            self.alloc_free_regions,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.diagnostics.len())
            }
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Lexing: split each line into code text and comment text.
// ---------------------------------------------------------------------------

/// One source line after lexing: `code` is the original text with
/// comments and literal *contents* blanked to spaces (delimiters kept,
/// so column positions survive); `comment` is the concatenated comment
/// text that touches the line.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Comment/string-aware line splitter. Handles nested block comments,
/// escapes in string/char literals, raw strings with hashes, and the
/// `'lifetime` vs `'c'` ambiguity well enough for pattern lints; it is
/// not a full lexer and does not need to be.
fn lex(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = LexState::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == LexState::LineComment {
                state = LexState::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().expect("pushed at start");
        match state {
            LexState::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = LexState::LineComment;
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = LexState::BlockComment(1);
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = LexState::Str;
                        line.code.push('"');
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string r"..." / r#"..."#.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            for _ in i..=j {
                                line.code.push(' ');
                            }
                            line.code.pop();
                            line.code.push('"');
                            state = LexState::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                        line.code.push(c);
                    }
                    '\'' => {
                        // 'x' or '\n' is a char literal; 'ident is a
                        // lifetime and stays code.
                        let is_char = match next {
                            Some('\\') => true,
                            Some(_) => chars.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char {
                            state = LexState::CharLit;
                        }
                        line.code.push('\'');
                    }
                    _ => line.code.push(c),
                }
                i += 1;
            }
            LexState::LineComment => {
                line.comment.push(c);
                line.code.push(' ');
                i += 1;
            }
            LexState::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(depth + 1);
                    line.comment.push_str("/*");
                    line.code.push_str("  ");
                    i += 2;
                } else {
                    line.comment.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            LexState::Str => {
                match c {
                    '\\' => {
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = LexState::Code;
                        line.code.push('"');
                    }
                    _ => line.code.push(' '),
                }
                i += 1;
            }
            LexState::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        line.code.push('"');
                        for _ in 0..hashes {
                            line.code.push(' ');
                        }
                        state = LexState::Code;
                        i = j;
                        continue;
                    }
                }
                line.code.push(' ');
                i += 1;
            }
            LexState::CharLit => {
                match c {
                    '\\' => {
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        state = LexState::Code;
                        line.code.push('\'');
                    }
                    _ => line.code.push(' '),
                }
                i += 1;
            }
        }
    }
    lines
}

/// Byte offsets of whole-word occurrences of `word` in `code` (word
/// characters are `[A-Za-z0-9_]`, so `unsafe_code` does not contain the
/// word `unsafe`).
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len().max(1);
    }
    out
}

/// `true` if the line is blank, comment-only, or an attribute — the
/// lines a SAFETY comment is allowed to look through.
fn is_skippable_above_unsafe(line: &Line) -> bool {
    let code = line.code.trim();
    code.is_empty() || code.starts_with("#[") || code.starts_with("#![")
}

// ---------------------------------------------------------------------------
// Per-file scanning.
// ---------------------------------------------------------------------------

/// Everything one file contributes before cross-file rules run.
#[derive(Debug, Default)]
struct FileScan {
    diagnostics: Vec<Diagnostic>,
    /// 1-based lines of `unsafe` keyword sites.
    unsafe_lines: Vec<usize>,
    ordering_sites: usize,
    alloc_free_regions: usize,
}

/// Runs the per-file rules over one lexed file. `rel` is the
/// `/`-separated path reported in diagnostics.
fn scan_file(rel: &str, src: &str, cfg: &Config) -> FileScan {
    let lines = lex(src);
    let mut scan = FileScan::default();
    let file_name = rel.rsplit('/').next().unwrap_or(rel);
    let audited = ORDERING_AUDIT_FILES.contains(&file_name);
    let mut region_start: Option<usize> = None;

    for idx in 0..lines.len() {
        let lineno = idx + 1;
        let line = &lines[idx];

        // -- unsafe sites ---------------------------------------------------
        for _ in word_positions(&line.code, "unsafe") {
            scan.unsafe_lines.push(lineno);
            let mut justified = line.comment.contains("SAFETY:");
            if !justified {
                let mut j = idx;
                for _ in 0..SAFETY_COMMENT_WINDOW {
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                    if !is_skippable_above_unsafe(&lines[j]) {
                        break;
                    }
                    if lines[j].comment.contains("SAFETY:") {
                        justified = true;
                        break;
                    }
                }
            }
            if !justified && cfg.enabled(Rule::SafetyComment) {
                scan.diagnostics.push(Diagnostic {
                    path: rel.to_string(),
                    line: lineno,
                    rule: Rule::SafetyComment,
                    msg: "`unsafe` without a `// SAFETY:` justification on the same line or \
                          in the comment block directly above"
                        .to_string(),
                });
            }
        }

        // -- atomic orderings ----------------------------------------------
        if audited {
            for pos in word_positions(&line.code, "Ordering") {
                let rest = &line.code[pos..];
                let Some(tail) = rest.strip_prefix("Ordering::") else {
                    continue;
                };
                let variant = ORDERING_VARIANTS.iter().find(|v| {
                    tail.starts_with(**v)
                        && !tail[v.len()..]
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                });
                let Some(variant) = variant else { continue };
                scan.ordering_sites += 1;
                let has_note = (idx.saturating_sub(ORDERING_COMMENT_WINDOW)..=idx)
                    .any(|j| lines[j].comment.contains("ordering:"));
                if !has_note && cfg.enabled(Rule::OrderingComment) {
                    scan.diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: lineno,
                        rule: Rule::OrderingComment,
                        msg: format!(
                            "`Ordering::{variant}` without a `// ordering:` comment naming its \
                             pairing (same line or within {ORDERING_COMMENT_WINDOW} lines above)"
                        ),
                    });
                }
            }
        }

        // -- alloc-free regions --------------------------------------------
        // A marker is a *directive* only when it opens the comment text:
        // prose that merely mentions a marker (like this crate's own
        // documentation) must not open a region. The end marker is
        // tested first: both directives share the `scs-lint:` prefix.
        if directive(&line.comment, REGION_END) {
            if region_start.is_none() && cfg.enabled(Rule::AllocFree) {
                scan.diagnostics.push(Diagnostic {
                    path: rel.to_string(),
                    line: lineno,
                    rule: Rule::AllocFree,
                    msg: format!("`{REGION_END}` without an open `{REGION_START}` region"),
                });
            }
            region_start = None;
        } else if directive(&line.comment, REGION_START) {
            if let Some(open) = region_start {
                if cfg.enabled(Rule::AllocFree) {
                    scan.diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: lineno,
                        rule: Rule::AllocFree,
                        msg: format!(
                            "nested `{REGION_START}` (previous region opened on line {open} \
                             was never closed)"
                        ),
                    });
                }
            }
            region_start = Some(lineno);
            scan.alloc_free_regions += 1;
        } else if region_start.is_some() && !line.comment.contains(ALLOC_WAIVER) {
            for pat in HEAP_PATTERNS {
                if line.code.contains(pat) && cfg.enabled(Rule::AllocFree) {
                    scan.diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: lineno,
                        rule: Rule::AllocFree,
                        msg: format!(
                            "heap API `{pat}` inside a `{REGION_START}` region (waive a \
                             justified false positive with `// {ALLOC_WAIVER} <reason>`)"
                        ),
                    });
                }
            }
        }
    }

    if let Some(open) = region_start {
        if cfg.enabled(Rule::AllocFree) {
            scan.diagnostics.push(Diagnostic {
                path: rel.to_string(),
                line: open,
                rule: Rule::AllocFree,
                msg: format!("`{REGION_START}` region is never closed with `{REGION_END}`"),
            });
        }
    }
    scan
}

/// `true` iff the comment text attached to a line *begins* with
/// `marker` — the shape of a deliberate lint directive, as opposed to
/// documentation that merely mentions one.
fn directive(comment: &str, marker: &str) -> bool {
    comment.trim_start().starts_with(marker)
}

// ---------------------------------------------------------------------------
// Allowlist.
// ---------------------------------------------------------------------------

/// Parsed [`ALLOWLIST_FILE`]: `(path, budget)` per non-comment line.
fn parse_allowlist(text: &str) -> Result<Vec<(String, usize)>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: expected `<path> <max-unsafe-sites>`, got {line:?}",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{ALLOWLIST_FILE}:{}: invalid site count {count:?}", i + 1))?;
        out.push((path.to_string(), count));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Workspace walk + entry points.
// ---------------------------------------------------------------------------

/// Directories never scanned: build output, VCS state, and lint-fixture
/// trees (which contain violations *on purpose*).
fn skip_dir(name: &str) -> bool {
    name == "target" || name == ".git" || name == "fixtures" || name.starts_with('.')
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let ty = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if ty.is_dir() {
            if !skip_dir(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every `.rs` file under `cfg.root` and applies the allowlist.
/// `Err` is an I/O or allowlist-syntax failure, *not* a lint finding —
/// findings come back in [`Analysis::diagnostics`].
pub fn analyze_workspace(cfg: &Config) -> Result<Analysis, String> {
    let mut files = Vec::new();
    collect_rs_files(&cfg.root, &mut files)?;
    let mut analysis = Analysis::default();
    let mut unsafe_by_file: Vec<(String, Vec<usize>)> = Vec::new();

    for path in &files {
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let scan = scan_file(&rel, &src, cfg);
        analysis.files_scanned += 1;
        analysis.unsafe_sites += scan.unsafe_lines.len();
        analysis.ordering_sites += scan.ordering_sites;
        analysis.alloc_free_regions += scan.alloc_free_regions;
        analysis.diagnostics.extend(scan.diagnostics);
        if !scan.unsafe_lines.is_empty() {
            unsafe_by_file.push((rel, scan.unsafe_lines));
        }
    }

    if cfg.enabled(Rule::UnsafeAllowlist) {
        let allowlist_path = cfg.root.join(ALLOWLIST_FILE);
        let allowlist = match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => parse_allowlist(&text)?,
            Err(_) => Vec::new(),
        };
        for (rel, lines) in &unsafe_by_file {
            let budget = allowlist
                .iter()
                .find(|(p, _)| p == rel)
                .map_or(0, |(_, n)| *n);
            if lines.len() > budget {
                analysis.diagnostics.push(Diagnostic {
                    path: rel.clone(),
                    line: lines[budget.min(lines.len() - 1)],
                    rule: Rule::UnsafeAllowlist,
                    msg: format!(
                        "{} unsafe site(s) but {ALLOWLIST_FILE} budgets {budget}; new unsafe \
                         must be admitted there deliberately",
                        lines.len()
                    ),
                });
            }
        }
        // Stale budgets fail too: the allowlist must stay minimal, so it
        // documents exactly the unsafe that exists.
        for (path, budget) in &allowlist {
            let actual = unsafe_by_file
                .iter()
                .find(|(p, _)| p == path)
                .map_or(0, |(_, l)| l.len());
            if actual < *budget {
                analysis.diagnostics.push(Diagnostic {
                    path: path.clone(),
                    line: 0,
                    rule: Rule::UnsafeAllowlist,
                    msg: format!(
                        "{ALLOWLIST_FILE} budgets {budget} unsafe site(s) but only {actual} \
                         exist; tighten the entry"
                    ),
                });
            }
        }
    }

    analysis
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> Config {
        Config::new(".")
    }

    fn scan(rel: &str, src: &str) -> FileScan {
        scan_file(rel, src, &cfg_all())
    }

    #[test]
    fn lexer_strips_comments_strings_and_chars() {
        let lines = lex("let x = \"unsafe\"; // unsafe here\nlet c = 'u'; /* Ordering::Relaxed */ let l: &'static str = \"\";");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe here"));
        assert!(!lines[1].code.contains("Ordering"));
        assert!(lines[1].code.contains("'static"));
        assert!(lines[1].comment.contains("Ordering::Relaxed"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_nested_block_comments() {
        let lines = lex("let s = r#\"unsafe \" quote\"#; let t = 1;\n/* outer /* unsafe */ still comment */ let u = 2;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let t"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[1].code.contains("let u"));
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = scan("a.rs", "fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(bad.diagnostics.len(), 1);
        assert_eq!(bad.diagnostics[0].rule, Rule::SafetyComment);
        assert_eq!(bad.diagnostics[0].line, 2);

        let same_line = scan(
            "a.rs",
            "fn f() {\n    unsafe { g() } // SAFETY: g is pure\n}\n",
        );
        assert!(same_line.diagnostics.is_empty());

        let above = scan(
            "a.rs",
            "fn f() {\n    // SAFETY: g upholds X\n    #[allow(clippy::x)]\n    unsafe { g() }\n}\n",
        );
        assert!(above.diagnostics.is_empty());
        assert_eq!(above.unsafe_lines, vec![4]);
    }

    #[test]
    fn safety_comment_does_not_reach_past_code() {
        let src = "// SAFETY: stale comment\nfn g() {}\nunsafe fn h() {}\n";
        let s = scan("a.rs", src);
        assert_eq!(s.diagnostics.len(), 1);
        assert_eq!(s.diagnostics[0].line, 3);
    }

    #[test]
    fn identifiers_containing_unsafe_do_not_count() {
        let s = scan("a.rs", "#![forbid(unsafe_code)]\nfn unsafe_name() {}\n");
        assert!(s.diagnostics.is_empty());
        assert!(s.unsafe_lines.is_empty());
    }

    #[test]
    fn ordering_rule_applies_only_to_audited_files() {
        let src = "x.load(Ordering::Relaxed);\n";
        assert_eq!(scan("telemetry.rs", src).diagnostics.len(), 1);
        assert_eq!(
            scan("crates/service/src/engine.rs", src).diagnostics.len(),
            1
        );
        assert!(scan("stats.rs", src).diagnostics.is_empty());
        assert_eq!(scan("stats.rs", src).ordering_sites, 0);
    }

    #[test]
    fn ordering_comment_satisfies_within_window() {
        let ok =
            "// ordering: pairs with the Release store in publish()\nx.load(Ordering::Acquire);\n";
        assert!(scan("arena.rs", ok).diagnostics.is_empty());
        let far = format!(
            "// ordering: too far\n{}x.load(Ordering::Acquire);\n",
            "\n".repeat(ORDERING_COMMENT_WINDOW)
        );
        assert_eq!(scan("arena.rs", &far).diagnostics.len(), 1);
    }

    #[test]
    fn alloc_free_region_flags_heap_calls() {
        let src = "\
// scs-lint: alloc-free
fn hot() {
    let v = Vec::new();
    let w = x.clone(); // alloc-ok: Arc refcount bump
}
// scs-lint: end-alloc-free
fn cold() { let v = Vec::new(); }
";
        let s = scan("a.rs", src);
        assert_eq!(s.diagnostics.len(), 1, "{:?}", s.diagnostics);
        assert_eq!(s.diagnostics[0].line, 3);
        assert_eq!(s.alloc_free_regions, 1);
    }

    #[test]
    fn unterminated_region_is_reported_at_its_start() {
        let s = scan("a.rs", "// scs-lint: alloc-free\nfn f() {}\n");
        assert_eq!(s.diagnostics.len(), 1);
        assert_eq!(s.diagnostics[0].line, 1);
        assert!(s.diagnostics[0].msg.contains("never closed"));
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let ok = parse_allowlist("# comment\n\ncrates/a.rs 2\n  b.rs   0\n").unwrap();
        assert_eq!(ok, vec![("crates/a.rs".into(), 2), ("b.rs".into(), 0)]);
        assert!(parse_allowlist("a.rs\n").is_err());
        assert!(parse_allowlist("a.rs two\n").is_err());
        assert!(parse_allowlist("a.rs 1 extra\n").is_err());
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut cfg = cfg_all();
        cfg.disabled.push(Rule::SafetyComment);
        let s = scan_file("a.rs", "unsafe fn f() {}\n", &cfg);
        assert!(s.diagnostics.is_empty());
        // Sites are still counted for the allowlist rule.
        assert_eq!(s.unsafe_lines, vec![1]);
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nonsense"), None);
    }
}
