//! # scs-analyze — workspace-wide concurrency & allocation contract analyzer
//!
//! The serving engine is built on hand-rolled lock-free protocols (the
//! seqlock slow-query ring, epoch-swap installs, pooled one-shot reply
//! cells, generation-tagged arena slabs) and a zero-allocation leader
//! query path. Their invariants live in comments; this crate makes the
//! comments *mandatory* and machine-checks the repo conventions clippy
//! cannot express. Since PR 9 it is call-graph-aware: a std-only lexer
//! ([`lexer`]) and item/block parser ([`parser`]) build a cross-crate
//! call graph over the whole workspace, and two whole-program passes run
//! on top of the four line-level rules:
//!
//! * [`Rule::SafetyComment`] — every `unsafe` site (block, fn, impl,
//!   trait) carries a `// SAFETY:` justification on the same line or in
//!   the comment block immediately above. Clippy's
//!   `undocumented_unsafe_blocks` covers blocks only; this rule also
//!   covers `unsafe fn` / `unsafe impl` and runs on test code.
//! * [`Rule::OrderingComment`] — every explicit atomic ordering
//!   (`Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel` / `SeqCst`,
//!   including fences) in the audited files carries a `// ordering:`
//!   comment naming what it pairs with (or why no pairing is needed).
//!   The audit set comes from `scs-analyze.toml` (`[ordering] audit`,
//!   see [`config`]), falling back to [`ORDERING_AUDIT_FILES`]; a file
//!   *outside* the set that uses explicit atomics in non-test code is
//!   itself a finding, with a hint to opt it in.
//! * [`Rule::AllocFree`] — regions bracketed by `// scs-lint: alloc-free`
//!   and `// scs-lint: end-alloc-free` may not call heap APIs. Retained
//!   for surgical spans; new hot-path code should prefer a `no-alloc`
//!   contract, which follows calls.
//! * [`Rule::UnsafeAllowlist`] — the workspace's `unsafe` footprint is
//!   pinned by [`ALLOWLIST_FILE`]: per-file budgets that must match
//!   reality in both directions.
//! * [`Rule::Contract`] — **contract propagation** ([`contracts`]): a fn
//!   annotated `// scs-contract: no-alloc | no-panic | no-block` has its
//!   *entire transitive call tree* checked against the contract's
//!   deny-list (heap constructors; panic sources incl. indexing;
//!   blocking primitives). Violations print the call chain from the
//!   contract root to the offending line; deliberate exceptions are
//!   waived per site with `// contract-ok: <reason>`.
//! * [`Rule::LockOrder`] — the **lock-order graph** ([`lockorder`]):
//!   guard scopes and transitive acquisitions build a global
//!   acquired-while-held graph; a cycle is a potential deadlock and
//!   fails CI. False pairings are waived with `// lock-ok: <reason>`.
//!
//! Everything is std-only and offline. [`analyze_workspace`] walks the
//! tree (skipping `target`, VCS dirs and lint-fixture trees), runs the
//! per-file rules, then the whole-program passes, and returns sorted
//! `file:line: [rule] message` diagnostics renderable as human text,
//! GitHub annotations or JSON ([`Format`]). `scs analyze` exits non-zero
//! when any diagnostic survives the `--allow` set, which is what CI
//! gates on.

#![forbid(unsafe_code)]

pub mod config;
pub mod contracts;
pub mod lexer;
pub mod lockorder;
pub mod parser;

use lexer::{lex, word_positions, Line};
use std::fmt;
use std::path::{Path, PathBuf};

/// Fallback audit set when no `scs-analyze.toml` is present: files whose
/// atomic orderings must each carry a `// ordering:` comment.
pub const ORDERING_AUDIT_FILES: [&str; 3] = ["engine.rs", "telemetry.rs", "arena.rs"];

/// How many lines above an atomic op an `// ordering:` comment may sit.
pub const ORDERING_COMMENT_WINDOW: usize = 6;

/// How many comment/attribute-only lines above an `unsafe` site a
/// `// SAFETY:` comment may sit.
pub const SAFETY_COMMENT_WINDOW: usize = 12;

/// The per-file unsafe budget, looked up relative to the analysis root.
pub const ALLOWLIST_FILE: &str = "unsafe-allowlist.txt";

/// Region markers for [`Rule::AllocFree`].
pub const REGION_START: &str = "scs-lint: alloc-free";
/// Closes a [`REGION_START`] region.
pub const REGION_END: &str = "scs-lint: end-alloc-free";
/// Line-level waiver inside an alloc-free region; must carry a reason.
pub const ALLOC_WAIVER: &str = "alloc-ok:";

/// Heap-API call patterns forbidden inside alloc-free regions. Matched
/// against comment- and string-stripped source, so mentions in docs or
/// literals don't fire. The `no-alloc` contract uses the wider
/// [`contracts::ContractKind::deny_patterns`] list.
pub const HEAP_PATTERNS: [&str; 13] = [
    "Box::new",
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    "format!",
    "String::new",
    "String::from",
    ".to_vec(",
    ".to_owned(",
    ".to_string(",
    ".collect(",
    ".collect::",
    ".clone(",
];

const ORDERING_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One lint rule. `--allow <name>` disables a rule for a run (the CI
/// invocation allows nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unsafe` without an adjacent `// SAFETY:` justification.
    SafetyComment,
    /// Explicit atomic ordering without a `// ordering:` pairing note,
    /// or in a file missing from the `[ordering] audit` config.
    OrderingComment,
    /// Heap API call inside a `scs-lint: alloc-free` region.
    AllocFree,
    /// `unsafe` footprint drifted from `unsafe-allowlist.txt`.
    UnsafeAllowlist,
    /// `scs-contract:` violation anywhere in a contract root's
    /// transitive call tree.
    Contract,
    /// Cycle in the workspace lock-order graph.
    LockOrder,
}

impl Rule {
    /// Every rule, in diagnostic-sort order.
    pub const ALL: [Rule; 6] = [
        Rule::SafetyComment,
        Rule::OrderingComment,
        Rule::AllocFree,
        Rule::UnsafeAllowlist,
        Rule::Contract,
        Rule::LockOrder,
    ];

    /// Stable name used in diagnostics and `--allow`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "unsafe-safety-comment",
            Rule::OrderingComment => "atomic-ordering-comment",
            Rule::AllocFree => "alloc-free-region",
            Rule::UnsafeAllowlist => "unsafe-allowlist",
            Rule::Contract => "contract",
            Rule::LockOrder => "lock-order",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: `path:line: [rule] message`, path relative to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the analysis root, `/`-separated.
    pub path: String,
    /// 1-based line of the offending site (0 for whole-file findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-facing explanation with the expected fix.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Output format for [`Analysis::render_as`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// `file:line: [rule] message` lines plus a coverage summary.
    #[default]
    Human,
    /// GitHub Actions workflow commands (`::error file=…,line=…::…`),
    /// one per diagnostic, plus the summary as plain text.
    Github,
    /// A machine-readable JSON object (hand-rolled, std-only).
    Json,
}

impl Format {
    pub fn name(self) -> &'static str {
        match self {
            Format::Human => "human",
            Format::Github => "github",
            Format::Json => "json",
        }
    }

    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "human" => Some(Format::Human),
            "github" => Some(Format::Github),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// What to analyze and which rules to skip.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding [`ALLOWLIST_FILE`] and
    /// `scs-analyze.toml`).
    pub root: PathBuf,
    /// Rules disabled via `--allow`.
    pub disabled: Vec<Rule>,
}

impl Config {
    /// All rules enabled.
    pub fn new(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            disabled: Vec::new(),
        }
    }

    fn enabled(&self, rule: Rule) -> bool {
        !self.disabled.contains(&rule)
    }
}

/// The result of a run: diagnostics plus coverage counters, so a "clean"
/// run can be told apart from a run that scanned nothing.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Sorted findings (path, then line, then rule).
    pub diagnostics: Vec<Diagnostic>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// `unsafe` sites seen (compliant or not).
    pub unsafe_sites: usize,
    /// Explicit atomic orderings seen in audited files.
    pub ordering_sites: usize,
    /// `scs-lint: alloc-free` regions seen.
    pub alloc_free_regions: usize,
    /// Functions carrying at least one `scs-contract:`.
    pub contract_roots: usize,
    /// (contract, fn) pairs proven — the size of the checked call trees.
    pub contract_fns_checked: usize,
    /// Lock acquisition sites feeding the lock-order graph.
    pub lock_sites: usize,
    /// Distinct edges in the lock-order graph.
    pub lock_edges: usize,
}

impl Analysis {
    /// `true` iff no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn summary(&self) -> String {
        format!(
            "scs analyze: {} file(s), {} unsafe site(s), {} audited ordering(s), {} alloc-free \
             region(s), {} contract root(s) ({} fn(s) proven), {} lock site(s) ({} edge(s), \
             cycle-free unless reported): {}",
            self.files_scanned,
            self.unsafe_sites,
            self.ordering_sites,
            self.alloc_free_regions,
            self.contract_roots,
            self.contract_fns_checked,
            self.lock_sites,
            self.lock_edges,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.diagnostics.len())
            }
        )
    }

    /// The report `scs analyze` prints: every diagnostic, then a
    /// one-line coverage summary.
    pub fn render(&self) -> String {
        self.render_as(Format::Human)
    }

    /// Renders the report in the requested [`Format`].
    pub fn render_as(&self, format: Format) -> String {
        match format {
            Format::Human => {
                let mut out = String::new();
                for d in &self.diagnostics {
                    out.push_str(&d.to_string());
                    out.push('\n');
                }
                out.push_str(&self.summary());
                out
            }
            Format::Github => {
                let mut out = String::new();
                for d in &self.diagnostics {
                    out.push_str(&format!(
                        "::error file={},line={},title=scs-analyze {}::{}\n",
                        github_escape_property(&d.path),
                        d.line.max(1),
                        github_escape_property(d.rule.name()),
                        github_escape_data(&d.msg)
                    ));
                }
                out.push_str(&self.summary());
                out
            }
            Format::Json => {
                let mut out = String::from("{\n  \"diagnostics\": [");
                for (i, d) in self.diagnostics.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                        json_string(&d.path),
                        d.line,
                        json_string(d.rule.name()),
                        json_string(&d.msg)
                    ));
                }
                if !self.diagnostics.is_empty() {
                    out.push_str("\n  ");
                }
                out.push_str(&format!(
                    "],\n  \"summary\": {{\"files_scanned\": {}, \"unsafe_sites\": {}, \
                     \"ordering_sites\": {}, \"alloc_free_regions\": {}, \"contract_roots\": {}, \
                     \"contract_fns_checked\": {}, \"lock_sites\": {}, \"lock_edges\": {}, \
                     \"clean\": {}}}\n}}",
                    self.files_scanned,
                    self.unsafe_sites,
                    self.ordering_sites,
                    self.alloc_free_regions,
                    self.contract_roots,
                    self.contract_fns_checked,
                    self.lock_sites,
                    self.lock_edges,
                    self.is_clean()
                ));
                out
            }
        }
    }
}

/// Escapes a GitHub workflow-command *data* payload (the message).
fn github_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a GitHub workflow-command *property* value (file, title).
fn github_escape_property(s: &str) -> String {
    github_escape_data(s)
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Minimal JSON string encoder (std-only, ASCII control escapes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `true` if the line is blank, comment-only, or an attribute — the
/// lines a SAFETY comment is allowed to look through.
fn is_skippable_above_unsafe(line: &Line) -> bool {
    let code = line.code.trim();
    code.is_empty() || code.starts_with("#[") || code.starts_with("#![")
}

// ---------------------------------------------------------------------------
// Per-file scanning.
// ---------------------------------------------------------------------------

/// Everything one file contributes before cross-file rules run.
#[derive(Debug, Default)]
struct FileScan {
    diagnostics: Vec<Diagnostic>,
    /// 1-based lines of `unsafe` keyword sites.
    unsafe_lines: Vec<usize>,
    ordering_sites: usize,
    alloc_free_regions: usize,
}

/// `true` when `rel` (or its file name) is covered by the audit list:
/// bare names match the file name, entries with `/` match as path
/// suffixes.
fn audited_for_ordering(rel: &str, audit: &[String]) -> bool {
    let file_name = rel.rsplit('/').next().unwrap_or(rel);
    audit.iter().any(|a| {
        if a.contains('/') {
            rel == a || rel.ends_with(&format!("/{a}"))
        } else {
            file_name == a
        }
    })
}

/// Runs the per-file rules over one lexed file. `rel` is the
/// `/`-separated path reported in diagnostics; `in_test(line)` masks
/// `#[cfg(test)]` code for the rules that skip it.
fn scan_file(
    rel: &str,
    lines: &[Line],
    in_test: &dyn Fn(usize) -> bool,
    cfg: &Config,
    audit: &[String],
) -> FileScan {
    let mut scan = FileScan::default();
    let audited = audited_for_ordering(rel, audit);
    let mut region_start: Option<usize> = None;
    let mut unaudited_hint_sent = false;

    for idx in 0..lines.len() {
        let lineno = idx + 1;
        let line = &lines[idx];

        // -- unsafe sites ---------------------------------------------------
        // Deliberately also runs on test code: a test's unsafe needs a
        // justification just as much.
        for _ in word_positions(&line.code, "unsafe") {
            scan.unsafe_lines.push(lineno);
            let mut justified = line.comment.contains("SAFETY:");
            if !justified {
                let mut j = idx;
                for _ in 0..SAFETY_COMMENT_WINDOW {
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                    if !is_skippable_above_unsafe(&lines[j]) {
                        break;
                    }
                    if lines[j].comment.contains("SAFETY:") {
                        justified = true;
                        break;
                    }
                }
            }
            if !justified && cfg.enabled(Rule::SafetyComment) {
                scan.diagnostics.push(Diagnostic {
                    path: rel.to_string(),
                    line: lineno,
                    rule: Rule::SafetyComment,
                    msg: "`unsafe` without a `// SAFETY:` justification on the same line or \
                          in the comment block directly above"
                        .to_string(),
                });
            }
        }

        // -- atomic orderings ----------------------------------------------
        for pos in word_positions(&line.code, "Ordering") {
            let rest = &line.code[pos..];
            let Some(tail) = rest.strip_prefix("Ordering::") else {
                continue;
            };
            let variant = ORDERING_VARIANTS.iter().find(|v| {
                tail.starts_with(**v)
                    && !tail[v.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            });
            let Some(variant) = variant else { continue };
            if audited {
                scan.ordering_sites += 1;
                let has_note = (idx.saturating_sub(ORDERING_COMMENT_WINDOW)..=idx)
                    .any(|j| lines[j].comment.contains("ordering:"));
                // Test-only atomics are not production surface; the
                // audit covers what ships.
                if !has_note && !in_test(lineno) && cfg.enabled(Rule::OrderingComment) {
                    scan.diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: lineno,
                        rule: Rule::OrderingComment,
                        msg: format!(
                            "`Ordering::{variant}` without a `// ordering:` comment naming its \
                             pairing (same line or within {ORDERING_COMMENT_WINDOW} lines above)"
                        ),
                    });
                }
            } else if !in_test(lineno) && !unaudited_hint_sent && cfg.enabled(Rule::OrderingComment)
            {
                // Explicit atomics in a file nobody audits: the file
                // must be opted in, so its orderings get reviewed.
                unaudited_hint_sent = true;
                let file_name = rel.rsplit('/').next().unwrap_or(rel);
                scan.diagnostics.push(Diagnostic {
                    path: rel.to_string(),
                    line: lineno,
                    rule: Rule::OrderingComment,
                    msg: format!(
                        "`Ordering::{variant}` in a file not in the ordering audit list; add \
                         `\"{file_name}\"` to `[ordering] audit` in {} and justify each site \
                         with a `// ordering:` comment",
                        config::CONFIG_FILE
                    ),
                });
            }
        }

        // -- alloc-free regions --------------------------------------------
        // A marker is a *directive* only when it opens the comment text:
        // prose that merely mentions a marker (like this crate's own
        // documentation) must not open a region. The end marker is
        // tested first: both directives share the `scs-lint:` prefix.
        // Test code is exempt: fixtures and tests may quote markers and
        // allocate freely.
        if in_test(lineno) {
            continue;
        }
        if directive(&line.comment, REGION_END) {
            if region_start.is_none() && cfg.enabled(Rule::AllocFree) {
                scan.diagnostics.push(Diagnostic {
                    path: rel.to_string(),
                    line: lineno,
                    rule: Rule::AllocFree,
                    msg: format!("`{REGION_END}` without an open `{REGION_START}` region"),
                });
            }
            region_start = None;
        } else if directive(&line.comment, REGION_START) {
            if let Some(open) = region_start {
                if cfg.enabled(Rule::AllocFree) {
                    scan.diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: lineno,
                        rule: Rule::AllocFree,
                        msg: format!(
                            "nested `{REGION_START}` (previous region opened on line {open} \
                             was never closed)"
                        ),
                    });
                }
            }
            region_start = Some(lineno);
            scan.alloc_free_regions += 1;
        } else if region_start.is_some() && !line.comment.contains(ALLOC_WAIVER) {
            for pat in HEAP_PATTERNS {
                if line.code.contains(pat) && cfg.enabled(Rule::AllocFree) {
                    scan.diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: lineno,
                        rule: Rule::AllocFree,
                        msg: format!(
                            "heap API `{pat}` inside a `{REGION_START}` region (waive a \
                             justified false positive with `// {ALLOC_WAIVER} <reason>`)"
                        ),
                    });
                }
            }
        }
    }

    if let Some(open) = region_start {
        if cfg.enabled(Rule::AllocFree) {
            scan.diagnostics.push(Diagnostic {
                path: rel.to_string(),
                line: open,
                rule: Rule::AllocFree,
                msg: format!("`{REGION_START}` region is never closed with `{REGION_END}`"),
            });
        }
    }
    scan
}

/// `true` iff the comment text attached to a line *begins* with
/// `marker` — the shape of a deliberate lint directive, as opposed to
/// documentation that merely mentions one.
fn directive(comment: &str, marker: &str) -> bool {
    comment.trim_start().starts_with(marker)
}

// ---------------------------------------------------------------------------
// Allowlist.
// ---------------------------------------------------------------------------

/// Parsed [`ALLOWLIST_FILE`]: `(path, budget)` per non-comment line.
fn parse_allowlist(text: &str) -> Result<Vec<(String, usize)>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{ALLOWLIST_FILE}:{}: expected `<path> <max-unsafe-sites>`, got {line:?}",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{ALLOWLIST_FILE}:{}: invalid site count {count:?}", i + 1))?;
        out.push((path.to_string(), count));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Workspace walk + entry points.
// ---------------------------------------------------------------------------

/// Directories never scanned: build output, VCS state, and lint-fixture
/// trees (which contain violations *on purpose*).
fn skip_dir(name: &str) -> bool {
    name == "target" || name == ".git" || name == "fixtures" || name.starts_with('.')
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let ty = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if ty.is_dir() {
            if !skip_dir(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `true` when the whole file is test/bench/example collateral, so its
/// fns never join the production call graph.
fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Analyzes every `.rs` file under `cfg.root`: the per-file rules, the
/// unsafe allowlist, contract propagation and the lock-order graph.
/// `Err` is an I/O or config-syntax failure, *not* a lint finding —
/// findings come back in [`Analysis::diagnostics`].
pub fn analyze_workspace(cfg: &Config) -> Result<Analysis, String> {
    let toml = config::load(&cfg.root)?;
    let audit: Vec<String> = toml
        .ordering_audit
        .unwrap_or_else(|| ORDERING_AUDIT_FILES.iter().map(|s| s.to_string()).collect());

    let mut paths = Vec::new();
    collect_rs_files(&cfg.root, &mut paths)?;
    let mut analysis = Analysis::default();
    let mut unsafe_by_file: Vec<(String, Vec<usize>)> = Vec::new();
    let mut files: Vec<contracts::SourceFile> = Vec::new();

    for path in &paths {
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let lines = lex(&src);
        let in_test_file = is_test_path(&rel);
        let ast = parser::parse(&lines, in_test_file);
        let scan = scan_file(
            &rel,
            &lines,
            &|line| in_test_file || ast.in_test_range(line),
            cfg,
            &audit,
        );
        analysis.files_scanned += 1;
        analysis.unsafe_sites += scan.unsafe_lines.len();
        analysis.ordering_sites += scan.ordering_sites;
        analysis.alloc_free_regions += scan.alloc_free_regions;
        analysis.diagnostics.extend(scan.diagnostics);
        if !scan.unsafe_lines.is_empty() {
            unsafe_by_file.push((rel.clone(), scan.unsafe_lines));
        }
        files.push(contracts::SourceFile {
            rel,
            lines,
            ast,
            in_test_file,
        });
    }

    if cfg.enabled(Rule::UnsafeAllowlist) {
        let allowlist_path = cfg.root.join(ALLOWLIST_FILE);
        let allowlist = match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => parse_allowlist(&text)?,
            Err(_) => Vec::new(),
        };
        for (rel, lines) in &unsafe_by_file {
            let budget = allowlist
                .iter()
                .find(|(p, _)| p == rel)
                .map_or(0, |(_, n)| *n);
            if lines.len() > budget {
                analysis.diagnostics.push(Diagnostic {
                    path: rel.clone(),
                    line: lines[budget.min(lines.len() - 1)],
                    rule: Rule::UnsafeAllowlist,
                    msg: format!(
                        "{} unsafe site(s) but {ALLOWLIST_FILE} budgets {budget}; new unsafe \
                         must be admitted there deliberately",
                        lines.len()
                    ),
                });
            }
        }
        // Stale budgets fail too: the allowlist must stay minimal, so it
        // documents exactly the unsafe that exists.
        for (path, budget) in &allowlist {
            let actual = unsafe_by_file
                .iter()
                .find(|(p, _)| p == path)
                .map_or(0, |(_, l)| l.len());
            if actual < *budget {
                analysis.diagnostics.push(Diagnostic {
                    path: path.clone(),
                    line: 0,
                    rule: Rule::UnsafeAllowlist,
                    msg: format!(
                        "{ALLOWLIST_FILE} budgets {budget} unsafe site(s) but only {actual} \
                         exist; tighten the entry"
                    ),
                });
            }
        }
    }

    // Whole-program passes share one name-resolution index.
    let index = contracts::FnIndex::build(&files);
    if cfg.enabled(Rule::Contract) {
        let (diags, stats) = contracts::check_contracts(&files, &index);
        analysis.diagnostics.extend(diags);
        analysis.contract_roots = stats.roots;
        analysis.contract_fns_checked = stats.fns_checked;
    }
    if cfg.enabled(Rule::LockOrder) {
        let (diags, stats) = lockorder::check_lock_order(&files, &index);
        analysis.diagnostics.extend(diags);
        analysis.lock_sites = stats.sites;
        analysis.lock_edges = stats.edges;
    }

    analysis
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> Config {
        Config::new(".")
    }

    fn default_audit() -> Vec<String> {
        ORDERING_AUDIT_FILES.iter().map(|s| s.to_string()).collect()
    }

    fn scan(rel: &str, src: &str) -> FileScan {
        let lines = lex(src);
        let ast = parser::parse(&lines, false);
        scan_file(
            rel,
            &lines,
            &|line| ast.in_test_range(line),
            &cfg_all(),
            &default_audit(),
        )
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = scan("a.rs", "fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(bad.diagnostics.len(), 1);
        assert_eq!(bad.diagnostics[0].rule, Rule::SafetyComment);
        assert_eq!(bad.diagnostics[0].line, 2);

        let same_line = scan(
            "a.rs",
            "fn f() {\n    unsafe { g() } // SAFETY: g is pure\n}\n",
        );
        assert!(same_line.diagnostics.is_empty());

        let above = scan(
            "a.rs",
            "fn f() {\n    // SAFETY: g upholds X\n    #[allow(clippy::x)]\n    unsafe { g() }\n}\n",
        );
        assert!(above.diagnostics.is_empty());
        assert_eq!(above.unsafe_lines, vec![4]);
    }

    #[test]
    fn safety_comment_does_not_reach_past_code() {
        let src = "// SAFETY: stale comment\nfn g() {}\nunsafe fn h() {}\n";
        let s = scan("a.rs", src);
        assert_eq!(s.diagnostics.len(), 1);
        assert_eq!(s.diagnostics[0].line, 3);
    }

    #[test]
    fn identifiers_containing_unsafe_do_not_count() {
        let s = scan("a.rs", "#![forbid(unsafe_code)]\nfn unsafe_name() {}\n");
        assert!(s.diagnostics.is_empty());
        assert!(s.unsafe_lines.is_empty());
    }

    #[test]
    fn ordering_rule_applies_only_to_audited_files() {
        let src = "x.load(Ordering::Relaxed);\n";
        assert_eq!(scan("telemetry.rs", src).diagnostics.len(), 1);
        assert_eq!(
            scan("crates/service/src/engine.rs", src).diagnostics.len(),
            1
        );
        assert_eq!(scan("stats.rs", src).ordering_sites, 0);
    }

    #[test]
    fn unaudited_atomics_get_one_hint() {
        let src =
            "fn f(x: &A) {\n    x.load(Ordering::Relaxed);\n    x.load(Ordering::Acquire);\n}\n";
        let s = scan("stats.rs", src);
        assert_eq!(s.diagnostics.len(), 1, "{:?}", s.diagnostics);
        assert!(
            s.diagnostics[0].msg.contains("audit"),
            "{}",
            s.diagnostics[0].msg
        );
        assert!(s.diagnostics[0].msg.contains("stats.rs"));
        // Test-only atomics do not need opt-in.
        let test_only =
            "#[cfg(test)]\nmod tests {\n    fn t(x: &A) { x.load(Ordering::SeqCst); }\n}\n";
        assert!(scan("stats.rs", test_only).diagnostics.is_empty());
    }

    #[test]
    fn audit_entries_match_names_and_suffixes() {
        let audit = vec!["engine.rs".to_string(), "service/src/stats.rs".to_string()];
        assert!(audited_for_ordering("crates/service/src/engine.rs", &audit));
        assert!(audited_for_ordering("crates/service/src/stats.rs", &audit));
        assert!(!audited_for_ordering("crates/other/src/stats.rs", &audit));
    }

    #[test]
    fn ordering_comment_satisfies_within_window() {
        let ok =
            "// ordering: pairs with the Release store in publish()\nx.load(Ordering::Acquire);\n";
        assert!(scan("arena.rs", ok).diagnostics.is_empty());
        let far = format!(
            "// ordering: too far\n{}x.load(Ordering::Acquire);\n",
            "\n".repeat(ORDERING_COMMENT_WINDOW)
        );
        assert_eq!(scan("arena.rs", &far).diagnostics.len(), 1);
    }

    #[test]
    fn alloc_free_region_flags_heap_calls() {
        let src = "\
// scs-lint: alloc-free
fn hot() {
    let v = Vec::new();
    let w = x.clone(); // alloc-ok: Arc refcount bump
}
// scs-lint: end-alloc-free
fn cold() { let v = Vec::new(); }
";
        let s = scan("a.rs", src);
        assert_eq!(s.diagnostics.len(), 1, "{:?}", s.diagnostics);
        assert_eq!(s.diagnostics[0].line, 3);
        assert_eq!(s.alloc_free_regions, 1);
    }

    #[test]
    fn unterminated_region_is_reported_at_its_start() {
        let s = scan("a.rs", "// scs-lint: alloc-free\nfn f() {}\n");
        assert_eq!(s.diagnostics.len(), 1);
        assert_eq!(s.diagnostics[0].line, 1);
        assert!(s.diagnostics[0].msg.contains("never closed"));
    }

    #[test]
    fn markers_in_tests_strings_and_docs_do_not_fire() {
        // In a #[cfg(test)] module: markers and heap calls are exempt.
        let in_test = "\
#[cfg(test)]
mod tests {
    // scs-lint: alloc-free
    fn t() {
        let v = Vec::new();
    }
}
";
        assert!(scan("a.rs", in_test).diagnostics.is_empty(), "cfg(test)");
        // In a string literal: the marker is data, not a directive.
        let in_str = "fn f() -> &'static str {\n    \"// scs-lint: alloc-free\"\n}\nfn g() { let v = Vec::new(); }\n";
        assert!(scan("a.rs", in_str).diagnostics.is_empty(), "string");
        // In a doc comment: prose, not a directive.
        let in_doc = "/// scs-lint: alloc-free\nfn f() { let v = Vec::new(); }\n";
        assert!(scan("a.rs", in_doc).diagnostics.is_empty(), "doc");
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let ok = parse_allowlist("# comment\n\ncrates/a.rs 2\n  b.rs   0\n").unwrap();
        assert_eq!(ok, vec![("crates/a.rs".into(), 2), ("b.rs".into(), 0)]);
        assert!(parse_allowlist("a.rs\n").is_err());
        assert!(parse_allowlist("a.rs two\n").is_err());
        assert!(parse_allowlist("a.rs 1 extra\n").is_err());
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut cfg = cfg_all();
        cfg.disabled.push(Rule::SafetyComment);
        let lines = lex("unsafe fn f() {}\n");
        let ast = parser::parse(&lines, false);
        let s = scan_file(
            "a.rs",
            &lines,
            &|line| ast.in_test_range(line),
            &cfg,
            &default_audit(),
        );
        assert!(s.diagnostics.is_empty());
        // Sites are still counted for the allowlist rule.
        assert_eq!(s.unsafe_lines, vec![1]);
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nonsense"), None);
    }

    #[test]
    fn formats_render_diagnostics_and_summary() {
        let analysis = Analysis {
            diagnostics: vec![Diagnostic {
                path: "a.rs".to_string(),
                line: 3,
                rule: Rule::Contract,
                msg: "`Vec::new` violates `no-alloc`\nsecond line".to_string(),
            }],
            files_scanned: 1,
            ..Analysis::default()
        };
        let human = analysis.render_as(Format::Human);
        assert!(human.starts_with("a.rs:3: [contract]"), "{human}");
        let github = analysis.render_as(Format::Github);
        assert!(
            github.starts_with("::error file=a.rs,line=3,title=scs-analyze contract::"),
            "{github}"
        );
        assert!(github.contains("%0A"), "newline must be escaped: {github}");
        let json = analysis.render_as(Format::Json);
        assert!(json.contains("\"rule\": \"contract\""), "{json}");
        assert!(json.contains("\\nsecond line"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
    }

    #[test]
    fn format_names_round_trip() {
        for f in [Format::Human, Format::Github, Format::Json] {
            assert_eq!(Format::from_name(f.name()), Some(f));
        }
        assert_eq!(Format::from_name("xml"), None);
    }
}
