//! Line-oriented Rust lexer: splits each source line into *code* text
//! (comments removed, string/char-literal contents blanked to spaces so
//! column positions survive), *comment* text (plain `//` and `/* */`
//! comments — the only place lint directives are honored) and *doc*
//! text (`///`, `//!`, `/** */`, `/*! */` — documentation, where a
//! mention of a marker is prose, never a directive).
//!
//! It is not a full lexer and does not need to be: it handles nested
//! block comments, escapes in string/char literals, raw strings with
//! hashes, and the `'lifetime` vs `'c'` ambiguity well enough for the
//! pattern- and token-level analyses built on top.

/// One source line after lexing.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Original text with comments and literal contents blanked.
    pub code: String,
    /// Concatenated plain-comment text touching the line. Lint
    /// directives (`scs-lint:`, `scs-contract:`, waivers, `SAFETY:`,
    /// `ordering:`) are only read from here.
    pub comment: String,
    /// Concatenated doc-comment text touching the line. Kept separate
    /// so documentation can *talk about* directives without issuing
    /// them (regression-tested).
    pub doc: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LexState {
    Code,
    LineComment { doc: bool },
    BlockComment { depth: u32, doc: bool },
    Str,
    RawStr(u32),
    CharLit,
}

/// Comment/string-aware line splitter.
pub fn lex(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = LexState::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, LexState::LineComment { .. }) {
                state = LexState::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().expect("pushed at start");
        match state {
            LexState::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        // `///` and `//!` are doc comments; `////…` is a
                        // plain comment again (rustdoc's rule).
                        let c2 = chars.get(i + 2).copied();
                        let doc = (c2 == Some('/') && chars.get(i + 3).copied() != Some('/'))
                            || c2 == Some('!');
                        state = LexState::LineComment { doc };
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        let c2 = chars.get(i + 2).copied();
                        let doc = (c2 == Some('*') && chars.get(i + 3).copied() != Some('/'))
                            || c2 == Some('!');
                        state = LexState::BlockComment { depth: 1, doc };
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = LexState::Str;
                        line.code.push('"');
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string r"..." / r#"..."#.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            for _ in i..=j {
                                line.code.push(' ');
                            }
                            line.code.pop();
                            line.code.push('"');
                            state = LexState::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                        line.code.push(c);
                    }
                    '\'' => {
                        // 'x' or '\n' is a char literal; 'ident is a
                        // lifetime and stays code.
                        let is_char = match next {
                            Some('\\') => true,
                            Some(_) => chars.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char {
                            state = LexState::CharLit;
                        }
                        line.code.push('\'');
                    }
                    _ => line.code.push(c),
                }
                i += 1;
            }
            LexState::LineComment { doc } => {
                if doc {
                    line.doc.push(c);
                } else {
                    line.comment.push(c);
                }
                line.code.push(' ');
                i += 1;
            }
            LexState::BlockComment { depth, doc } => {
                let next = chars.get(i + 1).copied();
                fn sink(line: &mut Line, doc: bool) -> &mut String {
                    if doc {
                        &mut line.doc
                    } else {
                        &mut line.comment
                    }
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment {
                            depth: depth - 1,
                            doc,
                        }
                    };
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                    sink(line, doc).push_str("/*");
                    line.code.push_str("  ");
                    i += 2;
                } else {
                    sink(line, doc).push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            LexState::Str => {
                match c {
                    '\\' => {
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = LexState::Code;
                        line.code.push('"');
                    }
                    _ => line.code.push(' '),
                }
                i += 1;
            }
            LexState::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        line.code.push('"');
                        for _ in 0..hashes {
                            line.code.push(' ');
                        }
                        state = LexState::Code;
                        i = j;
                        continue;
                    }
                }
                line.code.push(' ');
                i += 1;
            }
            LexState::CharLit => {
                match c {
                    '\\' => {
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        state = LexState::Code;
                        line.code.push('\'');
                    }
                    _ => line.code.push(' '),
                }
                i += 1;
            }
        }
    }
    lines
}

/// Byte offsets of whole-word occurrences of `word` in `code` (word
/// characters are `[A-Za-z0-9_]`, so `unsafe_code` does not contain the
/// word `unsafe`).
pub fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_strings_and_chars() {
        let lines = lex("let x = \"unsafe\"; // unsafe here\nlet c = 'u'; /* Ordering::Relaxed */ let l: &'static str = \"\";");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe here"));
        assert!(!lines[1].code.contains("Ordering"));
        assert!(lines[1].code.contains("'static"));
        assert!(lines[1].comment.contains("Ordering::Relaxed"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_nested_block_comments() {
        let lines = lex("let s = r#\"unsafe \" quote\"#; let t = 1;\n/* outer /* unsafe */ still comment */ let u = 2;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let t"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[1].code.contains("let u"));
    }

    #[test]
    fn doc_comments_are_kept_apart_from_plain_comments() {
        let lines = lex("/// scs-lint: alloc-free (prose)\n//! module docs\n// scs-lint: alloc-free\n/** block doc */ fn f() {}\n//// four slashes is plain again\n");
        assert!(lines[0].doc.contains("scs-lint"));
        assert!(lines[0].comment.is_empty());
        assert!(lines[1].doc.contains("module docs"));
        assert!(lines[2].comment.contains("scs-lint: alloc-free"));
        assert!(lines[2].doc.is_empty());
        assert!(lines[3].doc.contains("block doc"));
        assert!(lines[3].code.contains("fn f"));
        assert!(lines[4].comment.contains("four slashes"));
        assert!(lines[4].doc.is_empty());
    }

    #[test]
    fn word_positions_respect_word_boundaries() {
        assert_eq!(word_positions("unsafe unsafe_code", "unsafe"), vec![0]);
        assert!(word_positions("#![forbid(unsafe_code)]", "unsafe").is_empty());
    }
}
