//! Loader for the root `scs-analyze.toml` — a hand-rolled parser for
//! the tiny TOML subset the analyzer needs (std-only, no dependencies):
//! `#` comments, `[section]` headers, `key = "string"` and
//! `key = [ "a", "b" ]` (single- or multi-line) entries.
//!
//! ```toml
//! [ordering]
//! audit = [
//!     "engine.rs",
//!     "telemetry.rs",
//! ]
//! ```
//!
//! A missing file falls back to the built-in defaults so ad-hoc runs
//! (and fixture trees) keep working; a malformed file is an error — a
//! config that silently parses to nothing would silently disable the
//! audit.

use std::path::Path;

/// File name looked up at the workspace root.
pub const CONFIG_FILE: &str = "scs-analyze.toml";

/// Parsed analyzer configuration.
#[derive(Debug, Default, Clone)]
pub struct AnalyzeToml {
    /// `[ordering] audit = [...]`: file names (or `/`-separated path
    /// suffixes) whose atomic `Ordering::` sites must carry
    /// `// ordering:` comments. `None` when no config file exists.
    pub ordering_audit: Option<Vec<String>>,
}

/// Reads and parses `<root>/scs-analyze.toml`. `Ok(default)` when the
/// file does not exist; `Err` with a `file:line:` message when it does
/// but cannot be parsed.
pub fn load(root: &Path) -> Result<AnalyzeToml, String> {
    let path = root.join(CONFIG_FILE);
    let Ok(src) = std::fs::read_to_string(&path) else {
        return Ok(AnalyzeToml::default());
    };
    parse(&src).map_err(|(line, msg)| format!("{CONFIG_FILE}:{line}: {msg}"))
}

/// Parses config text. Errors carry the 1-based line number.
pub fn parse(src: &str) -> Result<AnalyzeToml, (usize, String)> {
    let mut cfg = AnalyzeToml::default();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return Err((lineno, format!("unterminated section header `{line}`")));
            };
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err((lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        if value.starts_with('[') && !value.ends_with(']') {
            // Multi-line array: accumulate until the closing bracket.
            loop {
                let Some((_, cont)) = lines.next() else {
                    return Err((lineno, format!("unterminated array for key `{key}`")));
                };
                let cont = strip_comment(cont).trim().to_string();
                value.push(' ');
                value.push_str(&cont);
                if cont.ends_with(']') {
                    break;
                }
            }
        }
        match (section.as_str(), key) {
            ("ordering", "audit") => {
                cfg.ordering_audit = Some(parse_string_array(&value, lineno)?);
            }
            _ => {
                return Err((
                    lineno,
                    format!(
                        "unknown key `{key}` in section `[{section}]` (known: [ordering] audit)"
                    ),
                ));
            }
        }
    }
    Ok(cfg)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, (usize, String)> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| (lineno, format!("expected `[ ... ]` array, got `{value}`")))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let s = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                (
                    lineno,
                    format!("array items must be quoted strings, got `{item}`"),
                )
            })?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_line_audit_array() {
        let cfg = parse(
            "# analyzer config\n[ordering]\naudit = [\n    \"engine.rs\", # hot path\n    \"telemetry.rs\",\n]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.ordering_audit,
            Some(vec!["engine.rs".to_string(), "telemetry.rs".to_string()])
        );
    }

    #[test]
    fn parses_single_line_array_and_empty_file() {
        let cfg = parse("[ordering]\naudit = [\"a.rs\"]\n").unwrap();
        assert_eq!(cfg.ordering_audit, Some(vec!["a.rs".to_string()]));
        assert!(parse("").unwrap().ordering_audit.is_none());
    }

    #[test]
    fn rejects_unknown_keys_and_bad_syntax() {
        assert!(parse("[ordering]\nbudget = 3\n").is_err());
        assert!(parse("[typo\n").is_err());
        assert!(parse("[ordering]\naudit = [\"a.rs\"\n").is_err());
        assert!(parse("[ordering]\naudit = [a.rs]\n").is_err());
        let err = parse("stray\n").unwrap_err();
        assert_eq!(err.0, 1);
    }
}
