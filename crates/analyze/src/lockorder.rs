//! Lock-order graph: a static deadlock analysis on the parsed
//! workspace.
//!
//! Every `.lock()` / `.read()` / `.write()` site gets a normalized lock
//! key (see [`crate::parser`]); whenever lock `B` is acquired — directly
//! or through any transitively called function — while a guard for lock
//! `A` is still live, the graph gains the edge `A → B`. A cycle in that
//! graph means two code paths can acquire the same locks in opposite
//! orders: a potential deadlock, reported as a diagnostic and failed in
//! CI. Acyclic nesting is fine and common (pool parent → slot child).
//!
//! Keys deliberately under-merge (two different receivers named
//! `pool.items` on different types stay distinct only if their paths
//! differ textually), because a falsely-merged pair can invent a cycle
//! while a falsely-split pair can only miss one. A site that the
//! analysis misreads is waived with `// lock-ok: <reason>`.

use crate::contracts::{FnId, FnIndex, SourceFile};
use crate::{Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Per-site waiver: excludes the lock or call site from the graph.
pub const LOCK_WAIVER: &str = "lock-ok:";

/// Counters the lock-order pass reports.
#[derive(Debug, Default, Clone, Copy)]
pub struct LockStats {
    /// Lock acquisition sites seen in non-test code.
    pub sites: usize,
    /// Distinct ordered edges in the lock graph.
    pub edges: usize,
}

/// Where an edge was established.
#[derive(Debug, Clone)]
struct EdgeSite {
    file: String,
    line: usize,
    in_fn: String,
    /// Set when the inner lock is reached through a call rather than
    /// taken directly in `in_fn`.
    via: Option<String>,
}

/// Runs the lock-order analysis over the workspace.
pub fn check_lock_order(files: &[SourceFile], index: &FnIndex) -> (Vec<Diagnostic>, LockStats) {
    let mut stats = LockStats::default();
    // acquires[fn] = every lock key the fn may take, transitively.
    // Fixpoint over the call graph (cycle-safe: the union only grows).
    let mut acquires: HashMap<FnId, BTreeSet<String>> = HashMap::new();
    let mut fn_ids: Vec<FnId> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.ast.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            fn_ids.push((fi, gi));
            let mut direct = BTreeSet::new();
            for l in &f.locks {
                if waived(files, fi, l.line) {
                    continue;
                }
                stats.sites += 1;
                direct.insert(l.key.clone());
            }
            acquires.insert((fi, gi), direct);
        }
    }
    loop {
        let mut changed = false;
        for &id in &fn_ids {
            let f = &files[id.0].ast.fns[id.1];
            let mut add: BTreeSet<String> = BTreeSet::new();
            for call in &f.calls {
                if waived(files, id.0, call.line) {
                    continue;
                }
                for target in index.resolve(files, id, call) {
                    if let Some(keys) = acquires.get(&target) {
                        add.extend(keys.iter().cloned());
                    }
                }
            }
            let mine = acquires.get_mut(&id).expect("seeded above");
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Build edges: inner acquisitions (direct or via calls) while an
    // outer guard is live.
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for &id in &fn_ids {
        let file = &files[id.0];
        let f = &file.ast.fns[id.1];
        for outer in &f.locks {
            if waived(files, id.0, outer.line) {
                continue;
            }
            let live = |seq: usize| seq > outer.seq && seq < outer.end_seq;
            for inner in &f.locks {
                if !live(inner.seq) || waived(files, id.0, inner.line) {
                    continue;
                }
                edges
                    .entry((outer.key.clone(), inner.key.clone()))
                    .or_insert_with(|| EdgeSite {
                        file: file.rel.clone(),
                        line: inner.line,
                        in_fn: f.qualified(),
                        via: None,
                    });
            }
            for ev in &f.call_events {
                if !live(ev.seq) {
                    continue;
                }
                let call = &f.calls[ev.call];
                if waived(files, id.0, call.line) {
                    continue;
                }
                for target in index.resolve(files, id, call) {
                    let callee = files[target.0].ast.fns[target.1].qualified();
                    let Some(keys) = acquires.get(&target) else {
                        continue;
                    };
                    for key in keys {
                        edges
                            .entry((outer.key.clone(), key.clone()))
                            .or_insert_with(|| EdgeSite {
                                file: file.rel.clone(),
                                line: call.line,
                                in_fn: f.qualified(),
                                via: Some(callee.clone()),
                            });
                    }
                }
            }
        }
    }
    stats.edges = edges.len();

    // Cycle detection: DFS over the key graph, reporting each distinct
    // cycle once (normalized by rotating to its smallest key).
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut diags = Vec::new();
    let mut seen_cycles: HashSet<Vec<String>> = HashSet::new();
    let nodes: Vec<&String> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<(&String, usize)> = vec![(start, 0)];
        let mut path: Vec<&String> = vec![start];
        let mut on_path: HashSet<&String> = HashSet::new();
        on_path.insert(start);
        while let Some((node, child)) = stack.last_mut() {
            let succ = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
            if *child < succ.len() {
                let next = succ[*child];
                *child += 1;
                if on_path.contains(next) {
                    // Cycle: from `next`'s position in path to the end.
                    let pos = path.iter().position(|k| *k == next).expect("on path");
                    let cyc: Vec<String> = path[pos..].iter().map(|k| (*k).clone()).collect();
                    if let Some(d) = report_cycle(&cyc, &edges, &mut seen_cycles) {
                        diags.push(d);
                    }
                } else {
                    on_path.insert(next);
                    path.push(next);
                    stack.push((next, 0));
                }
            } else {
                on_path.remove(*node);
                path.pop();
                stack.pop();
            }
        }
    }
    (diags, stats)
}

fn waived(files: &[SourceFile], file_idx: usize, line: usize) -> bool {
    files[file_idx].lines[line - 1]
        .comment
        .contains(LOCK_WAIVER)
}

/// Renders one cycle into a diagnostic, or `None` if an equivalent
/// rotation was already reported.
fn report_cycle(
    cycle: &[String],
    edges: &BTreeMap<(String, String), EdgeSite>,
    seen: &mut HashSet<Vec<String>>,
) -> Option<Diagnostic> {
    // Normalize: rotate so the smallest key leads.
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, k)| k.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut norm: Vec<String> = Vec::with_capacity(cycle.len());
    for i in 0..cycle.len() {
        norm.push(cycle[(min + i) % cycle.len()].clone());
    }
    if !seen.insert(norm.clone()) {
        return None;
    }
    let mut ring = String::new();
    let mut provenance = Vec::new();
    for i in 0..norm.len() {
        let from = &norm[i];
        let to = &norm[(i + 1) % norm.len()];
        ring.push_str(&format!("`{from}` → "));
        if let Some(site) = edges.get(&(from.clone(), to.clone())) {
            let via = site
                .via
                .as_ref()
                .map(|v| format!(" via {v}"))
                .unwrap_or_default();
            provenance.push(format!(
                "`{from}` → `{to}` in {} ({}:{}{via})",
                site.in_fn, site.file, site.line
            ));
        }
    }
    ring.push_str(&format!("`{}`", norm[0]));
    let anchor = edges
        .get(&(
            norm[0].clone(),
            norm.get(1).cloned().unwrap_or_else(|| norm[0].clone()),
        ))
        .cloned();
    let (path, line) = anchor
        .map(|s| (s.file, s.line))
        .unwrap_or_else(|| ("<workspace>".to_string(), 1));
    Some(Diagnostic {
        path,
        line,
        rule: Rule::LockOrder,
        msg: format!(
            "lock-order cycle (potential deadlock): {ring}; acquired as {}; pick one \
             acquisition order or waive a misread site with `// {LOCK_WAIVER} <reason>`",
            provenance.join("; ")
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn file(rel: &str, src: &str) -> SourceFile {
        let lines = lex(src);
        let ast = parse(&lines, false);
        SourceFile {
            rel: rel.to_string(),
            lines,
            ast,
            in_test_file: false,
        }
    }

    fn run(files: Vec<SourceFile>) -> (Vec<Diagnostic>, LockStats) {
        let index = FnIndex::build(&files);
        check_lock_order(&files, &index)
    }

    #[test]
    fn consistent_nesting_has_no_cycle() {
        let (diags, stats) = run(vec![file(
            "a.rs",
            "fn f(p: &P) {\n    let a = p.outer.lock().unwrap();\n    let b = p.inner.lock().unwrap();\n}\nfn g(p: &P) {\n    let a = p.outer.lock().unwrap();\n    let b = p.inner.lock().unwrap();\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.sites, 4);
        assert_eq!(stats.edges, 1);
    }

    #[test]
    fn two_lock_inversion_is_a_cycle() {
        let (diags, _) = run(vec![file(
            "a.rs",
            "fn f(p: &P) {\n    let a = p.x.lock().unwrap();\n    let b = p.y.lock().unwrap();\n}\nfn g(p: &P) {\n    let b = p.y.lock().unwrap();\n    let a = p.x.lock().unwrap();\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].msg.contains("lock-order cycle"),
            "{}",
            diags[0].msg
        );
        assert!(diags[0].msg.contains("`p.x` → `p.y`"), "{}", diags[0].msg);
    }

    #[test]
    fn inversion_through_a_call_is_caught() {
        let (diags, _) = run(vec![file(
            "a.rs",
            "fn f(p: &P) {\n    let a = p.x.lock().unwrap();\n    take_y(p);\n}\nfn take_y(p: &P) {\n    let b = p.y.lock().unwrap();\n}\nfn g(p: &P) {\n    let b = p.y.lock().unwrap();\n    let a = p.x.lock().unwrap();\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("via take_y"), "{}", diags[0].msg);
    }

    #[test]
    fn dead_guard_does_not_order_later_locks() {
        // The temporary dies at the end of its statement; the scoped
        // guard dies at its block's `}` — neither orders what follows.
        let (diags, stats) = run(vec![file(
            "a.rs",
            "fn f(p: &P) {\n    p.x.lock().unwrap().bump();\n    let b = p.y.lock().unwrap();\n}\nfn g(p: &P) {\n    {\n        let a = p.y.lock().unwrap();\n    }\n    let b = p.x.lock().unwrap();\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn waiver_removes_the_edge() {
        let (diags, _) = run(vec![file(
            "a.rs",
            "fn f(p: &P) {\n    let a = p.x.lock().unwrap();\n    let b = p.y.lock().unwrap(); // lock-ok: distinct pools, never aliased\n}\nfn g(p: &P) {\n    let b = p.y.lock().unwrap();\n    let a = p.x.lock().unwrap();\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn self_nesting_of_one_key_is_reported() {
        let (diags, _) = run(vec![file(
            "a.rs",
            "struct Q;\nimpl Q {\n    fn f(&self) {\n        let a = self.items.lock().unwrap();\n        let b = self.items.lock().unwrap();\n    }\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].msg.contains("`Q::items` → `Q::items`"),
            "{}",
            diags[0].msg
        );
    }

    #[test]
    fn test_code_is_ignored() {
        let (diags, stats) = run(vec![file(
            "a.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(p: &P) {\n        let a = p.x.lock().unwrap();\n        let b = p.y.lock().unwrap();\n    }\n    fn g(p: &P) {\n        let b = p.y.lock().unwrap();\n        let a = p.x.lock().unwrap();\n    }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.sites, 0);
    }
}
