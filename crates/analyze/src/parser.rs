//! Item/block parser over the lexed token stream: enough Rust structure
//! to build a cross-crate call graph without a real compiler. It
//! recognizes `mod` items (tracking `#[cfg(test)]` subtrees), `impl`
//! blocks (for method qualification), `struct` items (field types, for
//! receiver-chain resolution), `fn` items with their body spans and
//! local/parameter types, call expressions (free, path-qualified,
//! method and macro calls) and `.lock()`-family acquisitions with guard
//! scopes.
//!
//! Method receivers are resolved *typedly*, not by name: `inner.serve()`
//! binds only when `inner`'s type is known (a parameter annotation, a
//! `let x = Type::new(..)` / `let x = Type { .. }` / `let x: Type`
//! binding, or a struct-field chain like `self.cache.get()` through
//! parsed field types). An unknown receiver resolves to nothing — a
//! deliberate precision-over-recall choice: guessing by method name
//! alone would bind std collection calls (`push`, `get`, `len`…) to
//! same-named workspace methods and fabricate call-graph edges (and
//! with them, phantom lock-order cycles).
//!
//! Everything downstream — contract propagation, the lock-order graph —
//! consumes the [`FileAst`] produced here.

use crate::lexer::Line;
use std::collections::HashMap;

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub line: usize,
    pub kind: TokKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    Ident(String),
    /// `::`
    PathSep,
    Punct(char),
}

/// Tokenizes the comment/string-stripped code text of every line.
pub fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let bytes = line.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
            } else if b.is_ascii_alphanumeric() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    line: lineno,
                    kind: TokKind::Ident(line.code[start..i].to_string()),
                });
            } else if b == b':' && bytes.get(i + 1) == Some(&b':') {
                toks.push(Tok {
                    line: lineno,
                    kind: TokKind::PathSep,
                });
                i += 2;
            } else {
                toks.push(Tok {
                    line: lineno,
                    kind: TokKind::Punct(b as char),
                });
                i += 1;
            }
        }
    }
    toks
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments of the callee; the last one is the function name.
    /// `foo(` → `["foo"]`, `Type::foo(` → `["Type", "foo"]`,
    /// `.foo(` → `["foo"]` with `method = true`.
    pub path: Vec<String>,
    /// `true` for `recv.name(...)` method-call syntax.
    pub method: bool,
    /// Receiver chain in source order for method calls: `self.cache`
    /// for `self.cache.get(..)`. Empty for non-method calls.
    pub recv: Vec<String>,
    /// `false` when the receiver chain hit something the parser cannot
    /// name (an indexing result, a parenthesized expression, a literal)
    /// — such a call never resolves.
    pub recv_complete: bool,
    /// `true` for `name!(...)` macro invocations.
    pub is_macro: bool,
    pub line: usize,
}

impl CallSite {
    /// The callee's unqualified name.
    pub fn name(&self) -> &str {
        self.path.last().expect("path is never empty")
    }
}

/// One `.lock()` / `.read()` / `.write()` acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Normalized lock identity — see [`FileAst`] docs.
    pub key: String,
    pub line: usize,
    /// `true` when the guard is `let`-bound (lives to end of enclosing
    /// block); `false` for a temporary consumed within its statement.
    pub let_bound: bool,
    /// Brace depth (within the fn body) at the acquisition.
    pub depth: usize,
    /// Index into the owning function's event list, so the lock-order
    /// pass can replay acquisitions and calls in program order.
    pub seq: usize,
    /// First event index at which the guard is certainly dead: end of
    /// the enclosing block for `let`-bound guards, end of the statement
    /// for temporaries. Events with `seq` in `(self.seq, self.end_seq)`
    /// run while this guard is (conservatively) held.
    pub end_seq: usize,
}

/// A call made inside a function, in program order with the locks.
#[derive(Debug, Clone)]
pub struct CallEvent {
    pub call: usize,
    pub depth: usize,
    pub seq: usize,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Unqualified name.
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method/associated fn.
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Body line span (line of `{` … line of matching `}`), or `None`
    /// for bodiless trait-declaration fns.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` subtree (or a tests/ file — the walker
    /// sets that).
    pub in_test: bool,
    /// Contracts declared via `// scs-contract:` directly above.
    pub contracts: Vec<crate::contracts::ContractKind>,
    /// Known types of parameters and `let`-bound locals, for receiver
    /// resolution. Wrapper-stripped: `inner: &Arc<Inner>` → `Inner`.
    pub local_types: HashMap<String, String>,
    /// Calls made in the body, program order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in the body, program order.
    pub locks: Vec<LockSite>,
    /// Calls annotated with their position relative to lock scopes.
    pub call_events: Vec<CallEvent>,
}

impl FnDef {
    /// `Type::name` when the fn is an associated item, else `name`.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the parser extracts from one file.
#[derive(Debug, Default)]
pub struct FileAst {
    pub fns: Vec<FnDef>,
    /// Named-field structs: type name → (field → wrapper-stripped field
    /// type), for `recv.field.method()` chain resolution.
    pub structs: HashMap<String, HashMap<String, String>>,
    /// 1-based inclusive line ranges covered by `#[cfg(test)]` modules.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileAst {
    /// `true` when `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test_range(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }
}

/// Receiver-method names treated as lock acquisitions.
pub const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

const KEYWORDS: [&str; 31] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "mut", "let",
    "else", "fn", "impl", "use", "pub", "where", "break", "continue", "struct", "enum", "trait",
    "type", "const", "static", "crate", "super", "unsafe", "dyn", "box",
];

/// Smart pointers that deref transparently: a receiver of type
/// `Arc<Inner>` takes `Inner`'s methods. `Mutex`/`RwLock` and friends
/// are deliberately *not* here — their receivers get *their* methods.
const DEREF_WRAPPERS: [&str; 3] = ["Arc", "Rc", "Box"];

struct Scope {
    kind: ScopeKind,
}

enum ScopeKind {
    Mod { test: bool, start_line: usize },
    Impl { type_name: Option<String> },
    Fn { index: usize },
    Struct { name: String },
    Other,
}

/// Parses the token stream of one lexed file. `file_in_test` marks
/// whole-file test context (integration tests, benches, examples).
pub fn parse(lines: &[Line], file_in_test: bool) -> FileAst {
    let toks = tokenize(lines);
    let mut ast = FileAst::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    // `#[cfg(test)]`-attribute pending for the next item.
    let mut pending_cfg_test = false;
    let mut i = 0;

    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('#') => {
                // Attribute: `#[...]` or `#![...]` — scan it whole,
                // noting cfg(test).
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('!'))) {
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('['))) {
                    let mut bdepth = 0usize;
                    let mut text = String::new();
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokKind::Punct('[') => bdepth += 1,
                            TokKind::Punct(']') => {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            TokKind::Ident(id) => {
                                text.push_str(id);
                                text.push(' ');
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if text.contains("cfg ") && text.contains("test ") {
                        pending_cfg_test = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            TokKind::Ident(id) if id == "mod" => {
                let test = pending_cfg_test;
                pending_cfg_test = false;
                let start_line = toks[i].line;
                // `mod name {` opens a scope; `mod name;` does not.
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('{') => {
                            depth += 1;
                            let parent_test = in_test(&scopes);
                            scopes.push(Scope {
                                kind: ScopeKind::Mod {
                                    test: test || parent_test,
                                    start_line,
                                },
                            });
                            break;
                        }
                        TokKind::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
            }
            TokKind::Ident(id) if id == "struct" => {
                pending_cfg_test = false;
                // `struct Name { field: Type, ... }` records field
                // types; `struct Name(...);` / `struct Name;` do not.
                let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                let mut j = i + 2;
                // Skip generics `<...>`.
                let mut angle = 0usize;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => angle = angle.saturating_sub(1),
                        TokKind::Punct('{') if angle == 0 => break,
                        TokKind::Punct(';') | TokKind::Punct('(') if angle == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].kind == TokKind::Punct('{') {
                    depth += 1;
                    scopes.push(Scope {
                        kind: ScopeKind::Struct { name },
                    });
                    i = parse_struct_fields(&toks, j + 1, &mut ast, &mut depth, &mut scopes);
                } else {
                    // Unit or tuple struct: known type, no named fields.
                    ast.structs.entry(name).or_default();
                    i = j + 1;
                }
            }
            TokKind::Ident(id) if id == "impl" => {
                pending_cfg_test = false;
                // Extract the implemented type: the path after `for` if
                // present, else the first path after the generics.
                let mut j = i + 1;
                // Skip `<...>` generics.
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
                    let mut adepth = 0usize;
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokKind::Punct('<') => adepth += 1,
                            TokKind::Punct('>') => {
                                adepth -= 1;
                                if adepth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let mut type_name: Option<String> = None;
                let mut last_ident: Option<String> = None;
                let mut angle = 0usize;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('{') if angle == 0 => break,
                        TokKind::Punct(';') if angle == 0 => break,
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => angle = angle.saturating_sub(1),
                        TokKind::Ident(t) if angle == 0 => {
                            if t == "for" {
                                // Everything before was the trait; the
                                // type comes after.
                                last_ident = None;
                            } else if t != "where" && t != "dyn" {
                                last_ident = Some(t.clone());
                            } else if t == "where" {
                                // `impl X where …` — type already seen.
                                if type_name.is_none() {
                                    type_name = last_ident.clone();
                                }
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if type_name.is_none() {
                    type_name = last_ident;
                }
                if j < toks.len() && toks[j].kind == TokKind::Punct('{') {
                    depth += 1;
                    scopes.push(Scope {
                        kind: ScopeKind::Impl { type_name },
                    });
                }
                i = j + 1;
            }
            TokKind::Ident(id) if id == "fn" => {
                i = parse_fn(
                    &toks,
                    i,
                    lines,
                    &mut ast,
                    &mut depth,
                    &mut scopes,
                    file_in_test,
                );
                pending_cfg_test = false;
            }
            TokKind::Punct('{') => {
                depth += 1;
                scopes.push(Scope {
                    kind: ScopeKind::Other,
                });
                pending_cfg_test = false;
                i += 1;
            }
            TokKind::Punct('}') => {
                close_scope(&mut scopes, &mut depth, toks[i].line, &mut ast);
                i += 1;
            }
            _ => {
                if !matches!(toks[i].kind, TokKind::Punct(_)) {
                    pending_cfg_test = pending_cfg_test
                        && matches!(toks[i].kind, TokKind::Ident(ref t) if t == "pub");
                }
                i += 1;
            }
        }
    }
    // Close any unterminated scopes (truncated file) so spans stay sane.
    let last_line = lines.len();
    while !scopes.is_empty() {
        close_scope(&mut scopes, &mut depth, last_line, &mut ast);
    }
    ast
}

fn in_test(scopes: &[Scope]) -> bool {
    scopes
        .iter()
        .any(|s| matches!(s.kind, ScopeKind::Mod { test: true, .. }))
}

fn close_scope(scopes: &mut Vec<Scope>, depth: &mut usize, line: usize, ast: &mut FileAst) {
    if let Some(scope) = scopes.pop() {
        match scope.kind {
            ScopeKind::Mod {
                test: true,
                start_line,
            } => {
                ast.test_ranges.push((start_line, line));
            }
            ScopeKind::Fn { index } => {
                if let Some((start, _)) = ast.fns[index].body {
                    ast.fns[index].body = Some((start, line));
                }
            }
            _ => {}
        }
    }
    *depth = depth.saturating_sub(1);
}

/// The head type of a type-token run: skips references, lifetimes,
/// `mut`/`dyn`/`impl`, and deref-transparent wrappers ([`DEREF_WRAPPERS`]
/// followed by `<`), returning the first type name. `&Arc<Inner>` →
/// `Inner`; `&mut KernelState` → `KernelState`; `RwLock<T>` → `RwLock`
/// (not transparent — its receiver gets RwLock's methods).
fn type_head(toks: &[Tok], mut i: usize, end: usize) -> Option<String> {
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('\'') => i += 2, // lifetime: `'` + ident
            TokKind::Punct('&') | TokKind::Punct('*') | TokKind::Punct('(') => i += 1,
            TokKind::Ident(t) if t == "mut" || t == "dyn" || t == "impl" || t == "const" => i += 1,
            TokKind::Ident(t)
                if DEREF_WRAPPERS.contains(&t.as_str())
                    && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('<'))) =>
            {
                i += 2
            }
            // `path::To::Type` — skip leading module segments.
            TokKind::Ident(_)
                if matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::PathSep)) =>
            {
                i += 2
            }
            TokKind::Ident(t) => return Some(t.clone()),
            _ => return None,
        }
    }
    None
}

/// Parses the fields of a named-field struct body starting right after
/// its `{`. Returns the index after the closing `}`.
fn parse_struct_fields(
    toks: &[Tok],
    mut i: usize,
    ast: &mut FileAst,
    depth: &mut usize,
    scopes: &mut Vec<Scope>,
) -> usize {
    let name = match &scopes.last().expect("struct scope pushed").kind {
        ScopeKind::Struct { name } => name.clone(),
        _ => unreachable!("caller pushes a Struct scope"),
    };
    let mut fields = HashMap::new();
    let mut bdepth = 1usize; // inside the struct's `{`
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') | TokKind::Punct('<') | TokKind::Punct('(') => {
                bdepth += 1;
                i += 1;
            }
            TokKind::Punct('}') | TokKind::Punct('>') | TokKind::Punct(')') => {
                bdepth -= 1;
                if bdepth == 0 {
                    close_scope(scopes, depth, toks[i].line, ast);
                    i += 1;
                    break;
                }
                i += 1;
            }
            TokKind::Ident(fname)
                if bdepth == 1
                    && !KEYWORDS.contains(&fname.as_str())
                    && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(':'))) =>
            {
                // Field: find the end of its type (the `,` or `}` at
                // this level) and take the head type.
                let ty_start = i + 2;
                let mut j = ty_start;
                let mut fdepth = 0usize;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => {
                            fdepth += 1
                        }
                        TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => {
                            fdepth = fdepth.saturating_sub(1)
                        }
                        TokKind::Punct(',') if fdepth == 0 => break,
                        TokKind::Punct('}') if fdepth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(ty) = type_head(toks, ty_start, j) {
                    fields.insert(fname.clone(), ty);
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    ast.structs.insert(name, fields);
    i
}

/// Parses one `fn` item starting at its `fn` keyword token. Returns the
/// index after the item (after the body's `}` or the decl's `;`).
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    toks: &[Tok],
    i: usize,
    lines: &[Line],
    ast: &mut FileAst,
    depth: &mut usize,
    scopes: &mut Vec<Scope>,
    file_in_test: bool,
) -> usize {
    let fn_line = toks[i].line;
    let name = match toks.get(i + 1).map(|t| &t.kind) {
        Some(TokKind::Ident(n)) => n.clone(),
        _ => return i + 1,
    };
    let impl_type = scopes.iter().rev().find_map(|s| match &s.kind {
        ScopeKind::Impl { type_name } => Some(type_name.clone()),
        ScopeKind::Fn { .. } => Some(None), // nested fn: free
        _ => None,
    });
    let in_test_scope = file_in_test
        || in_test(scopes)
        || scopes
            .iter()
            .any(|s| matches!(s.kind, ScopeKind::Fn { index } if ast.fns[index].in_test));
    let contracts = crate::contracts::contracts_above(lines, fn_line);
    // Walk the signature: record parameter types, then find the body
    // `{` (or `;` for a bodiless decl). Angle brackets are not
    // depth-tracked between `)` and `{` — `{`/`;` cannot appear inside
    // them in a signature.
    let mut local_types: HashMap<String, String> = HashMap::new();
    let mut j = i + 2;
    // Skip generics on the fn itself.
    if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        let mut adepth = 0usize;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('<') => adepth += 1,
                TokKind::Punct('>') => {
                    adepth -= 1;
                    if adepth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Parameter list.
    if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('('))) {
        let mut pdepth = 0usize;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => {
                    pdepth += 1;
                    j += 1;
                }
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => {
                    pdepth -= 1;
                    if pdepth == 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                TokKind::Ident(pname)
                    if pdepth == 1
                        && !KEYWORDS.contains(&pname.as_str())
                        && pname != "self"
                        && matches!(
                            toks.get(j + 1).map(|t| &t.kind),
                            Some(TokKind::Punct(':'))
                        ) =>
                {
                    // `name: Type` — type runs to the `,` at depth 1 or
                    // the closing `)`.
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    let mut tdepth = 1usize; // the param list's `(`
                    while k < toks.len() {
                        match &toks[k].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => {
                                tdepth += 1
                            }
                            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => {
                                tdepth -= 1;
                                if tdepth == 0 {
                                    break;
                                }
                            }
                            TokKind::Punct(',') if tdepth == 1 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(ty) = type_head(toks, ty_start, k) {
                        local_types.insert(pname.clone(), ty);
                    }
                    j = k;
                }
                _ => j += 1,
            }
        }
    }
    // Return type / where clause: scan to `{` or `;`.
    let mut body = None;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct(';') => break,
            TokKind::Punct('{') => {
                body = Some(toks[j].line);
                break;
            }
            _ => j += 1,
        }
    }
    let index = ast.fns.len();
    ast.fns.push(FnDef {
        name,
        impl_type: impl_type.flatten(),
        line: fn_line,
        body: body.map(|b| (b, b)), // end patched at scope exit
        in_test: in_test_scope,
        contracts,
        local_types,
        calls: Vec::new(),
        locks: Vec::new(),
        call_events: Vec::new(),
    });
    if body.is_some() {
        *depth += 1;
        scopes.push(Scope {
            kind: ScopeKind::Fn { index },
        });
        parse_body(toks, j + 1, lines, ast, index, depth, scopes)
    } else {
        j + 1
    }
}

/// Walks a receiver chain backwards from the `.` at `dot_idx`
/// (`a.b.c` for `a.b.c.method()`). Returns the segments in source order
/// plus whether the chain start was nameable: `(expr).m()`, `arr[i].m()`
/// and literal receivers return `complete = false`. A call in the chain
/// is kept as `name()`.
fn receiver_chain(toks: &[Tok], dot_idx: usize) -> (Vec<String>, bool) {
    let mut segs: Vec<String> = Vec::new();
    let mut r = dot_idx; // index of the current `.`
    loop {
        if r == 0 {
            return (segs, false);
        }
        match &toks[r - 1].kind {
            TokKind::Ident(seg) if !KEYWORDS.contains(&seg.as_str()) => {
                segs.insert(0, seg.clone());
                r -= 1;
            }
            TokKind::Punct(')') => {
                // A call result: skip the balanced parens and keep the
                // called name as `name()`.
                let mut pdepth = 0usize;
                while r > 0 {
                    match &toks[r - 1].kind {
                        TokKind::Punct(')') => pdepth += 1,
                        TokKind::Punct('(') => {
                            pdepth -= 1;
                            if pdepth == 0 {
                                r -= 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    r -= 1;
                }
                match (r > 0).then(|| &toks[r - 1].kind) {
                    Some(TokKind::Ident(fname)) if !KEYWORDS.contains(&fname.as_str()) => {
                        segs.insert(0, format!("{fname}()"));
                        r -= 1;
                    }
                    _ => return (segs, false), // `(expr).m()`
                }
            }
            _ => return (segs, false), // `[..].m()`, literals, …
        }
        // The chain continues only through another `.`.
        if r > 0 && toks[r - 1].kind == TokKind::Punct('.') {
            r -= 1;
        } else {
            return (segs, true);
        }
    }
}

/// Parses one fn body: records calls, locks, local types and nested
/// scopes. Returns the index after the body's closing `}`.
fn parse_body(
    toks: &[Tok],
    mut i: usize,
    lines: &[Line],
    ast: &mut FileAst,
    fn_index: usize,
    depth: &mut usize,
    scopes: &mut Vec<Scope>,
) -> usize {
    let body_depth = *depth; // depth of the fn's own scope
    let mut seq = 0usize;
    // Is the current statement a `let` binding? Tracked so a `.lock()`
    // temporary inside `let g = other.lock();` is attributed correctly.
    let mut stmt_is_let = false;

    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                *depth += 1;
                scopes.push(Scope {
                    kind: ScopeKind::Other,
                });
                stmt_is_let = false;
                i += 1;
            }
            TokKind::Punct('}') => {
                // Guards acquired in the closing scope die here.
                let closing = *depth;
                for l in ast.fns[fn_index].locks.iter_mut() {
                    if l.end_seq == usize::MAX && l.depth >= closing {
                        l.end_seq = seq;
                    }
                }
                if *depth == body_depth {
                    // End of the fn body itself.
                    close_scope(scopes, depth, toks[i].line, ast);
                    return i + 1;
                }
                close_scope(scopes, depth, toks[i].line, ast);
                i += 1;
            }
            TokKind::Punct(';') => {
                stmt_is_let = false;
                // Statement end: temporaries acquired in this statement
                // at this depth are dropped now.
                let d = *depth;
                for l in ast.fns[fn_index].locks.iter_mut() {
                    if l.end_seq == usize::MAX && !l.let_bound && l.depth == d {
                        l.end_seq = seq;
                    }
                }
                i += 1;
            }
            TokKind::Ident(id) if id == "let" => {
                stmt_is_let = true;
                // Local-type heuristics: `let [mut] name: Type`,
                // `let [mut] name = Type { .. }`,
                // `let [mut] name = Type::ctor(..)`.
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Ident(m)) if m == "mut") {
                    j += 1;
                }
                if let Some(TokKind::Ident(vname)) = toks.get(j).map(|t| &t.kind) {
                    if !KEYWORDS.contains(&vname.as_str()) {
                        let vname = vname.clone();
                        let ty = match toks.get(j + 1).map(|t| &t.kind) {
                            Some(TokKind::Punct(':')) => {
                                // Annotated: type runs to `=` or `;`.
                                let ty_start = j + 2;
                                let mut k = ty_start;
                                let mut tdepth = 0usize;
                                while k < toks.len() {
                                    match &toks[k].kind {
                                        TokKind::Punct('<')
                                        | TokKind::Punct('(')
                                        | TokKind::Punct('[') => tdepth += 1,
                                        TokKind::Punct('>')
                                        | TokKind::Punct(')')
                                        | TokKind::Punct(']') => tdepth = tdepth.saturating_sub(1),
                                        TokKind::Punct('=') | TokKind::Punct(';')
                                            if tdepth == 0 =>
                                        {
                                            break
                                        }
                                        _ => {}
                                    }
                                    k += 1;
                                }
                                type_head(toks, ty_start, k)
                            }
                            Some(TokKind::Punct('=')) => init_type(toks, j + 2),
                            _ => None,
                        };
                        if let Some(ty) = ty {
                            ast.fns[fn_index].local_types.insert(vname, ty);
                        }
                    }
                }
                i += 1;
            }
            TokKind::Ident(id) if id == "fn" => {
                // Nested fn item (rare): parse as a fresh def.
                i = parse_fn(toks, i, lines, ast, depth, scopes, false);
            }
            TokKind::Ident(name) => {
                // A call is Ident followed by `(`, or `Ident !` + open
                // delimiter for macros.
                let next = toks.get(i + 1).map(|t| &t.kind);
                let is_macro = matches!(next, Some(TokKind::Punct('!')))
                    && matches!(
                        toks.get(i + 2).map(|t| &t.kind),
                        Some(TokKind::Punct('('))
                            | Some(TokKind::Punct('['))
                            | Some(TokKind::Punct('{'))
                    );
                let is_call = matches!(next, Some(TokKind::Punct('(')));
                if (is_call || is_macro) && !KEYWORDS.contains(&name.as_str()) {
                    // Walk back to collect the path / receiver shape.
                    let mut path = vec![name.clone()];
                    let mut k = i;
                    let mut method = false;
                    let mut recv: Vec<String> = Vec::new();
                    let mut recv_complete = true;
                    // Leading `path::` segments.
                    while k >= 2
                        && toks[k - 1].kind == TokKind::PathSep
                        && matches!(toks[k - 2].kind, TokKind::Ident(_))
                    {
                        if let TokKind::Ident(seg) = &toks[k - 2].kind {
                            path.insert(0, seg.clone());
                        }
                        k -= 2;
                    }
                    if k >= 1 && toks[k - 1].kind == TokKind::Punct('.') {
                        method = true;
                        let (chain, complete) = receiver_chain(toks, k - 1);
                        recv = chain;
                        recv_complete = complete;
                    }
                    let line = toks[i].line;
                    let fd = &mut ast.fns[fn_index];
                    let call_idx = fd.calls.len();
                    fd.calls.push(CallSite {
                        path,
                        method,
                        recv,
                        recv_complete,
                        is_macro,
                        line,
                    });
                    fd.call_events.push(CallEvent {
                        call: call_idx,
                        depth: *depth,
                        seq,
                    });
                    seq += 1;
                    // Lock acquisition?
                    if is_call && method && LOCK_METHODS.contains(&name.as_str()) {
                        let key = lock_key(&ast.fns[fn_index], ast.fns[fn_index].calls.len() - 1);
                        let fd = &mut ast.fns[fn_index];
                        fd.locks.push(LockSite {
                            key,
                            line,
                            let_bound: stmt_is_let,
                            depth: *depth,
                            seq: seq - 1,
                            end_seq: usize::MAX,
                        });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// The constructed type of a `let name = …` initializer, when the
/// initializer's shape names one: `Type { .. }` (struct literal) or
/// `Type::ctor(..)` / `mod::Type::ctor(..)` (associated-fn call).
/// `Self` maps to the enclosing impl at resolution time.
fn init_type(toks: &[Tok], start: usize) -> Option<String> {
    // Collect the leading `A::B::c` path.
    let mut segs: Vec<String> = Vec::new();
    let mut j = start;
    while let Some(TokKind::Ident(seg)) = toks.get(j).map(|t| &t.kind) {
        if KEYWORDS.contains(&seg.as_str()) {
            return None;
        }
        segs.push(seg.clone());
        match toks.get(j + 1).map(|t| &t.kind) {
            Some(TokKind::PathSep) => j += 2,
            _ => {
                j += 1;
                break;
            }
        }
    }
    if segs.is_empty() {
        return None;
    }
    let starts_upper = |s: &str| s.chars().next().is_some_and(|c| c.is_ascii_uppercase());
    match toks.get(j).map(|t| &t.kind) {
        // `Type { .. }` struct literal.
        Some(TokKind::Punct('{')) if segs.len() == 1 && starts_upper(&segs[0]) => {
            Some(segs[0].clone())
        }
        // `Type::ctor(..)`: the type is the segment before the fn.
        Some(TokKind::Punct('(')) if segs.len() >= 2 => {
            let ty = &segs[segs.len() - 2];
            (starts_upper(ty) || ty == "Self").then(|| ty.clone())
        }
        _ => None,
    }
}

/// Normalized identity of the lock behind a `recv.lock()` site, built
/// from the receiver chain: `self.X` is qualified by the enclosing impl
/// type (`JobQueue::state`), a call receiver keeps its call shape
/// (`shard_of()` → `Impl::shard_of()` when reached via `self`), and any
/// other receiver keeps its dotted path (`pool.items`).
fn lock_key(fd: &FnDef, call_idx: usize) -> String {
    let call = &fd.calls[call_idx];
    if call.recv.is_empty() {
        return "<expr>".to_string();
    }
    if call.recv[0] == "self" {
        if let Some(t) = &fd.impl_type {
            return if call.recv.len() == 1 {
                t.clone()
            } else {
                format!("{t}::{}", call.recv[1..].join("."))
            };
        }
    }
    let joined = call.recv.join(".");
    if call.recv_complete {
        joined
    } else {
        format!("<expr>.{joined}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileAst {
        parse(&lex(src), false)
    }

    #[test]
    fn finds_fns_with_spans_and_impl_types() {
        let src = "\
struct S;
impl S {
    pub fn new() -> S {
        S
    }
}
fn free() {
    helper(1);
}
";
        let ast = parse_src(src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].qualified(), "S::new");
        assert_eq!(ast.fns[0].body, Some((3, 5)));
        assert_eq!(ast.fns[1].qualified(), "free");
        assert_eq!(ast.fns[1].calls.len(), 1);
        assert_eq!(ast.fns[1].calls[0].name(), "helper");
    }

    #[test]
    fn impl_trait_for_type_qualifies_by_type() {
        let ast = parse_src("impl Drop for Guard {\n    fn drop(&mut self) { self.clean(); }\n}\n");
        assert_eq!(ast.fns[0].qualified(), "Guard::drop");
        assert_eq!(ast.fns[0].calls[0].recv, vec!["self"]);
    }

    #[test]
    fn cfg_test_mods_are_ranged_and_fns_marked() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn t() { prod(); }
}
";
        let ast = parse_src(src);
        assert!(!ast.fns[0].in_test);
        assert!(ast.fns[1].in_test);
        assert_eq!(ast.test_ranges, vec![(3, 5)]);
        assert!(ast.in_test_range(4));
        assert!(!ast.in_test_range(1));
    }

    #[test]
    fn calls_capture_paths_methods_and_macros() {
        let src = "\
fn f(x: &T) {
    free(1);
    Type::assoc(2);
    x.method(3);
    self_like::path::deep(4);
    println!(\"hi\");
    if cond(x) { }
}
";
        let ast = parse_src(src);
        let calls = &ast.fns[0].calls;
        let names: Vec<&str> = calls.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["free", "assoc", "method", "deep", "println", "cond"]
        );
        assert_eq!(calls[1].path, vec!["Type", "assoc"]);
        assert!(calls[2].method);
        assert_eq!(calls[2].recv, vec!["x"]);
        assert!(calls[4].is_macro);
    }

    #[test]
    fn receiver_chains_stop_at_keywords_and_expressions() {
        let src = "\
fn f(p: &P) {
    let s = if p.cond() { p.shard_of(1).lock() } else { p.b.lock() };
    arr[0].lock();
}
";
        let ast = parse_src(src);
        let locks = &ast.fns[0].locks;
        assert_eq!(locks.len(), 3, "{locks:?}");
        // `if` must not leak into the chain.
        assert_eq!(locks[0].key, "p.shard_of()");
        assert_eq!(locks[1].key, "p.b");
        // Indexing results are unnameable.
        assert!(locks[2].key.starts_with("<expr>"), "{}", locks[2].key);
    }

    #[test]
    fn param_and_let_types_are_recorded() {
        let src = "\
fn f(inner: &Arc<Inner>, k: &mut KernelState, n: usize) {
    let guard = FlightGuard { inner: 1 };
    let mut q: JobQueue = mk();
    let c = Cell::new(0);
    let d = foo();
}
";
        let ast = parse_src(src);
        let t = &ast.fns[0].local_types;
        assert_eq!(t.get("inner").map(String::as_str), Some("Inner"));
        assert_eq!(t.get("k").map(String::as_str), Some("KernelState"));
        assert_eq!(t.get("n").map(String::as_str), Some("usize"));
        assert_eq!(t.get("guard").map(String::as_str), Some("FlightGuard"));
        assert_eq!(t.get("q").map(String::as_str), Some("JobQueue"));
        assert_eq!(t.get("c").map(String::as_str), Some("Cell"));
        assert_eq!(t.get("d"), None, "plain call does not name a type");
    }

    #[test]
    fn struct_fields_record_head_types() {
        let src = "\
pub struct Inner {
    pub cache: ShardedCache,
    search: RwLock<Arc<SearchIndex>>,
    pool: ArcPool<ReplyCell>,
    n: usize,
}
struct Unit;
struct Tuple(u32, u32);
";
        let ast = parse_src(src);
        let f = &ast.structs["Inner"];
        assert_eq!(f.get("cache").map(String::as_str), Some("ShardedCache"));
        // RwLock is not deref-transparent: its receiver gets RwLock's
        // methods, not the payload's.
        assert_eq!(f.get("search").map(String::as_str), Some("RwLock"));
        assert_eq!(f.get("pool").map(String::as_str), Some("ArcPool"));
        assert_eq!(f.get("n").map(String::as_str), Some("usize"));
        assert!(ast.structs.get("Unit").is_some_and(HashMap::is_empty));
        assert!(ast.structs.get("Tuple").is_some_and(HashMap::is_empty));
    }

    #[test]
    fn lock_sites_get_keys_and_scopes() {
        let src = "\
struct Q;
impl Q {
    fn nested(&self, pool: &Pool) {
        let a = self.items.lock().unwrap();
        pool.state.lock().unwrap().push(1);
        drop(a);
    }
    fn call_recv(&self) {
        self.shard_of(3).lock().unwrap();
    }
}
";
        let ast = parse_src(src);
        let locks = &ast.fns[0].locks;
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].key, "Q::items");
        assert!(locks[0].let_bound);
        assert_eq!(locks[1].key, "pool.state");
        assert!(!locks[1].let_bound);
        assert_eq!(ast.fns[1].locks[0].key, "Q::shard_of()");
    }

    #[test]
    fn bodiless_trait_fns_are_recorded_without_spans() {
        let ast = parse_src("trait T {\n    fn required(&self) -> usize;\n}\n");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].body, None);
    }
}
