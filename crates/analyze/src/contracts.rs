//! Contract propagation over the workspace call graph.
//!
//! A function annotated
//!
//! ```text
//! // scs-contract: no-alloc
//! fn serve_one(...) { ... }
//! ```
//!
//! promises that *it and every function it transitively calls* stays
//! clear of the contract's deny-list: heap constructors for `no-alloc`,
//! panic sources (`unwrap`/`expect`/panicking macros/indexing) for
//! `no-panic`, blocking primitives (`Mutex::lock`, `park`, `sleep`,
//! blocking `recv`/`join`/`wait`) for `no-block`. Multiple contracts
//! are comma- (or `|`-) separated: `// scs-contract: no-alloc, no-block`.
//!
//! The checker resolves calls over every `fn` parsed from the
//! workspace: `Type::f` and `Self::f` by qualifier, free calls to free
//! fns, and method calls through the *type* of their receiver —
//! `self.m()` via the enclosing impl, `inner.m()` via `inner`'s
//! parameter/`let` type, `self.cache.get()` via parsed struct-field
//! types. A receiver whose type is unknown resolves to nothing (its
//! own deny-listed effects are still caught textually at the call
//! site). The walk is breadth-first from each contract root, so a
//! violation carries the *call chain* that reaches it. A deliberate
//! exception is waived per site — pattern line or call edge — with
//! `// contract-ok: <reason>`; the reason is mandatory.

use crate::lexer::Line;
use crate::parser::{CallSite, FileAst};
use crate::{Diagnostic, Rule};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Marker that declares contracts for the `fn` directly below.
pub const CONTRACT_MARKER: &str = "scs-contract:";
/// Per-site waiver inside contract-checked code; must carry a reason.
pub const CONTRACT_WAIVER: &str = "contract-ok:";

/// The three contract kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ContractKind {
    /// No heap allocation anywhere in the transitive call tree.
    NoAlloc,
    /// No panic source: `unwrap`/`expect`, panicking macros, indexing.
    NoPanic,
    /// No blocking primitive: locks, parking, sleeping, blocking recv.
    NoBlock,
}

impl ContractKind {
    pub const ALL: [ContractKind; 3] = [
        ContractKind::NoAlloc,
        ContractKind::NoPanic,
        ContractKind::NoBlock,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ContractKind::NoAlloc => "no-alloc",
            ContractKind::NoPanic => "no-panic",
            ContractKind::NoBlock => "no-block",
        }
    }

    pub fn from_name(name: &str) -> Option<ContractKind> {
        ContractKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Deny-listed call patterns, matched against comment/string-
    /// stripped code with a word boundary on the left when the pattern
    /// starts mid-word (so `unpark(` does not contain `park(`).
    pub fn deny_patterns(self) -> &'static [&'static str] {
        match self {
            ContractKind::NoAlloc => &[
                "Box::new",
                "Vec::new",
                "Vec::with_capacity",
                "vec!",
                "format!",
                "String::new",
                "String::from",
                "HashMap::new",
                "HashMap::with_capacity",
                "HashSet::new",
                "BTreeMap::new",
                "VecDeque::new",
                "Arc::new",
                "Rc::new",
                ".to_vec(",
                ".to_owned(",
                ".to_string(",
                ".collect(",
                ".collect::<",
                ".clone(",
                ".push(",
                ".insert(",
                ".extend(",
                ".reserve(",
                ".resize(",
                ".entry(",
            ],
            ContractKind::NoPanic => &[
                ".unwrap(",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
                "assert!",
                "assert_eq!",
                "assert_ne!",
                "debug_assert!",
                "debug_assert_eq!",
                "debug_assert_ne!",
            ],
            ContractKind::NoBlock => &[
                ".lock(",
                "park(",
                "park_timeout(",
                "sleep(",
                ".recv(",
                ".recv_timeout(",
                ".join(",
                ".wait(",
                ".wait_timeout(",
                ".wait_while(",
            ],
        }
    }
}

impl fmt::Display for ContractKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// First match of `pat` in `code` honoring a word boundary on the left
/// for patterns that start with a word character.
pub fn find_pattern(code: &str, pat: &str) -> Option<usize> {
    let first_is_word = pat
        .as_bytes()
        .first()
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        if !first_is_word
            || at == 0
            || !{
                let b = code.as_bytes()[at - 1];
                b.is_ascii_alphanumeric() || b == b'_'
            }
        {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Column of an indexing/slicing expression on the line, if any: a `[`
/// directly after an identifier, `)` or `]` — the only shapes that
/// desugar to a panicking `Index` at runtime. Attribute (`#[...]`),
/// type (`: [u8; 4]`) and literal (`= [0; 4]`) brackets never match.
pub fn indexing_site(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            return Some(i);
        }
    }
    None
}

/// Parses the contracts declared directly above the `fn` at 1-based
/// `fn_line`: contiguous comment/attribute-only lines are searched for
/// [`CONTRACT_MARKER`] directives. Unknown contract names are ignored
/// here and reported by the workspace pass (which re-scans every
/// marker line).
pub fn contracts_above(lines: &[Line], fn_line: usize) -> Vec<ContractKind> {
    let mut kinds = Vec::new();
    for l in contract_window(lines, fn_line) {
        let line = &lines[l - 1];
        // The fn's own line may carry a trailing directive too.
        for kind in parse_marker(&line.comment) {
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
    }
    kinds.sort();
    kinds
}

/// The 1-based lines whose comments attach to the `fn` at `fn_line`:
/// the line itself plus the contiguous comment/attribute block above.
pub fn contract_window(lines: &[Line], fn_line: usize) -> Vec<usize> {
    let mut out = vec![fn_line];
    let mut idx = fn_line.saturating_sub(1); // 0-based index of line above
    while idx > 0 {
        let line = &lines[idx - 1];
        let code = line.code.trim();
        let skippable = code.is_empty() || code.starts_with("#[") || code.starts_with("#![");
        if !skippable {
            break;
        }
        out.push(idx);
        idx -= 1;
    }
    out
}

/// Contract kinds named by a `scs-contract:` directive in `comment`
/// (empty when there is no directive). Unknown names are skipped.
fn parse_marker(comment: &str) -> Vec<ContractKind> {
    let Some(pos) = comment.find(CONTRACT_MARKER) else {
        return Vec::new();
    };
    parse_marker_names(&comment[pos + CONTRACT_MARKER.len()..])
        .into_iter()
        .filter_map(|n| ContractKind::from_name(&n))
        .collect()
}

/// The raw (possibly unknown) contract names in a directive's payload:
/// everything up to an em-dash/double-dash explanation, split on commas,
/// pipes and whitespace.
pub fn parse_marker_names(payload: &str) -> Vec<String> {
    let payload = payload
        .split('—')
        .next()
        .unwrap_or("")
        .split(" --")
        .next()
        .unwrap_or("")
        .split('(')
        .next()
        .unwrap_or("");
    payload
        .split(|c: char| c == ',' || c == '|' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// One source file as the workspace passes see it.
pub struct SourceFile {
    /// Root-relative `/`-separated path.
    pub rel: String,
    pub lines: Vec<Line>,
    pub ast: FileAst,
    /// Whole file is test/bench/example collateral.
    pub in_test_file: bool,
}

impl SourceFile {
    /// `true` when 1-based `line` is test-only code.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test_file || self.ast.in_test_range(line)
    }
}

/// Global function id: (file index, fn index).
pub type FnId = (usize, usize);

/// Resolution index over every non-test fn with a body, plus the
/// workspace-wide struct-field type map for receiver chains.
pub struct FnIndex {
    by_name: HashMap<String, Vec<FnId>>,
    /// Type name → (field → field type), merged across files.
    fields: HashMap<String, HashMap<String, String>>,
}

impl FnIndex {
    pub fn build(files: &[SourceFile]) -> FnIndex {
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut fields: HashMap<String, HashMap<String, String>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.ast.fns.iter().enumerate() {
                if f.in_test || f.body.is_none() {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
            for (ty, fmap) in &file.ast.structs {
                fields
                    .entry(ty.clone())
                    .or_default()
                    .extend(fmap.iter().map(|(k, v)| (k.clone(), v.clone())));
            }
        }
        FnIndex { by_name, fields }
    }

    /// The workspace type of a method call's receiver, walked through
    /// the chain: head from `self`/parameter/`let` types, later
    /// segments through struct-field types. `None` when any link is
    /// unknown — such a call resolves to nothing rather than guessing.
    fn receiver_type(&self, files: &[SourceFile], caller: FnId, call: &CallSite) -> Option<String> {
        if !call.recv_complete || call.recv.is_empty() {
            return None;
        }
        let f = &files[caller.0].ast.fns[caller.1];
        let head = &call.recv[0];
        let mut ty = if head == "self" {
            f.impl_type.clone()?
        } else if head.ends_with("()") {
            return None; // call-result receiver: untyped
        } else {
            f.local_types.get(head)?.clone()
        };
        if ty == "Self" {
            ty = f.impl_type.clone()?;
        }
        for seg in &call.recv[1..] {
            if seg.ends_with("()") {
                return None;
            }
            ty = self.fields.get(&ty)?.get(seg)?.clone();
        }
        Some(ty)
    }

    /// Resolves one call site made from `caller` to workspace fns.
    /// External calls (std, vendored deps) and calls on receivers of
    /// unknown type resolve to nothing — their effects are caught by
    /// the deny-pattern scan at the call site.
    pub fn resolve(&self, files: &[SourceFile], caller: FnId, call: &CallSite) -> Vec<FnId> {
        if call.is_macro {
            return Vec::new();
        }
        let Some(cands) = self.by_name.get(call.name()) else {
            return Vec::new();
        };
        let caller_impl = files[caller.0].ast.fns[caller.1].impl_type.clone();
        let impl_of = |id: &FnId| files[id.0].ast.fns[id.1].impl_type.clone();
        if call.path.len() >= 2 {
            // `Qual::name(...)` — `Self` means the enclosing impl.
            let qual = &call.path[call.path.len() - 2];
            let want = if qual == "Self" {
                caller_impl.clone()
            } else {
                Some(qual.clone())
            };
            let exact: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|id| impl_of(id) == want)
                .collect();
            if !exact.is_empty() {
                return exact;
            }
            // Module-qualified free fn (`telemetry::record(...)`).
            return cands
                .iter()
                .copied()
                .filter(|id| impl_of(id).is_none())
                .collect();
        }
        if call.method {
            let Some(ty) = self.receiver_type(files, caller, call) else {
                return Vec::new();
            };
            return cands
                .iter()
                .copied()
                .filter(|id| impl_of(id).as_deref() == Some(ty.as_str()))
                .collect();
        }
        // Bare `name(...)`: free fns only.
        cands
            .iter()
            .copied()
            .filter(|id| impl_of(id).is_none())
            .collect()
    }
}

/// Counters the contract pass reports (see `Analysis`).
#[derive(Debug, Default, Clone, Copy)]
pub struct ContractStats {
    /// Functions carrying at least one contract.
    pub roots: usize,
    /// (root, fn) pairs checked — the size of the proven call tree.
    pub fns_checked: usize,
    /// `contract-ok:` waivers honored.
    pub waivers: usize,
}

/// Runs contract propagation over the workspace. Diagnostics carry the
/// full call chain from the contract root to the violating site.
pub fn check_contracts(files: &[SourceFile], index: &FnIndex) -> (Vec<Diagnostic>, ContractStats) {
    let mut diags = Vec::new();
    let mut stats = ContractStats::default();

    // Validate every marker line first: unknown contract names and
    // markers that do not attach to any fn are themselves violations —
    // a misspelled contract must not silently enforce nothing.
    let mut attached: HashSet<(usize, usize)> = HashSet::new(); // (file, line)
    for (fi, file) in files.iter().enumerate() {
        for f in &file.ast.fns {
            for l in contract_window(&file.lines, f.line) {
                attached.insert((fi, l));
            }
        }
    }
    for (fi, file) in files.iter().enumerate() {
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            let Some(pos) = line.comment.find(CONTRACT_MARKER) else {
                continue;
            };
            for name in parse_marker_names(&line.comment[pos + CONTRACT_MARKER.len()..]) {
                if ContractKind::from_name(&name).is_none() {
                    diags.push(Diagnostic {
                        path: file.rel.clone(),
                        line: lineno,
                        rule: Rule::Contract,
                        msg: format!(
                            "unknown contract `{name}` (contracts: no-alloc, no-panic, no-block)"
                        ),
                    });
                }
            }
            if !attached.contains(&(fi, lineno)) {
                diags.push(Diagnostic {
                    path: file.rel.clone(),
                    line: lineno,
                    rule: Rule::Contract,
                    msg: format!(
                        "dangling `{CONTRACT_MARKER}` — the directive must sit in the comment \
                         block directly above a `fn`"
                    ),
                });
            }
        }
    }

    // Propagate each contract from each root.
    let mut reported: HashSet<(ContractKind, String, usize)> = HashSet::new();
    let mut checked: HashSet<(ContractKind, FnId)> = HashSet::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.ast.fns.iter().enumerate() {
            if f.contracts.is_empty() || f.in_test {
                continue;
            }
            stats.roots += 1;
            for &kind in &f.contracts {
                propagate(
                    files,
                    index,
                    (fi, gi),
                    kind,
                    &mut diags,
                    &mut stats,
                    &mut reported,
                    &mut checked,
                );
            }
        }
    }
    (diags, stats)
}

/// BFS from one contract root, checking every reachable fn body.
#[allow(clippy::too_many_arguments)]
fn propagate(
    files: &[SourceFile],
    index: &FnIndex,
    root: FnId,
    kind: ContractKind,
    diags: &mut Vec<Diagnostic>,
    stats: &mut ContractStats,
    reported: &mut HashSet<(ContractKind, String, usize)>,
    checked: &mut HashSet<(ContractKind, FnId)>,
) {
    // parent[fn] = (caller, call line) for chain reconstruction.
    let mut parent: HashMap<FnId, (FnId, usize)> = HashMap::new();
    let mut visited: HashSet<FnId> = HashSet::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    visited.insert(root);
    queue.push_back(root);

    while let Some(id) = queue.pop_front() {
        if checked.insert((kind, id)) {
            stats.fns_checked += 1;
        }
        check_body(files, id, root, kind, &parent, diags, stats, reported);
        let f = &files[id.0].ast.fns[id.1];
        for call in &f.calls {
            let targets = index.resolve(files, id, call);
            if waived(&files[id.0].lines, call.line) {
                // Counted only when the waiver actually cuts an edge —
                // pattern-hit waivers on the same line are counted by
                // the body scan.
                if !targets.is_empty() {
                    stats.waivers += 1;
                }
                continue;
            }
            for target in targets {
                if visited.insert(target) {
                    parent.insert(target, (id, call.line));
                    queue.push_back(target);
                }
            }
        }
    }
}

/// A site is waived by a `// contract-ok:` on its own line, or on a
/// comment-only line directly above — the spot rustfmt parks trailing
/// comments it cannot keep on a brace line.
fn waived(lines: &[Line], lineno: usize) -> bool {
    if lines[lineno - 1].comment.contains(CONTRACT_WAIVER) {
        return true;
    }
    lineno >= 2 && {
        let above = &lines[lineno - 2];
        above.code.trim().is_empty() && above.comment.contains(CONTRACT_WAIVER)
    }
}

/// Scans one fn body for `kind`'s deny patterns; a hit becomes a
/// diagnostic carrying the chain from `root`.
#[allow(clippy::too_many_arguments)]
fn check_body(
    files: &[SourceFile],
    id: FnId,
    root: FnId,
    kind: ContractKind,
    parent: &HashMap<FnId, (FnId, usize)>,
    diags: &mut Vec<Diagnostic>,
    stats: &mut ContractStats,
    reported: &mut HashSet<(ContractKind, String, usize)>,
) {
    let file = &files[id.0];
    let f = &file.ast.fns[id.1];
    let Some((start, end)) = f.body else { return };
    for lineno in start..=end.min(file.lines.len()) {
        let line = &file.lines[lineno - 1];
        if line.code.trim().starts_with("#[") {
            continue;
        }
        let mut hits: Vec<String> = Vec::new();
        for pat in kind.deny_patterns() {
            if find_pattern(&line.code, pat).is_some() {
                hits.push((*pat).to_string());
            }
        }
        if kind == ContractKind::NoPanic && indexing_site(&line.code).is_some() {
            hits.push("indexing `[…]`".to_string());
        }
        if hits.is_empty() {
            continue;
        }
        if waived(&file.lines, lineno) {
            stats.waivers += 1;
            continue;
        }
        for pat in hits {
            if !reported.insert((kind, file.rel.clone(), lineno)) {
                break;
            }
            diags.push(Diagnostic {
                path: file.rel.clone(),
                line: lineno,
                rule: Rule::Contract,
                msg: format!(
                    "`{pat}` violates the `{kind}` contract of `{}`; call chain: {}; waive a \
                     justified site with `// {CONTRACT_WAIVER} <reason>`",
                    files[root.0].ast.fns[root.1].qualified(),
                    render_chain(files, id, root, parent),
                ),
            });
        }
    }
}

/// `root (file:line) → … → offender (file:line)`.
fn render_chain(
    files: &[SourceFile],
    id: FnId,
    root: FnId,
    parent: &HashMap<FnId, (FnId, usize)>,
) -> String {
    // Walk offender → root, then print reversed.
    let mut hops: Vec<FnId> = Vec::new();
    let mut cur = id;
    loop {
        hops.push(cur);
        if cur == root {
            break;
        }
        match parent.get(&cur) {
            Some(&(up, _)) => cur = up,
            None => break,
        }
    }
    hops.reverse();
    let mut out = String::new();
    for (i, fid) in hops.iter().enumerate() {
        let f = &files[fid.0].ast.fns[fid.1];
        if i > 0 {
            out.push_str(" → ");
        }
        out.push_str(&format!(
            "{} ({}:{})",
            f.qualified(),
            files[fid.0].rel,
            f.line
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn file(rel: &str, src: &str) -> SourceFile {
        let lines = lex(src);
        let ast = parse(&lines, false);
        SourceFile {
            rel: rel.to_string(),
            lines,
            ast,
            in_test_file: false,
        }
    }

    #[test]
    fn contract_names_round_trip() {
        for k in ContractKind::ALL {
            assert_eq!(ContractKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ContractKind::from_name("no-magic"), None);
    }

    #[test]
    fn marker_parsing_handles_separators_and_prose() {
        let lines = lex("// scs-contract: no-alloc, no-block — hot path\nfn f() {}\n");
        assert_eq!(
            contracts_above(&lines, 2),
            vec![ContractKind::NoAlloc, ContractKind::NoBlock]
        );
        let lines = lex("// scs-contract: no-alloc | no-panic\n#[inline]\nfn f() {}\n");
        assert_eq!(
            contracts_above(&lines, 3),
            vec![ContractKind::NoAlloc, ContractKind::NoPanic]
        );
        // Doc comments never declare contracts.
        let lines = lex("/// scs-contract: no-alloc\nfn f() {}\n");
        assert!(contracts_above(&lines, 2).is_empty());
    }

    #[test]
    fn pattern_boundaries_prevent_prefix_hits() {
        assert!(find_pattern("t.unpark();", "park(").is_none());
        assert!(find_pattern("thread::park();", "park(").is_some());
        assert!(find_pattern("x.cloned()", ".clone(").is_none());
        assert!(find_pattern("x.clone()", ".clone(").is_some());
    }

    #[test]
    fn indexing_detection_skips_types_attrs_and_literals() {
        assert!(indexing_site("let x = buf[i];").is_some());
        assert!(indexing_site("let s = &v[..n];").is_some());
        assert!(indexing_site("f(a)[0]").is_some());
        assert!(indexing_site("#[inline]").is_none());
        assert!(indexing_site("let x: [u8; 4] = [0; 4];").is_none());
        assert!(indexing_site("m[0][1]").is_some());
    }

    #[test]
    fn transitive_violation_reports_the_chain() {
        let files = vec![
            file(
                "a.rs",
                "// scs-contract: no-alloc\npub fn root() {\n    mid();\n}\n",
            ),
            file("b.rs", "pub fn mid() {\n    leaf();\n}\n"),
            file("c.rs", "pub fn leaf() {\n    let v = Vec::new();\n}\n"),
        ];
        let index = FnIndex::build(&files);
        let (diags, stats) = check_contracts(&files, &index);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].path, "c.rs");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].msg.contains("root (a.rs:2)"), "{}", diags[0].msg);
        assert!(diags[0].msg.contains("mid (b.rs:1)"), "{}", diags[0].msg);
        assert!(diags[0].msg.contains("leaf (c.rs:1)"), "{}", diags[0].msg);
        assert_eq!(stats.roots, 1);
        assert!(stats.fns_checked >= 3);
    }

    #[test]
    fn waivers_stop_patterns_and_edges() {
        let files = vec![file(
            "a.rs",
            "// scs-contract: no-alloc\nfn root() {\n    x.clone(); // contract-ok: Arc refcount bump\n    cold_path(); // contract-ok: init-only branch\n}\nfn cold_path() {\n    let v = Vec::new();\n}\n",
        )];
        let index = FnIndex::build(&files);
        let (diags, stats) = check_contracts(&files, &index);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.waivers, 2);
    }

    #[test]
    fn a_comment_line_directly_above_also_waives() {
        // rustfmt moves trailing comments off brace lines, so the
        // waiver may sit on its own line above the site.
        let files = vec![file(
            "a.rs",
            "// scs-contract: no-alloc\nfn root() {\n    // contract-ok: warm map, growth is cold\n    if seen.insert(k) {\n        n += 1;\n    }\n}\n",
        )];
        let index = FnIndex::build(&files);
        let (diags, stats) = check_contracts(&files, &index);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.waivers, 1);
        // ...but a comment-only line does not waive the line *above* it.
        let files = vec![file(
            "a.rs",
            "// scs-contract: no-alloc\nfn root() {\n    if seen.insert(k) {\n        // contract-ok: misplaced, waives nothing here\n        n += 1;\n    }\n}\n",
        )];
        let index = FnIndex::build(&files);
        let (diags, _) = check_contracts(&files, &index);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains(".insert("), "{}", diags[0].msg);
    }

    #[test]
    fn unknown_and_dangling_markers_are_flagged() {
        let files = vec![file(
            "a.rs",
            "// scs-contract: no-allocs\nfn f() {}\n\n// scs-contract: no-alloc\nlet x = 1;\n",
        )];
        let index = FnIndex::build(&files);
        let (diags, _) = check_contracts(&files, &index);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].msg.contains("unknown contract `no-allocs`"));
        assert!(diags[1].msg.contains("dangling"));
    }

    #[test]
    fn no_panic_and_no_block_fire_on_their_patterns() {
        let files = vec![file(
            "a.rs",
            "// scs-contract: no-panic, no-block\nfn f(m: &M) {\n    m.q.lock().unwrap();\n}\n",
        )];
        let index = FnIndex::build(&files);
        let (diags, _) = check_contracts(&files, &index);
        // One line, two kinds: reported once per kind.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.msg.contains("no-panic")));
        assert!(diags.iter().any(|d| d.msg.contains("no-block")));
    }

    #[test]
    fn test_fns_are_invisible_to_the_graph() {
        let files = vec![file(
            "a.rs",
            "// scs-contract: no-alloc\nfn root() {\n    helper();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() {\n        let v = Vec::new();\n    }\n}\n",
        )];
        let index = FnIndex::build(&files);
        let (diags, _) = check_contracts(&files, &index);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
