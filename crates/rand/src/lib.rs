//! Vendored stand-in for the subset of the [`rand`](https://docs.rs/rand)
//! 0.8 API used by this workspace.
//!
//! The build environment is fully offline (no crates.io registry), so the
//! workspace ships this minimal, dependency-free implementation under the
//! same crate name and import paths:
//!
//! * [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::StdRng`] — a xoshiro256++ generator (not the upstream
//!   ChaCha12; sequences differ from real `rand`, but every consumer in
//!   this workspace only relies on determinism for a fixed seed, which
//!   this provides).
//!
//! If the real `rand` crate ever becomes available, deleting this crate
//! and adding the registry dependency is a drop-in swap.

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

/// A source of randomness: the core sampling interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type (`f64`/`f32` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range. Panics on an empty range, like upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`, clamped to `[0, 1]` (NaN counts as
    /// 0). Divergence from upstream `rand`, which panics on p ∉ [0, 1]:
    /// this workspace feeds computed probabilities that may drift a ULP
    /// past 1.0, and clamping is the behavior those call sites want.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Reproducible construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable "from the standard distribution" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection, so small spans are unbiased.
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 exactly as the reference implementation
    /// recommends. Deterministic for a fixed seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
