//! `scs` binary entry point; all logic lives in the library for
//! testability.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match scs_cli::parse_args(&args).and_then(scs_cli::run) {
        Ok(out) => {
            // Tolerate a closed pipe (e.g. `scs ... | head`): exiting
            // quietly beats the default SIGPIPE panic.
            let stdout = std::io::stdout();
            let _ = writeln!(stdout.lock(), "{out}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
