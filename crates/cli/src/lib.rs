//! Implementation of the `scs` command-line tool.
//!
//! Subcommands (see `scs help`):
//!
//! * `stats <edgelist>` — graph summary: sizes, degeneracy, max degrees;
//! * `community <edgelist> <side:q> <alpha> <beta>` — the (α,β)-community;
//! * `search <edgelist> <side:q> <alpha> <beta> [--algo ...]` — the
//!   significant (α,β)-community;
//! * `index <edgelist> <out.scsidx>` — build and save the `Iδ` index;
//!
//! Query vertices are written `u:<i>` or `l:<j>` (side-local 0-based
//! indices). Edge lists are whitespace-separated `upper lower [weight]`
//! with `%`/`#` comments; pass `--one-based` for KONECT files.
//!
//! The argument handling is deliberately dependency-free (the approved
//! crate set has no CLI parser); [`parse_args`] is pure and unit-tested.

use bigraph::edgelist::{read_edgelist_file, ReadOptions};
use bigraph::{BipartiteGraph, Side, Vertex};
use scs::{Algorithm, CommunitySearch, DeltaIndex};
use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Graph summary.
    Stats { path: String, one_based: bool },
    /// Step-1 query.
    Community {
        path: String,
        one_based: bool,
        query: QueryRef,
        alpha: usize,
        beta: usize,
    },
    /// Full significant-community query.
    Search {
        path: String,
        one_based: bool,
        query: QueryRef,
        alpha: usize,
        beta: usize,
        algo: Algorithm,
    },
    /// Build and persist the index.
    Index {
        path: String,
        one_based: bool,
        out: String,
    },
    /// Write the 11 synthetic dataset analogues as edge lists.
    Generate(GenerateArgs),
}

/// A side-qualified query vertex (`u:3` / `l:17`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRef {
    /// Which layer the index refers to.
    pub side: Side,
    /// Side-local 0-based index.
    pub index: usize,
}

impl QueryRef {
    /// Resolves against a graph, checking bounds.
    pub fn resolve(&self, g: &BipartiteGraph) -> Result<Vertex, CliError> {
        let bound = match self.side {
            Side::Upper => g.n_upper(),
            Side::Lower => g.n_lower(),
        };
        if self.index >= bound {
            return Err(CliError::new(format!(
                "query vertex {} out of range (layer has {bound} vertices)",
                self
            )));
        }
        Ok(match self.side {
            Side::Upper => g.upper(self.index),
            Side::Lower => g.lower(self.index),
        })
    }
}

impl fmt::Display for QueryRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.side == Side::Upper { 'u' } else { 'l' };
        write!(f, "{tag}:{}", self.index)
    }
}

/// Generate the synthetic dataset catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Output directory for the TSV files.
    pub dir: String,
    /// Scale factor in (0, 1].
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

/// CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
scs — significant (α,β)-community search on weighted bipartite graphs

USAGE:
  scs stats <edgelist> [--one-based]
  scs community <edgelist> <u:IDX|l:IDX> <alpha> <beta> [--one-based]
  scs search <edgelist> <u:IDX|l:IDX> <alpha> <beta>
             [--algo auto|peel|expand|binary|baseline] [--one-based]
  scs index <edgelist> <out.scsidx> [--one-based]
  scs generate <dir> [--scale S] [--seed N]
  scs help

Edge lists are `upper lower [weight]` per line; query vertices are
side-qualified 0-based indices (u:3 = fourth upper vertex).";

fn parse_query(tok: &str) -> Result<QueryRef, CliError> {
    let (side, rest) = match tok.split_once(':') {
        Some(("u", rest)) => (Side::Upper, rest),
        Some(("l", rest)) => (Side::Lower, rest),
        _ => {
            return Err(CliError::new(format!(
                "query vertex must be u:<i> or l:<j>, got {tok:?}"
            )))
        }
    };
    let index = rest
        .parse()
        .map_err(|_| CliError::new(format!("invalid vertex index {rest:?}")))?;
    Ok(QueryRef { side, index })
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, CliError> {
    let v: usize = tok
        .parse()
        .map_err(|_| CliError::new(format!("invalid {what} {tok:?}")))?;
    if v == 0 {
        return Err(CliError::new(format!("{what} must be at least 1")));
    }
    Ok(v)
}

fn parse_algo(tok: &str) -> Result<Algorithm, CliError> {
    Ok(match tok {
        "auto" => Algorithm::Auto,
        "peel" => Algorithm::Peel,
        "expand" => Algorithm::Expand,
        "binary" => Algorithm::Binary,
        "baseline" => Algorithm::Baseline,
        other => return Err(CliError::new(format!("unknown algorithm {other:?}"))),
    })
}

/// Parses raw arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut one_based = false;
    let mut algo = Algorithm::Auto;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(tok) = it.next() {
        match tok {
            "--help" | "-h" => return Ok(Command::Help),
            "--one-based" => one_based = true,
            "--algo" => {
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--algo needs a value"))?;
                algo = parse_algo(val)?;
            }
            "--scale" => {
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--scale needs a value"))?;
                scale = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid scale {val:?}")))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(CliError::new("scale must be in (0, 1]"));
                }
            }
            "--seed" => {
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--seed needs a value"))?;
                seed = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid seed {val:?}")))?;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::new(format!("unknown flag {flag:?}")))
            }
            pos => positional.push(pos),
        }
    }
    let Some((&cmd, rest)) = positional.split_first() else {
        return Ok(Command::Help);
    };
    let need = |n: usize| -> Result<(), CliError> {
        if rest.len() != n {
            Err(CliError::new(format!(
                "`{cmd}` expects {n} argument(s), got {}; try `scs help`",
                rest.len()
            )))
        } else {
            Ok(())
        }
    };
    match cmd {
        "help" | "-h" | "--help" => Ok(Command::Help),
        "stats" => {
            need(1)?;
            Ok(Command::Stats {
                path: rest[0].into(),
                one_based,
            })
        }
        "community" => {
            need(4)?;
            Ok(Command::Community {
                path: rest[0].into(),
                one_based,
                query: parse_query(rest[1])?,
                alpha: parse_usize(rest[2], "alpha")?,
                beta: parse_usize(rest[3], "beta")?,
            })
        }
        "search" => {
            need(4)?;
            Ok(Command::Search {
                path: rest[0].into(),
                one_based,
                query: parse_query(rest[1])?,
                alpha: parse_usize(rest[2], "alpha")?,
                beta: parse_usize(rest[3], "beta")?,
                algo,
            })
        }
        "index" => {
            need(2)?;
            Ok(Command::Index {
                path: rest[0].into(),
                one_based,
                out: rest[1].into(),
            })
        }
        "generate" => {
            need(1)?;
            Ok(Command::Generate(GenerateArgs {
                dir: rest[0].into(),
                scale,
                seed,
            }))
        }
        other => Err(CliError::new(format!(
            "unknown command {other:?}; try `scs help`"
        ))),
    }
}

fn load(path: &str, one_based: bool) -> Result<BipartiteGraph, CliError> {
    let opts = ReadOptions {
        one_based,
        ..Default::default()
    };
    read_edgelist_file(path, &opts).map_err(|e| CliError::new(format!("{path}: {e}")))
}

fn describe_subgraph(g: &BipartiteGraph, sub: &bigraph::Subgraph<'_>) -> String {
    if sub.is_empty() {
        return "empty".into();
    }
    let (us, ls) = sub.layer_vertices();
    let mut out = format!(
        "{} edges, {} upper, {} lower, f = {:.4}\nupper:",
        sub.size(),
        us.len(),
        ls.len(),
        sub.min_weight().unwrap()
    );
    for u in us.iter().take(20) {
        out.push_str(&format!(" {}", g.local_index(*u)));
    }
    if us.len() > 20 {
        out.push_str(" …");
    }
    out.push_str("\nlower:");
    for l in ls.iter().take(20) {
        out.push_str(&format!(" {}", g.local_index(*l)));
    }
    if ls.len() > 20 {
        out.push_str(" …");
    }
    out
}

/// Executes a parsed command, returning the text to print.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Stats { path, one_based } => {
            let g = load(&path, one_based)?;
            let delta = bicore::degeneracy(&g);
            Ok(format!(
                "{}\nδ (degeneracy) = {delta}\nα_max = {}, β_max = {}\nmin weight = {:?}",
                g.summary(),
                g.max_degree(Side::Upper),
                g.max_degree(Side::Lower),
                g.min_weight()
            ))
        }
        Command::Community {
            path,
            one_based,
            query,
            alpha,
            beta,
        } => {
            let g = load(&path, one_based)?;
            let q = query.resolve(&g)?;
            let index = DeltaIndex::build(&g);
            let c = index.query_community(&g, q, alpha, beta);
            Ok(format!(
                "({alpha},{beta})-community of {query}: {}",
                describe_subgraph(&g, &c)
            ))
        }
        Command::Search {
            path,
            one_based,
            query,
            alpha,
            beta,
            algo,
        } => {
            let g = load(&path, one_based)?;
            let q = query.resolve(&g)?;
            let search = CommunitySearch::new(g);
            let r = search.significant_community(q, alpha, beta, algo);
            Ok(format!(
                "significant ({alpha},{beta})-community of {query}: {}",
                describe_subgraph(search.graph(), &r)
            ))
        }
        Command::Generate(args) => {
            let paths = datasets::catalog::export_catalog(
                std::path::Path::new(&args.dir),
                args.scale,
                args.seed,
            )
            .map_err(|e| CliError::new(format!("{}: {e}", args.dir)))?;
            let mut out = format!(
                "wrote {} dataset analogues (scale {}, seed {}):",
                paths.len(),
                args.scale,
                args.seed
            );
            for p in paths {
                out.push_str(&format!("\n  {}", p.display()));
            }
            Ok(out)
        }
        Command::Index {
            path,
            one_based,
            out,
        } => {
            let g = load(&path, one_based)?;
            let index = DeltaIndex::build(&g);
            scs::index::save_index_file(&g, &index, &out)
                .map_err(|e| CliError::new(format!("{out}: {e}")))?;
            Ok(format!(
                "indexed {} (δ = {}, {} entries) → {out}",
                g.summary(),
                index.delta(),
                index.n_entries()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_stats() {
        let cmd = parse_args(&args(&["stats", "g.tsv", "--one-based"])).unwrap();
        assert_eq!(
            cmd,
            Command::Stats {
                path: "g.tsv".into(),
                one_based: true
            }
        );
    }

    #[test]
    fn parses_search_with_algo() {
        let cmd = parse_args(&args(&[
            "search", "g.tsv", "u:3", "2", "4", "--algo", "expand",
        ]))
        .unwrap();
        match cmd {
            Command::Search {
                query, alpha, beta, algo, ..
            } => {
                assert_eq!(query, QueryRef { side: Side::Upper, index: 3 });
                assert_eq!((alpha, beta), (2, 4));
                assert_eq!(algo, Algorithm::Expand);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["search", "g", "x:1", "2", "2"])).is_err());
        assert!(parse_args(&args(&["search", "g", "u:1", "0", "2"])).is_err());
        assert!(parse_args(&args(&["search", "g", "u:1", "2"])).is_err());
        assert!(parse_args(&args(&["--algo"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["search", "g", "u:1", "2", "2", "--algo", "x"])).is_err());
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&args(&["generate", "/tmp/x", "--scale", "0.1", "--seed", "7"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate(GenerateArgs {
                dir: "/tmp/x".into(),
                scale: 0.1,
                seed: 7
            })
        );
        assert!(parse_args(&args(&["generate", "/tmp/x", "--scale", "2.0"])).is_err());
        assert!(parse_args(&args(&["generate", "/tmp/x", "--seed", "abc"])).is_err());
    }

    #[test]
    fn generate_end_to_end() {
        let dir = std::env::temp_dir().join("scs_cli_generate_test");
        std::fs::remove_dir_all(&dir).ok();
        let out = run(Command::Generate(GenerateArgs {
            dir: dir.to_str().unwrap().into(),
            scale: 0.02,
            seed: 3,
        }))
        .unwrap();
        assert!(out.contains("11 dataset analogues"), "{out}");
        // The generated files feed straight back into `scs stats`.
        let bs = dir.join("bs.tsv");
        let stats = run(Command::Stats {
            path: bs.to_str().unwrap().into(),
            one_based: false,
        })
        .unwrap();
        assert!(stats.contains("|E|="), "{stats}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn end_to_end_on_temp_file() {
        let dir = std::env::temp_dir().join("scs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        std::fs::write(&path, "0 0 5\n0 1 4\n1 0 5\n1 1 3\n1 2 1\n0 2 1\n").unwrap();
        let p = path.to_str().unwrap().to_string();

        let out = run(Command::Stats {
            path: p.clone(),
            one_based: false,
        })
        .unwrap();
        assert!(out.contains("|E|=6"), "{out}");
        assert!(out.contains("δ (degeneracy) = 2"), "{out}");

        let out = run(Command::Community {
            path: p.clone(),
            one_based: false,
            query: QueryRef { side: Side::Upper, index: 0 },
            alpha: 2,
            beta: 2,
        })
        .unwrap();
        assert!(out.contains("6 edges"), "{out}");

        let out = run(Command::Search {
            path: p.clone(),
            one_based: false,
            query: QueryRef { side: Side::Upper, index: 0 },
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
        })
        .unwrap();
        // The two weight-1 edges force l2 out: 4 edges, f = 3.
        assert!(out.contains("4 edges"), "{out}");
        assert!(out.contains("f = 3"), "{out}");

        let idx_path = dir.join("toy.scsidx");
        let out = run(Command::Index {
            path: p.clone(),
            one_based: false,
            out: idx_path.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(out.contains("δ = 2"), "{out}");
        assert!(idx_path.exists());

        let err = run(Command::Search {
            path: p,
            one_based: false,
            query: QueryRef { side: Side::Lower, index: 99 },
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
        })
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
        std::fs::remove_dir_all(dir).ok();
    }
}
