//! Implementation of the `scs` command-line tool.
//!
//! Subcommands (see `scs help`):
//!
//! * `stats <edgelist>` — graph summary: sizes, degeneracy, max degrees;
//! * `community <edgelist> <side:q> <alpha> <beta>` — the (α,β)-community;
//! * `search <edgelist> <side:q> <alpha> <beta> [--algo ...]` — the
//!   significant (α,β)-community;
//! * `index <edgelist> <out.scsidx>` — build and save the `Iδ` index;
//! * `serve <edgelist> [--addr HOST:PORT] ...` — serve queries over a
//!   std-only HTTP/1.1 front end with admission control and deadline
//!   batching (see `scs-service`'s `server` module); prints the bound
//!   address, then blocks until killed;
//! * `serve-bench <edgelist> [--threads N] [--queries K] ...` — replay a
//!   generated query workload through the concurrent `scs-service`
//!   engine and print the QPS/latency/cache stats table; with
//!   `--remote HOST:PORT` the same workload is driven over HTTP
//!   against a running `scs serve` instead;
//! * `analyze [--root DIR] [--allow RULE]` — run the workspace's
//!   concurrency-correctness lint pass (see `scs-analyze`); exits
//!   non-zero when any diagnostic fires, so CI can gate on it.
//!
//! Query vertices are written `u:<i>` or `l:<j>` (side-local 0-based
//! indices). Edge lists are whitespace-separated `upper lower [weight]`
//! with `%`/`#` comments; pass `--one-based` for KONECT files.
//!
//! The argument handling is deliberately dependency-free (the approved
//! crate set has no CLI parser); [`parse_args`] is pure and unit-tested.

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

use bigraph::edgelist::{read_edgelist_file, ReadOptions};
use bigraph::{BipartiteGraph, Side, Vertex};
use scs::{Algorithm, CommunitySearch, DeltaIndex};
use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Graph summary.
    Stats { path: String, one_based: bool },
    /// Step-1 query.
    Community {
        path: String,
        one_based: bool,
        query: QueryRef,
        alpha: usize,
        beta: usize,
    },
    /// Full significant-community query.
    Search {
        path: String,
        one_based: bool,
        query: QueryRef,
        alpha: usize,
        beta: usize,
        algo: Algorithm,
    },
    /// Build and persist the index.
    Index {
        path: String,
        one_based: bool,
        out: String,
    },
    /// Write the 11 synthetic dataset analogues as edge lists.
    Generate(GenerateArgs),
    /// Serve queries over the std-only network front end.
    Serve(ServeArgs),
    /// Replay a generated workload through the concurrent query engine.
    ServeBench(ServeBenchArgs),
    /// Run the concurrency-correctness lint pass over the workspace.
    Analyze {
        /// Workspace root to scan (defaults to the current directory).
        root: String,
        /// Rule names to disable (`--allow`), already validated.
        allow: Vec<String>,
        /// Report format name (`--format`), already validated.
        format: String,
    },
}

/// Arguments of `scs serve-bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchArgs {
    /// Edge-list path.
    pub path: String,
    /// KONECT-style 1-based ids.
    pub one_based: bool,
    /// Worker threads in the engine.
    pub threads: usize,
    /// Engine shards the workers (and caches, arenas, index replicas)
    /// are partitioned into.
    pub shards: usize,
    /// Queries in the replayed workload.
    pub queries: usize,
    /// Client threads submitting the workload.
    pub clients: usize,
    /// Degree constraint for upper vertices.
    pub alpha: usize,
    /// Degree constraint for lower vertices.
    pub beta: usize,
    /// Second-step algorithm.
    pub algo: Algorithm,
    /// Fraction of repeated queries in the workload.
    pub repeat: f64,
    /// Zipf exponent for fresh-query popularity (0 = uniform).
    pub zipf: f64,
    /// Workload seed.
    pub seed: u64,
    /// Requests per submitted batch job (1 = per-request submission).
    pub batch_size: usize,
    /// Disable adaptive batch splitting (serve every batch on one
    /// worker, the pre-split behaviour) — the A/B escape hatch.
    pub no_split: bool,
    /// Warmup queries replayed (and then excluded from the steady-state
    /// window) before the measured run; defaults to `queries / 10`.
    pub warmup: Option<usize>,
    /// Write the engine's Prometheus text exposition here after the run.
    pub metrics_out: Option<String>,
    /// Write the schema-versioned `BENCH_service.json` artifact here.
    pub bench_json: Option<String>,
    /// Drive the workload over HTTP against a running `scs serve` at
    /// this address instead of an in-process engine.
    pub remote: Option<String>,
}

/// Arguments of `scs serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Edge-list path.
    pub path: String,
    /// KONECT-style 1-based ids.
    pub one_based: bool,
    /// Listen address (`host:port`; port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads in the engine.
    pub threads: usize,
    /// Engine shards.
    pub shards: usize,
    /// Admission budget: admitted-but-unanswered requests past this
    /// are shed with `429 + Retry-After`.
    pub pending_budget: usize,
    /// Deadline-batcher flush deadline, milliseconds (0 = no batching).
    pub batch_deadline_ms: u64,
    /// Deadline-batcher size flush threshold.
    pub batch_max: usize,
    /// Per-tenant token-bucket refill rate, requests/second (0 = off).
    pub tenant_rate: u64,
    /// Per-tenant token-bucket burst capacity.
    pub tenant_burst: u64,
    /// Socket read/write timeout, milliseconds (0 = none).
    pub socket_timeout_ms: u64,
}

/// A side-qualified query vertex (`u:3` / `l:17`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRef {
    /// Which layer the index refers to.
    pub side: Side,
    /// Side-local 0-based index.
    pub index: usize,
}

impl QueryRef {
    /// Resolves against a graph, checking bounds.
    pub fn resolve(&self, g: &BipartiteGraph) -> Result<Vertex, CliError> {
        let bound = match self.side {
            Side::Upper => g.n_upper(),
            Side::Lower => g.n_lower(),
        };
        if self.index >= bound {
            return Err(CliError::new(format!(
                "query vertex {} out of range (layer has {bound} vertices)",
                self
            )));
        }
        Ok(match self.side {
            Side::Upper => g.upper(self.index),
            Side::Lower => g.lower(self.index),
        })
    }
}

impl fmt::Display for QueryRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.side == Side::Upper { 'u' } else { 'l' };
        write!(f, "{tag}:{}", self.index)
    }
}

/// Generate the synthetic dataset catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Output directory for the TSV files.
    pub dir: String,
    /// Scale factor in (0, 1].
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

/// CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
scs — significant (α,β)-community search on weighted bipartite graphs

USAGE:
  scs stats <edgelist> [--one-based]
  scs community <edgelist> <u:IDX|l:IDX> <alpha> <beta> [--one-based]
  scs search <edgelist> <u:IDX|l:IDX> <alpha> <beta>
             [--algo auto|peel|expand|binary|baseline] [--one-based]
  scs index <edgelist> <out.scsidx> [--one-based]
  scs generate <dir> [--scale S] [--seed N]
  scs serve <edgelist> [--addr HOST:PORT] [--threads N] [--shards S]
             [--pending-budget N] [--batch-deadline-ms MS]
             [--batch-max N] [--tenant-rate R] [--tenant-burst B]
             [--socket-timeout-ms MS] [--one-based]
  scs serve-bench <edgelist> [--threads N] [--shards S] [--queries K]
             [--clients C] [--alpha A] [--beta B] [--repeat F]
             [--zipf Z] [--seed N] [--batch-size B] [--no-split]
             [--warmup W] [--metrics-out FILE] [--bench-json FILE]
             [--remote HOST:PORT]
             [--algo auto|peel|expand|binary|baseline] [--one-based]
  scs analyze [--root DIR] [--allow RULE]... [--format human|github|json]
  scs help

Edge lists are `upper lower [weight]` per line; query vertices are
side-qualified 0-based indices (u:3 = fourth upper vertex).";

fn parse_query(tok: &str) -> Result<QueryRef, CliError> {
    let (side, rest) = match tok.split_once(':') {
        Some(("u", rest)) => (Side::Upper, rest),
        Some(("l", rest)) => (Side::Lower, rest),
        _ => {
            return Err(CliError::new(format!(
                "query vertex must be u:<i> or l:<j>, got {tok:?}"
            )))
        }
    };
    let index = rest
        .parse()
        .map_err(|_| CliError::new(format!("invalid vertex index {rest:?}")))?;
    Ok(QueryRef { side, index })
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, CliError> {
    let v: usize = tok
        .parse()
        .map_err(|_| CliError::new(format!("invalid {what} {tok:?}")))?;
    if v == 0 {
        return Err(CliError::new(format!("{what} must be at least 1")));
    }
    Ok(v)
}

fn parse_algo(tok: &str) -> Result<Algorithm, CliError> {
    Algorithm::ALL
        .into_iter()
        .find(|a| a.name() == tok)
        .ok_or_else(|| CliError::new(format!("unknown algorithm {tok:?}")))
}

/// Parses raw arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut one_based = false;
    let mut algo = Algorithm::Auto;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut threads = 4usize;
    let mut shards = 1usize;
    let mut queries = 1000usize;
    let mut clients: Option<usize> = None;
    let mut alpha_flag = 2usize;
    let mut beta_flag = 2usize;
    let mut repeat = 0.5f64;
    let mut zipf = 0.0f64;
    let mut batch_size = 1usize;
    let mut no_split = false;
    let mut warmup: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut analyze_root: Option<String> = None;
    let mut analyze_allow: Vec<String> = Vec::new();
    let mut analyze_format: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut remote: Option<String> = None;
    let serve_defaults = scs_service::ServiceConfig::default();
    let mut pending_budget = serve_defaults.pending_budget;
    let mut batch_deadline_ms = serve_defaults.batch_deadline_ms;
    let mut batch_max = serve_defaults.batch_max;
    let mut tenant_rate = serve_defaults.tenant_rate;
    let mut tenant_burst = serve_defaults.tenant_burst;
    let mut socket_timeout_ms = serve_defaults.socket_timeout_ms;
    let mut analyze_flags: Vec<&'static str> = Vec::new();
    // Subcommand-specific flags seen, so the other subcommands can
    // reject them instead of silently ignoring a misplaced knob.
    let mut serve_flags: Vec<&'static str> = Vec::new();
    // Engine sizing shared by `serve` and `serve-bench`.
    let mut engine_flags: Vec<&'static str> = Vec::new();
    // Admission/batching knobs of `serve` only.
    let mut serve_only_flags: Vec<&'static str> = Vec::new();
    let mut scale_flag_seen = false;
    let mut algo_flag_seen = false;
    let mut seed_flag_seen = false;
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(tok) = it.next() {
        match tok {
            "--help" | "-h" => return Ok(Command::Help),
            "--one-based" => one_based = true,
            "--algo" => {
                algo_flag_seen = true;
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--algo needs a value"))?;
                algo = parse_algo(val)?;
            }
            "--scale" => {
                scale_flag_seen = true;
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--scale needs a value"))?;
                scale = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid scale {val:?}")))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(CliError::new("scale must be in (0, 1]"));
                }
            }
            "--seed" => {
                seed_flag_seen = true;
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--seed needs a value"))?;
                seed = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid seed {val:?}")))?;
            }
            "--threads" => {
                engine_flags.push("--threads");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--threads needs a value"))?;
                threads = parse_usize(val, "thread count")?;
            }
            "--shards" => {
                engine_flags.push("--shards");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--shards needs a value"))?;
                shards = parse_usize(val, "shard count")?;
            }
            "--addr" => {
                serve_only_flags.push("--addr");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--addr needs a host:port value"))?;
                addr = Some(val.to_string());
            }
            "--pending-budget" => {
                serve_only_flags.push("--pending-budget");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--pending-budget needs a value"))?;
                pending_budget = parse_usize(val, "pending budget")?;
            }
            "--batch-deadline-ms" => {
                serve_only_flags.push("--batch-deadline-ms");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--batch-deadline-ms needs a value"))?;
                // Zero is meaningful (batching off), so parse directly.
                batch_deadline_ms = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid batch deadline {val:?}")))?;
            }
            "--batch-max" => {
                serve_only_flags.push("--batch-max");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--batch-max needs a value"))?;
                batch_max = parse_usize(val, "batch max")?;
            }
            "--tenant-rate" => {
                serve_only_flags.push("--tenant-rate");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--tenant-rate needs a value"))?;
                // Zero is meaningful (quotas off), so parse directly.
                tenant_rate = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid tenant rate {val:?}")))?;
            }
            "--tenant-burst" => {
                serve_only_flags.push("--tenant-burst");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--tenant-burst needs a value"))?;
                tenant_burst = parse_usize(val, "tenant burst")? as u64;
            }
            "--socket-timeout-ms" => {
                serve_only_flags.push("--socket-timeout-ms");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--socket-timeout-ms needs a value"))?;
                // Zero is meaningful (no timeout), so parse directly.
                socket_timeout_ms = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid socket timeout {val:?}")))?;
            }
            "--remote" => {
                serve_flags.push("--remote");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--remote needs a host:port value"))?;
                remote = Some(val.to_string());
            }
            "--queries" => {
                serve_flags.push("--queries");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--queries needs a value"))?;
                queries = parse_usize(val, "query count")?;
            }
            "--clients" => {
                serve_flags.push("--clients");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--clients needs a value"))?;
                clients = Some(parse_usize(val, "client count")?);
            }
            "--alpha" => {
                serve_flags.push("--alpha");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--alpha needs a value"))?;
                alpha_flag = parse_usize(val, "alpha")?;
            }
            "--beta" => {
                serve_flags.push("--beta");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--beta needs a value"))?;
                beta_flag = parse_usize(val, "beta")?;
            }
            "--repeat" => {
                serve_flags.push("--repeat");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--repeat needs a value"))?;
                repeat = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid repeat fraction {val:?}")))?;
                if !(0.0..=1.0).contains(&repeat) {
                    return Err(CliError::new("repeat fraction must be in [0, 1]"));
                }
            }
            "--zipf" => {
                serve_flags.push("--zipf");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--zipf needs a value"))?;
                zipf = val
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid zipf exponent {val:?}")))?;
                // Mirrors WorkloadError::InvalidZipf, but at parse time
                // so the bad flag dies before any graph is loaded.
                if !zipf.is_finite() || zipf < 0.0 {
                    return Err(CliError::new(
                        "zipf exponent must be a finite value ≥ 0 (0 = uniform)",
                    ));
                }
            }
            "--batch-size" => {
                serve_flags.push("--batch-size");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--batch-size needs a value"))?;
                batch_size = parse_usize(val, "batch size")?;
            }
            "--no-split" => {
                serve_flags.push("--no-split");
                no_split = true;
            }
            "--warmup" => {
                serve_flags.push("--warmup");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--warmup needs a value"))?;
                // Zero is meaningful here (no warmup), so parse directly
                // instead of through `parse_usize`.
                warmup = Some(
                    val.parse()
                        .map_err(|_| CliError::new(format!("invalid warmup count {val:?}")))?,
                );
            }
            "--metrics-out" => {
                serve_flags.push("--metrics-out");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--metrics-out needs a path"))?;
                metrics_out = Some(val.to_string());
            }
            "--bench-json" => {
                serve_flags.push("--bench-json");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--bench-json needs a path"))?;
                bench_json = Some(val.to_string());
            }
            "--root" => {
                analyze_flags.push("--root");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--root needs a directory"))?;
                analyze_root = Some(val.to_string());
            }
            "--allow" => {
                analyze_flags.push("--allow");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--allow needs a rule name"))?;
                if scs_analyze::Rule::from_name(val).is_none() {
                    let known: Vec<&str> =
                        scs_analyze::Rule::ALL.iter().map(|r| r.name()).collect();
                    return Err(CliError::new(format!(
                        "unknown rule {val:?}; rules: {}",
                        known.join(", ")
                    )));
                }
                analyze_allow.push(val.to_string());
            }
            "--format" => {
                analyze_flags.push("--format");
                let val = it
                    .next()
                    .ok_or_else(|| CliError::new("--format needs a format name"))?;
                if scs_analyze::Format::from_name(val).is_none() {
                    return Err(CliError::new(format!(
                        "unknown format {val:?}; formats: human, github, json"
                    )));
                }
                analyze_format = Some(val.to_string());
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::new(format!("unknown flag {flag:?}")))
            }
            pos => positional.push(pos),
        }
    }
    let Some((&cmd, rest)) = positional.split_first() else {
        return Ok(Command::Help);
    };
    if cmd != "serve-bench" {
        if let Some(flag) = serve_flags.first() {
            return Err(CliError::new(format!(
                "{flag} only applies to `scs serve-bench`"
            )));
        }
    }
    if !matches!(cmd, "serve" | "serve-bench") {
        if let Some(flag) = engine_flags.first() {
            return Err(CliError::new(format!(
                "{flag} only applies to `scs serve` and `scs serve-bench`"
            )));
        }
    }
    if cmd != "serve" {
        if let Some(flag) = serve_only_flags.first() {
            return Err(CliError::new(format!("{flag} only applies to `scs serve`")));
        }
    }
    if cmd != "analyze" {
        if let Some(flag) = analyze_flags.first() {
            return Err(CliError::new(format!(
                "{flag} only applies to `scs analyze`"
            )));
        }
    }
    if cmd != "generate" && scale_flag_seen {
        return Err(CliError::new("--scale only applies to `scs generate`"));
    }
    if algo_flag_seen && !matches!(cmd, "search" | "serve-bench") {
        return Err(CliError::new(
            "--algo only applies to `scs search` and `scs serve-bench`",
        ));
    }
    if seed_flag_seen && !matches!(cmd, "generate" | "serve-bench") {
        return Err(CliError::new(
            "--seed only applies to `scs generate` and `scs serve-bench`",
        ));
    }
    let need = |n: usize| -> Result<(), CliError> {
        if rest.len() != n {
            Err(CliError::new(format!(
                "`{cmd}` expects {n} argument(s), got {}; try `scs help`",
                rest.len()
            )))
        } else {
            Ok(())
        }
    };
    match cmd {
        "help" | "-h" | "--help" => Ok(Command::Help),
        "stats" => {
            need(1)?;
            Ok(Command::Stats {
                path: rest[0].into(),
                one_based,
            })
        }
        "community" => {
            need(4)?;
            Ok(Command::Community {
                path: rest[0].into(),
                one_based,
                query: parse_query(rest[1])?,
                alpha: parse_usize(rest[2], "alpha")?,
                beta: parse_usize(rest[3], "beta")?,
            })
        }
        "search" => {
            need(4)?;
            Ok(Command::Search {
                path: rest[0].into(),
                one_based,
                query: parse_query(rest[1])?,
                alpha: parse_usize(rest[2], "alpha")?,
                beta: parse_usize(rest[3], "beta")?,
                algo,
            })
        }
        "index" => {
            need(2)?;
            Ok(Command::Index {
                path: rest[0].into(),
                one_based,
                out: rest[1].into(),
            })
        }
        "generate" => {
            need(1)?;
            Ok(Command::Generate(GenerateArgs {
                dir: rest[0].into(),
                scale,
                seed,
            }))
        }
        "analyze" => {
            need(0)?;
            Ok(Command::Analyze {
                root: analyze_root.unwrap_or_else(|| ".".to_string()),
                allow: analyze_allow,
                format: analyze_format.unwrap_or_else(|| "human".to_string()),
            })
        }
        "serve" => {
            need(1)?;
            Ok(Command::Serve(ServeArgs {
                path: rest[0].into(),
                one_based,
                addr: addr.unwrap_or_else(|| "127.0.0.1:7474".to_string()),
                threads,
                shards,
                pending_budget,
                batch_deadline_ms,
                batch_max,
                tenant_rate,
                tenant_burst,
                socket_timeout_ms,
            }))
        }
        "serve-bench" => {
            need(1)?;
            Ok(Command::ServeBench(ServeBenchArgs {
                path: rest[0].into(),
                one_based,
                threads,
                shards,
                queries,
                clients: clients.unwrap_or(threads * 2),
                alpha: alpha_flag,
                beta: beta_flag,
                algo,
                repeat,
                zipf,
                seed,
                batch_size,
                no_split,
                warmup,
                metrics_out,
                bench_json,
                remote,
            }))
        }
        other => Err(CliError::new(format!(
            "unknown command {other:?}; try `scs help`"
        ))),
    }
}

fn load(path: &str, one_based: bool) -> Result<BipartiteGraph, CliError> {
    let opts = ReadOptions {
        one_based,
        ..Default::default()
    };
    read_edgelist_file(path, &opts).map_err(|e| CliError::new(format!("{path}: {e}")))
}

fn describe_subgraph(g: &BipartiteGraph, sub: &bigraph::Subgraph<'_>) -> String {
    if sub.is_empty() {
        return "empty".into();
    }
    let (us, ls) = sub.layer_vertices();
    let mut out = format!(
        "{} edges, {} upper, {} lower, f = {:.4}\nupper:",
        sub.size(),
        us.len(),
        ls.len(),
        sub.min_weight().unwrap()
    );
    for u in us.iter().take(20) {
        out.push_str(&format!(" {}", g.local_index(*u)));
    }
    if us.len() > 20 {
        out.push_str(" …");
    }
    out.push_str("\nlower:");
    for l in ls.iter().take(20) {
        out.push_str(&format!(" {}", g.local_index(*l)));
    }
    if ls.len() > 20 {
        out.push_str(" …");
    }
    out
}

/// Executes a parsed command, returning the text to print.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Stats { path, one_based } => {
            let g = load(&path, one_based)?;
            let delta = bicore::degeneracy(&g);
            Ok(format!(
                "{}\nδ (degeneracy) = {delta}\nα_max = {}, β_max = {}\nmin weight = {:?}",
                g.summary(),
                g.max_degree(Side::Upper),
                g.max_degree(Side::Lower),
                g.min_weight()
            ))
        }
        Command::Community {
            path,
            one_based,
            query,
            alpha,
            beta,
        } => {
            let g = load(&path, one_based)?;
            let q = query.resolve(&g)?;
            let index = DeltaIndex::build(&g);
            let c = index.query_community(&g, q, alpha, beta);
            Ok(format!(
                "({alpha},{beta})-community of {query}: {}",
                describe_subgraph(&g, &c)
            ))
        }
        Command::Search {
            path,
            one_based,
            query,
            alpha,
            beta,
            algo,
        } => {
            let g = load(&path, one_based)?;
            let q = query.resolve(&g)?;
            let search = CommunitySearch::new(g);
            let r = search.significant_community(q, alpha, beta, algo);
            Ok(format!(
                "significant ({alpha},{beta})-community of {query}: {}",
                describe_subgraph(search.graph(), &r)
            ))
        }
        Command::Generate(args) => {
            let paths = datasets::catalog::export_catalog(
                std::path::Path::new(&args.dir),
                args.scale,
                args.seed,
            )
            .map_err(|e| CliError::new(format!("{}: {e}", args.dir)))?;
            let mut out = format!(
                "wrote {} dataset analogues (scale {}, seed {}):",
                paths.len(),
                args.scale,
                args.seed
            );
            for p in paths {
                out.push_str(&format!("\n  {}", p.display()));
            }
            Ok(out)
        }
        Command::Serve(args) => run_serve(args),
        Command::ServeBench(args) => run_serve_bench(args),
        Command::Analyze {
            root,
            allow,
            format,
        } => {
            let mut cfg = scs_analyze::Config::new(&root);
            cfg.disabled = allow
                .iter()
                .filter_map(|name| scs_analyze::Rule::from_name(name))
                .collect();
            let format = scs_analyze::Format::from_name(&format)
                .ok_or_else(|| CliError::new(format!("unknown format {format:?}")))?;
            let analysis = scs_analyze::analyze_workspace(&cfg).map_err(CliError::new)?;
            if analysis.is_clean() {
                Ok(analysis.render_as(format))
            } else if format == scs_analyze::Format::Human {
                // Diagnostics go through the error path so `main` exits
                // non-zero — the property the CI gate relies on.
                Err(CliError::new(analysis.render()))
            } else {
                // Machine formats must reach stdout intact: GitHub only
                // parses `::error` commands from stdout, and the error
                // path would prefix every report with `error: `. Print
                // here, then exit non-zero with a one-line summary.
                println!("{}", analysis.render_as(format));
                Err(CliError::new(format!(
                    "scs analyze: {} diagnostic(s)",
                    analysis.diagnostics.len()
                )))
            }
        }
        Command::Index {
            path,
            one_based,
            out,
        } => {
            let g = load(&path, one_based)?;
            let index = DeltaIndex::build(&g);
            scs::index::save_index_file(&g, &index, &out)
                .map_err(|e| CliError::new(format!("{out}: {e}")))?;
            Ok(format!(
                "indexed {} (δ = {}, {} entries) → {out}",
                g.summary(),
                index.delta(),
                index.n_entries()
            ))
        }
    }
}

/// `scs serve`: build the engine from the edge list, bind the std-only
/// HTTP front end (admission control + deadline batching, see
/// `scs-service`'s `server` module) and serve until killed. Prints the
/// bound address up front — flushed, so supervisors and the CI smoke
/// job can poll readiness — and never returns on success.
fn run_serve(args: ServeArgs) -> Result<String, CliError> {
    use scs_service::{QueryEngine, Server, ServiceConfig};
    use std::io::Write as _;

    let g = load(&args.path, args.one_based)?;
    let summary = g.summary();
    let search = CommunitySearch::shared(g);
    let config = ServiceConfig {
        workers: args.threads,
        shards: args.shards,
        pending_budget: args.pending_budget,
        batch_deadline_ms: args.batch_deadline_ms,
        batch_max: args.batch_max,
        tenant_rate: args.tenant_rate,
        tenant_burst: args.tenant_burst,
        socket_timeout_ms: args.socket_timeout_ms,
        ..ServiceConfig::default()
    };
    let engine = QueryEngine::start(search, config.clone());
    let handle = Server::start(engine, &args.addr, &config)
        .map_err(|e| CliError::new(format!("{}: {e}", args.addr)))?;
    println!("scs serve: {summary}");
    println!(
        "listening on {} — {} worker(s) in {} shard(s), pending budget {}, \
         batches of ≤ {} flushed after {} ms, tenant quota {}/s (burst {}), \
         socket timeout {} ms",
        handle.local_addr(),
        args.threads,
        args.shards,
        args.pending_budget,
        args.batch_max,
        args.batch_deadline_ms,
        args.tenant_rate,
        args.tenant_burst,
        args.socket_timeout_ms,
    );
    println!("endpoints: /query /metrics /stats /healthz — Ctrl-C to stop");
    std::io::stdout().flush().ok();
    loop {
        // Serve until the process is killed; the handle's threads do
        // all the work. `park` may wake spuriously, hence the loop.
        std::thread::park();
    }
}

/// The derived `--warmup` default: `queries / 10`, rounded **up** to a
/// whole number of `--batch-size` submission batches. An unaligned
/// default (e.g. 10 warmup with batches of 16) would end the warmup
/// replay on a partial batch, so warmed caches and the batch-size
/// steady state would disagree with what the measured window claims to
/// measure. An explicit `--warmup` is taken verbatim.
fn aligned_default_warmup(queries: usize, batch_size: usize) -> usize {
    let base = queries / 10;
    if batch_size <= 1 || base == 0 {
        return base;
    }
    base.div_ceil(batch_size) * batch_size
}

/// `scs serve-bench`: build the index, replay a core-sampled workload
/// with repeats through the concurrent engine, print the stats table
/// (plus a steady-state window excluding warmup), and optionally export
/// Prometheus text and the `BENCH_service.json` artifact. With
/// `--remote`, the same workload is driven over HTTP against a running
/// `scs serve` instead ([`run_remote_bench`]).
fn run_serve_bench(args: ServeBenchArgs) -> Result<String, CliError> {
    use scs_service::{
        render_bench_json, replay_batched, try_build_workload, validate_bench_json,
        validate_prometheus, BenchMeta, QueryEngine, ServiceConfig, WorkloadSpec,
    };

    let warmup = args
        .warmup
        .unwrap_or_else(|| aligned_default_warmup(args.queries, args.batch_size));
    if let Some(remote) = args.remote.clone() {
        return run_remote_bench(&args, &remote, warmup);
    }
    let g = load(&args.path, args.one_based)?;
    let summary = g.summary();
    let search = CommunitySearch::shared(g);
    let spec = WorkloadSpec {
        // One workload covers warmup + measured run, so the measured
        // requests see a cache already primed by the same distribution.
        n_queries: warmup + args.queries,
        alpha: args.alpha,
        beta: args.beta,
        algo: args.algo,
        repeat_fraction: args.repeat,
        zipf: args.zipf,
        seed: args.seed,
    };
    // The parser guarantees --queries ≥ 1, so the only workload error
    // left is a genuinely empty core — and try_build_workload keeps the
    // two cases apart, so an empty request count can never be
    // misdiagnosed as "lower --alpha/--beta" again.
    let workload = try_build_workload(&search, &spec)
        .map_err(|e| CliError::new(format!("{}: {e}; lower --alpha/--beta", args.path)))?;
    let engine = QueryEngine::start(
        search,
        ServiceConfig {
            workers: args.threads,
            shards: args.shards,
            split_batches: !args.no_split,
            ..ServiceConfig::default()
        },
    );
    if warmup > 0 {
        let _ = replay_batched(&engine, &workload[..warmup], args.clients, args.batch_size);
    }
    // Reset the window baseline so `steady` covers exactly the measured
    // replay — warmup requests stay in the cumulative table only.
    let _ = engine.stats_window();
    let (report, _responses) =
        replay_batched(&engine, &workload[warmup..], args.clients, args.batch_size);
    let steady = engine.stats_window();
    let submission = if report.batch_size > 1 {
        format!(
            "batches of {}{}",
            report.batch_size,
            if args.no_split { ", no split" } else { "" }
        )
    } else {
        "per-request".into()
    };
    let mut out = format!(
        "serve-bench {summary}\n\
         workload: {} queries (+{warmup} warmup) (α={}, β={}, algo={}, repeat={:.2}, \
         zipf={:.2}, seed={})\n\
         replayed by {} clients ({submission}) over {} workers in {} shard(s) \
         in {:.3} s — {:.1} QPS\n",
        report.n_queries,
        args.alpha,
        args.beta,
        args.algo,
        args.repeat,
        args.zipf,
        args.seed,
        report.clients,
        report.stats.workers,
        args.shards,
        report.wall_secs,
        report.replay_qps,
    );
    out.push_str(&report.stats.to_string());
    if !out.ends_with('\n') {
        out.push('\n'); // the stats table ends flush after the slow-query ring
    }
    out.push_str(&format!(
        "steady state (excl. warmup): {} queries in window — {:.1} QPS, \
         mean {:.1}µs, p50 {}µs, p99 {}µs, max {}µs\n",
        steady.completed, steady.qps, steady.mean_us, steady.p50_us, steady.p99_us, steady.max_us,
    ));
    if let Some(path) = &args.metrics_out {
        let text = engine.render_metrics();
        validate_prometheus(&text)
            .map_err(|e| CliError::new(format!("metrics self-validation failed: {e}")))?;
        std::fs::write(path, &text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
        out.push_str(&format!("wrote Prometheus metrics → {path}\n"));
    }
    if let Some(path) = &args.bench_json {
        let meta = BenchMeta {
            dataset: &args.path,
            threads: args.threads,
            shards: args.shards,
            queries: args.queries,
            warmup,
            clients: report.clients,
            batch_size: args.batch_size,
            alpha: args.alpha,
            beta: args.beta,
            algo: args.algo,
            repeat_fraction: args.repeat,
            zipf: args.zipf,
            seed: args.seed,
            split_batches: !args.no_split,
            wall_secs: report.wall_secs,
        };
        let json = render_bench_json(&meta, &report.stats, &steady);
        validate_bench_json(&json)
            .map_err(|e| CliError::new(format!("bench-json self-validation failed: {e}")))?;
        std::fs::write(path, &json).map_err(|e| CliError::new(format!("{path}: {e}")))?;
        out.push_str(&format!("wrote bench artifact → {path}\n"));
    }
    engine.shutdown();
    Ok(out)
}

/// `scs serve-bench --remote`: drive the generated workload over
/// keep-alive HTTP connections against a running `scs serve`, counting
/// `200`s, `429` sheds and errors and measuring client-side latency.
/// The engine knobs (`--threads`, `--shards`, `--batch-size`,
/// `--no-split`) belong to the server process and are ignored here;
/// `--bench-json` needs in-process engine stats and is rejected.
fn run_remote_bench(
    args: &ServeBenchArgs,
    remote: &str,
    warmup: usize,
) -> Result<String, CliError> {
    use scs_service::{try_build_workload, validate_prometheus, LatencyHistogram, WorkloadSpec};
    use std::sync::Arc;
    use std::time::Instant;

    if args.bench_json.is_some() {
        return Err(CliError::new(
            "--bench-json needs in-process engine stats; not available with --remote",
        ));
    }
    let g = load(&args.path, args.one_based)?;
    let summary = g.summary();
    let search = CommunitySearch::new(g);
    let spec = WorkloadSpec {
        n_queries: warmup + args.queries,
        alpha: args.alpha,
        beta: args.beta,
        algo: args.algo,
        repeat_fraction: args.repeat,
        zipf: args.zipf,
        seed: args.seed,
    };
    let workload = try_build_workload(&search, &spec)
        .map_err(|e| CliError::new(format!("{}: {e}; lower --alpha/--beta", args.path)))?;
    drop(search); // the client side needs only the request list

    // Warmup over one connection, results discarded (the server's
    // caches and batch heuristics see the same distribution the
    // measured run uses).
    if warmup > 0 {
        let mut conn = HttpClient::connect(remote)?;
        for req in &workload[..warmup] {
            conn.query(req)?;
        }
    }

    let hist = Arc::new(LatencyHistogram::default());
    let measured = &workload[warmup..];
    let clients = args.clients.clamp(1, measured.len().max(1));
    let t0 = Instant::now();
    let counts = std::thread::scope(|scope| -> Result<(u64, u64, u64), CliError> {
        let mut joins = Vec::with_capacity(clients);
        for chunk in measured.chunks(measured.len().div_ceil(clients)) {
            let hist = Arc::clone(&hist);
            joins.push(scope.spawn(move || -> Result<(u64, u64, u64), CliError> {
                let mut conn = HttpClient::connect(remote)?;
                let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
                for req in chunk {
                    let t = Instant::now();
                    let (status, _body) = conn.query(req)?;
                    hist.record(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
                    match status {
                        200 => ok += 1,
                        429 => shed += 1,
                        _ => other += 1,
                    }
                }
                Ok((ok, shed, other))
            }));
        }
        let mut total = (0u64, 0u64, 0u64);
        for j in joins {
            let (ok, shed, other) = j
                .join()
                .map_err(|_| CliError::new("bench client thread panicked"))??;
            total.0 += ok;
            total.1 += shed;
            total.2 += other;
        }
        Ok(total)
    })?;
    let wall = t0.elapsed().as_secs_f64();
    let (ok, shed, other) = counts;
    let lat = hist.snapshot().summary();
    let mut out = format!(
        "serve-bench --remote {remote} {summary}\n\
         workload: {} queries (+{warmup} warmup) (α={}, β={}, algo={}, repeat={:.2}, \
         zipf={:.2}, seed={})\n\
         driven by {clients} HTTP client(s) in {wall:.3} s — {:.1} QPS\n\
         ok (200) {ok}, shed (429) {shed}, other {other}\n\
         client latency: mean {:.1}µs, p50 {}µs, p99 {}µs, max {}µs\n",
        measured.len(),
        args.alpha,
        args.beta,
        args.algo,
        args.repeat,
        args.zipf,
        args.seed,
        measured.len() as f64 / wall.max(1e-9),
        lat.mean_us,
        lat.p50_us,
        lat.p99_us,
        lat.max_us,
    );
    if let Some(path) = &args.metrics_out {
        let mut conn = HttpClient::connect(remote)?;
        let (status, text) = conn.get("/metrics")?;
        if status != 200 {
            return Err(CliError::new(format!("{remote}/metrics returned {status}")));
        }
        validate_prometheus(&text)
            .map_err(|e| CliError::new(format!("served metrics failed validation: {e}")))?;
        std::fs::write(path, &text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
        out.push_str(&format!("wrote Prometheus metrics → {path}\n"));
    }
    Ok(out)
}

/// A minimal keep-alive HTTP/1.1 client for `scs serve` — request per
/// call, content-length framed responses, no dependencies.
struct HttpClient {
    write: std::net::TcpStream,
    read: std::io::BufReader<std::net::TcpStream>,
    addr: String,
}

impl HttpClient {
    fn connect(addr: &str) -> Result<Self, CliError> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| CliError::new(format!("{addr}: connect failed: {e}")))?;
        stream.set_nodelay(true).ok();
        let read = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| CliError::new(format!("{addr}: {e}")))?,
        );
        Ok(HttpClient {
            write: stream,
            read,
            addr: addr.to_string(),
        })
    }

    fn query(&mut self, req: &scs_service::QueryRequest) -> Result<(u16, String), CliError> {
        let target = format!(
            "/query?q={}&alpha={}&beta={}&algo={}",
            req.q.0,
            req.alpha,
            req.beta,
            req.algo.name()
        );
        self.get(&target)
    }

    fn get(&mut self, target: &str) -> Result<(u16, String), CliError> {
        use std::io::{BufRead, Read, Write};

        write!(self.write, "GET {target} HTTP/1.1\r\nHost: scs\r\n\r\n")
            .and_then(|()| self.write.flush())
            .map_err(|e| CliError::new(format!("{}: send failed: {e}", self.addr)))?;
        let mut line = String::new();
        self.read
            .read_line(&mut line)
            .map_err(|e| CliError::new(format!("{}: read failed: {e}", self.addr)))?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| {
                CliError::new(format!("{}: malformed status line {line:?}", self.addr))
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.read
                .read_line(&mut header)
                .map_err(|e| CliError::new(format!("{}: read failed: {e}", self.addr)))?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| CliError::new(format!("{}: bad content length", self.addr)))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.read
            .read_exact(&mut body)
            .map_err(|e| CliError::new(format!("{}: read failed: {e}", self.addr)))?;
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_stats() {
        let cmd = parse_args(&args(&["stats", "g.tsv", "--one-based"])).unwrap();
        assert_eq!(
            cmd,
            Command::Stats {
                path: "g.tsv".into(),
                one_based: true
            }
        );
    }

    #[test]
    fn parses_search_with_algo() {
        let cmd = parse_args(&args(&[
            "search", "g.tsv", "u:3", "2", "4", "--algo", "expand",
        ]))
        .unwrap();
        match cmd {
            Command::Search {
                query,
                alpha,
                beta,
                algo,
                ..
            } => {
                assert_eq!(
                    query,
                    QueryRef {
                        side: Side::Upper,
                        index: 3
                    }
                );
                assert_eq!((alpha, beta), (2, 4));
                assert_eq!(algo, Algorithm::Expand);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["search", "g", "x:1", "2", "2"])).is_err());
        assert!(parse_args(&args(&["search", "g", "u:1", "0", "2"])).is_err());
        assert!(parse_args(&args(&["search", "g", "u:1", "2"])).is_err());
        assert!(parse_args(&args(&["--algo"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["search", "g", "u:1", "2", "2", "--algo", "x"])).is_err());
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&args(&[
            "generate", "/tmp/x", "--scale", "0.1", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate(GenerateArgs {
                dir: "/tmp/x".into(),
                scale: 0.1,
                seed: 7
            })
        );
        assert!(parse_args(&args(&["generate", "/tmp/x", "--scale", "2.0"])).is_err());
        assert!(parse_args(&args(&["generate", "/tmp/x", "--seed", "abc"])).is_err());
    }

    #[test]
    fn parses_serve_bench() {
        let cmd = parse_args(&args(&[
            "serve-bench",
            "g.tsv",
            "--threads",
            "8",
            "--queries",
            "500",
            "--alpha",
            "3",
            "--beta",
            "4",
            "--repeat",
            "0.25",
            "--zipf",
            "1.1",
            "--shards",
            "2",
            "--algo",
            "peel",
            "--batch-size",
            "32",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::ServeBench(ServeBenchArgs {
                path: "g.tsv".into(),
                one_based: false,
                threads: 8,
                shards: 2,
                queries: 500,
                clients: 16, // defaults to 2 × threads
                alpha: 3,
                beta: 4,
                algo: Algorithm::Peel,
                repeat: 0.25,
                zipf: 1.1,
                seed: 42,
                batch_size: 32,
                no_split: false,
                warmup: None,
                metrics_out: None,
                bench_json: None,
                remote: None,
            })
        );
        // batch size defaults to per-request submission; splitting is
        // on by default and --no-split turns it off.
        match parse_args(&args(&["serve-bench", "g.tsv"])).unwrap() {
            Command::ServeBench(a) => {
                assert_eq!(a.batch_size, 1);
                assert!(!a.no_split);
                // One shard and a uniform workload unless asked.
                assert_eq!(a.shards, 1);
                assert_eq!(a.zipf, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&args(&["serve-bench", "g.tsv", "--no-split"])).unwrap() {
            Command::ServeBench(a) => assert!(a.no_split),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&args(&["serve-bench"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "g", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "g", "--repeat", "1.5"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "g", "--batch-size"])).is_err());
        // Shard and zipf validation: zero shards and NaN/negative/
        // non-finite exponents die in the parser with the flag named.
        assert!(parse_args(&args(&["serve-bench", "g", "--shards", "0"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "g", "--shards"])).is_err());
        for bad in ["nan", "-0.5", "inf", "abc"] {
            let err = parse_args(&args(&["serve-bench", "g", "--zipf", bad])).unwrap_err();
            assert!(err.to_string().contains("zipf"), "{bad:?}: {err}");
        }
        // --shards / --zipf are serve-bench-only like the other knobs.
        assert!(parse_args(&args(&["stats", "g", "--shards", "2"])).is_err());
        assert!(parse_args(&args(&["stats", "g", "--zipf", "1.0"])).is_err());
    }

    #[test]
    fn parses_serve_bench_telemetry_flags() {
        let cmd = parse_args(&args(&[
            "serve-bench",
            "g.tsv",
            "--warmup",
            "0",
            "--metrics-out",
            "m.prom",
            "--bench-json",
            "b.json",
        ]))
        .unwrap();
        match cmd {
            Command::ServeBench(a) => {
                // --warmup 0 is legal (disables warmup); absent means
                // the runner defaults to queries / 10.
                assert_eq!(a.warmup, Some(0));
                assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
                assert_eq!(a.bench_json.as_deref(), Some("b.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&args(&["serve-bench", "g", "--warmup", "x"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "g", "--metrics-out"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "g", "--bench-json"])).is_err());
        // Telemetry flags are serve-bench-only, like the rest.
        let err = parse_args(&args(&["stats", "g", "--warmup", "5"])).unwrap_err();
        assert!(err.to_string().contains("serve-bench"), "{err}");
        assert!(parse_args(&args(&["stats", "g", "--metrics-out", "m"])).is_err());
        assert!(parse_args(&args(&["stats", "g", "--bench-json", "b"])).is_err());
    }

    #[test]
    fn serve_bench_rejects_degenerate_counts_in_the_parser() {
        // --queries 0 must die here with a count diagnosis, never reach
        // the workload builder and come back as "the core is empty".
        let err = parse_args(&args(&["serve-bench", "g", "--queries", "0"])).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        assert!(!err.to_string().contains("core"), "{err}");
        // --batch-size 0 is rejected up front too (it used to be
        // silently clamped to 1 deep inside replay_batched), and
        // negative / non-numeric values name the flag.
        let err = parse_args(&args(&["serve-bench", "g", "--batch-size", "0"])).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        for bad in ["-3", "abc", "1.5", ""] {
            let err = parse_args(&args(&["serve-bench", "g", "--batch-size", bad])).unwrap_err();
            assert!(
                err.to_string().contains("invalid batch size"),
                "{bad:?}: {err}"
            );
        }
        for bad in ["-1", "many"] {
            let err = parse_args(&args(&["serve-bench", "g", "--queries", bad])).unwrap_err();
            assert!(
                err.to_string().contains("invalid query count"),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn serve_bench_flags_rejected_elsewhere() {
        let err =
            parse_args(&args(&["search", "g", "u:1", "2", "2", "--threads", "4"])).unwrap_err();
        assert!(err.to_string().contains("serve-bench"), "{err}");
        assert!(parse_args(&args(&["stats", "g", "--queries", "10"])).is_err());
        assert!(parse_args(&args(&["stats", "g", "--batch-size", "8"])).is_err());
        assert!(parse_args(&args(&["stats", "g", "--no-split"])).is_err());
        assert!(parse_args(&args(&["index", "g", "o", "--repeat", "0.5"])).is_err());
        let err = parse_args(&args(&["serve-bench", "g", "--scale", "0.5"])).unwrap_err();
        assert!(err.to_string().contains("generate"), "{err}");
        assert!(parse_args(&args(&[
            "community",
            "g",
            "u:1",
            "2",
            "2",
            "--algo",
            "peel"
        ]))
        .is_err());
        assert!(parse_args(&args(&["search", "g", "u:1", "2", "2", "--seed", "9"])).is_err());
        assert!(parse_args(&args(&[
            "serve-bench",
            "g",
            "--seed",
            "9",
            "--algo",
            "peel"
        ]))
        .is_ok());
        // Shared flags still work everywhere they used to.
        assert!(parse_args(&args(&["generate", "d", "--seed", "3"])).is_ok());
        assert!(parse_args(&args(&["search", "g", "u:1", "2", "2", "--algo", "peel"])).is_ok());
    }

    #[test]
    fn serve_bench_end_to_end() {
        let dir = std::env::temp_dir().join("scs_cli_serve_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        // A 3×3 biclique with one weak edge, same graph as the facade doc
        // example: plenty of (2,2)-core to sample queries from.
        let mut body = String::new();
        for u in 0..3 {
            for l in 0..3 {
                let w = if u == 2 && l == 2 { 1 } else { 5 };
                body.push_str(&format!("{u} {l} {w}\n"));
            }
        }
        std::fs::write(&path, body).unwrap();
        let out = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 4,
            shards: 1,
            queries: 200,
            clients: 4,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.5,
            zipf: 0.0,
            seed: 1,
            batch_size: 1,
            no_split: false,
            warmup: None,
            metrics_out: None,
            bench_json: None,
            remote: None,
        }))
        .unwrap();
        assert!(out.contains("200 queries"), "{out}");
        assert!(out.contains("per-request"), "{out}");
        assert!(out.contains("QPS"), "{out}");
        assert!(out.contains("cache hit rate"), "{out}");
        // 200 queries over ≤ 18 distinct keys: hits are guaranteed.
        assert!(!out.contains("cache hits          │            0"), "{out}");

        // The same workload submitted in batches reports its batch jobs.
        let out = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 4,
            shards: 2,
            queries: 200,
            clients: 2,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.5,
            zipf: 0.0,
            seed: 1,
            batch_size: 25,
            no_split: false,
            warmup: None,
            metrics_out: None,
            bench_json: None,
            remote: None,
        }))
        .unwrap();
        assert!(out.contains("batches of 25"), "{out}");
        assert!(!out.contains("batch jobs          │            0"), "{out}");

        // --no-split: same workload, splitting disabled — the run is
        // labelled and the splits counter stays at zero.
        let out = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 4,
            shards: 1,
            queries: 200,
            clients: 2,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.5,
            zipf: 0.0,
            seed: 1,
            batch_size: 25,
            no_split: true,
            warmup: None,
            metrics_out: None,
            bench_json: None,
            remote: None,
        }))
        .unwrap();
        assert!(out.contains("batches of 25, no split"), "{out}");
        assert!(out.contains("batch splits        │            0"), "{out}");

        let err = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 2,
            shards: 1,
            queries: 10,
            clients: 2,
            alpha: 50,
            beta: 50,
            algo: Algorithm::Auto,
            repeat: 0.0,
            zipf: 0.0,
            seed: 1,
            batch_size: 1,
            no_split: false,
            warmup: None,
            metrics_out: None,
            bench_json: None,
            remote: None,
        }))
        .unwrap_err();
        // The empty-core diagnosis names the core, with the lone
        // possible confusion (--queries 0) ruled out by the parser.
        assert!(err.to_string().contains("(50,50)-core is empty"), "{err}");
        assert!(err.to_string().contains("lower --alpha/--beta"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn serve_bench_exports_metrics_and_bench_json() {
        let dir = std::env::temp_dir().join("scs_cli_serve_bench_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        let mut body = String::new();
        for u in 0..3 {
            for l in 0..3 {
                let w = if u == 2 && l == 2 { 1 } else { 5 };
                body.push_str(&format!("{u} {l} {w}\n"));
            }
        }
        std::fs::write(&path, body).unwrap();
        let metrics = dir.join("metrics.prom");
        let bench = dir.join("BENCH_service.json");
        let out = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 4,
            shards: 2,
            queries: 200,
            clients: 4,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.5,
            zipf: 0.0,
            seed: 1,
            batch_size: 8,
            no_split: false,
            warmup: Some(40),
            metrics_out: Some(metrics.to_str().unwrap().into()),
            bench_json: Some(bench.to_str().unwrap().into()),
            remote: None,
        }))
        .unwrap();
        assert!(out.contains("200 queries (+40 warmup)"), "{out}");
        assert!(out.contains("steady state (excl. warmup)"), "{out}");
        assert!(out.contains("wrote Prometheus metrics"), "{out}");
        assert!(out.contains("wrote bench artifact"), "{out}");

        // Both artifacts exist and re-validate from disk.
        let prom = std::fs::read_to_string(&metrics).unwrap();
        scs_service::validate_prometheus(&prom).unwrap();
        assert!(prom.contains("scs_requests_total"), "{prom}");
        assert!(prom.contains("scs_stage_duration_us_bucket"), "{prom}");
        let json = std::fs::read_to_string(&bench).unwrap();
        scs_service::validate_bench_json(&json).unwrap();
        assert!(json.contains(scs_service::BENCH_SCHEMA), "{json}");
        // Warmup is excluded from the steady window: 200 measured of
        // 240 replayed.
        assert!(json.contains("\"queries\": 200"), "{json}");
        assert!(json.contains("\"warmup\": 40"), "{json}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parses_serve() {
        let cmd = parse_args(&args(&["serve", "g.tsv"])).unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.path, "g.tsv");
                assert_eq!(a.addr, "127.0.0.1:7474");
                // Admission knobs default to the ServiceConfig values.
                let d = scs_service::ServiceConfig::default();
                assert_eq!(a.pending_budget, d.pending_budget);
                assert_eq!(a.batch_deadline_ms, d.batch_deadline_ms);
                assert_eq!(a.batch_max, d.batch_max);
                assert_eq!(a.tenant_rate, d.tenant_rate);
                assert_eq!(a.tenant_burst, d.tenant_burst);
                assert_eq!(a.socket_timeout_ms, d.socket_timeout_ms);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&args(&[
            "serve",
            "g.tsv",
            "--addr",
            "0.0.0.0:0",
            "--threads",
            "8",
            "--shards",
            "2",
            "--pending-budget",
            "64",
            "--batch-deadline-ms",
            "0",
            "--batch-max",
            "16",
            "--tenant-rate",
            "100",
            "--tenant-burst",
            "10",
            "--socket-timeout-ms",
            "500",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                path: "g.tsv".into(),
                one_based: false,
                addr: "0.0.0.0:0".into(),
                threads: 8,
                shards: 2,
                pending_budget: 64,
                batch_deadline_ms: 0,
                batch_max: 16,
                tenant_rate: 100,
                tenant_burst: 10,
                socket_timeout_ms: 500,
            })
        );
        // Serve knobs are serve-only; engine sizing is shared with
        // serve-bench; bench knobs stay bench-only.
        let err = parse_args(&args(&["serve-bench", "g", "--addr", "x:1"])).unwrap_err();
        assert!(err.to_string().contains("`scs serve`"), "{err}");
        assert!(parse_args(&args(&["stats", "g", "--pending-budget", "9"])).is_err());
        assert!(parse_args(&args(&["serve", "g", "--queries", "10"])).is_err());
        assert!(parse_args(&args(&["serve", "g", "--threads", "2"])).is_ok());
        assert!(parse_args(&args(&["stats", "g", "--threads", "2"])).is_err());
        assert!(parse_args(&args(&["serve", "g", "--pending-budget", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "g", "--batch-max", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "g", "--addr"])).is_err());
        assert!(parse_args(&args(&["serve"])).is_err());
    }

    #[test]
    fn parses_serve_bench_remote() {
        match parse_args(&args(&[
            "serve-bench",
            "g.tsv",
            "--remote",
            "10.0.0.1:7474",
        ]))
        .unwrap()
        {
            Command::ServeBench(a) => assert_eq!(a.remote.as_deref(), Some("10.0.0.1:7474")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&args(&["serve-bench", "g", "--remote"])).is_err());
        let err = parse_args(&args(&["stats", "g", "--remote", "x:1"])).unwrap_err();
        assert!(err.to_string().contains("serve-bench"), "{err}");
    }

    #[test]
    fn derived_warmup_aligns_to_the_batch_size() {
        // Per-request submission keeps the plain tenth.
        assert_eq!(aligned_default_warmup(1000, 1), 100);
        // Unaligned tenths round UP to whole batches: 100/10 = 10 → 16.
        assert_eq!(aligned_default_warmup(100, 16), 16);
        assert_eq!(aligned_default_warmup(1000, 16), 112);
        // Already aligned stays put.
        assert_eq!(aligned_default_warmup(1000, 25), 100);
        // No warmup stays no warmup (nothing to align).
        assert_eq!(aligned_default_warmup(5, 16), 0);
    }

    #[test]
    fn serve_bench_default_warmup_lands_on_a_batch_boundary() {
        let dir = std::env::temp_dir().join("scs_cli_warmup_align_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        let mut body = String::new();
        for u in 0..3 {
            for l in 0..3 {
                body.push_str(&format!("{u} {l} 5\n"));
            }
        }
        std::fs::write(&path, body).unwrap();
        // queries=100, batch-size=16: the old derived default (10)
        // ended warmup on a partial batch; the aligned default is 16.
        let out = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 2,
            shards: 1,
            queries: 100,
            clients: 2,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.5,
            zipf: 0.0,
            seed: 1,
            batch_size: 16,
            no_split: false,
            warmup: None,
            metrics_out: None,
            bench_json: None,
            remote: None,
        }))
        .unwrap();
        assert!(out.contains("(+16 warmup)"), "{out}");
        // An explicit --warmup is never realigned.
        let out = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 2,
            shards: 1,
            queries: 100,
            clients: 2,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.5,
            zipf: 0.0,
            seed: 1,
            batch_size: 16,
            no_split: false,
            warmup: Some(10),
            metrics_out: None,
            bench_json: None,
            remote: None,
        }))
        .unwrap();
        assert!(out.contains("(+10 warmup)"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn remote_bench_drives_a_live_server() {
        use scs_service::{QueryEngine, Server, ServiceConfig};

        let dir = std::env::temp_dir().join("scs_cli_remote_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        let mut body = String::new();
        for u in 0..3 {
            for l in 0..3 {
                let w = if u == 2 && l == 2 { 1 } else { 5 };
                body.push_str(&format!("{u} {l} {w}\n"));
            }
        }
        std::fs::write(&path, body).unwrap();
        // A real server on an ephemeral loopback port, fed from the
        // same edge list the client derives its workload from.
        let g = load(path.to_str().unwrap(), false).unwrap();
        let config = ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        };
        let engine = QueryEngine::start(CommunitySearch::shared(g), config.clone());
        let server = Server::start(engine, "127.0.0.1:0", &config).unwrap();
        let addr = server.local_addr().to_string();

        let metrics = dir.join("remote_metrics.prom");
        let out = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 2,
            shards: 1,
            queries: 60,
            clients: 3,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.5,
            zipf: 0.0,
            seed: 1,
            batch_size: 1,
            no_split: false,
            warmup: Some(5),
            metrics_out: Some(metrics.to_str().unwrap().into()),
            bench_json: None,
            remote: Some(addr.clone()),
        }))
        .unwrap();
        assert!(out.contains("--remote"), "{out}");
        assert!(out.contains("ok (200) 60"), "{out}");
        assert!(out.contains("shed (429) 0"), "{out}");
        assert!(out.contains("wrote Prometheus metrics"), "{out}");
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("scs_admission_admitted_total"), "{prom}");

        // --bench-json needs the in-process engine and says so.
        let err = run(Command::ServeBench(ServeBenchArgs {
            path: path.to_str().unwrap().into(),
            one_based: false,
            threads: 2,
            shards: 1,
            queries: 10,
            clients: 1,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat: 0.0,
            zipf: 0.0,
            seed: 1,
            batch_size: 1,
            no_split: false,
            warmup: Some(0),
            metrics_out: None,
            bench_json: Some(dir.join("b.json").to_str().unwrap().into()),
            remote: Some(addr),
        }))
        .unwrap_err();
        assert!(err.to_string().contains("--remote"), "{err}");

        let fin = server.stop();
        assert_eq!(fin.admitted, fin.served + fin.shed_after_admit);
        assert!(fin.admitted >= 65, "{fin:?}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parses_analyze() {
        assert_eq!(
            parse_args(&args(&["analyze"])).unwrap(),
            Command::Analyze {
                root: ".".into(),
                allow: vec![],
                format: "human".into()
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "analyze",
                "--root",
                "/tmp/ws",
                "--allow",
                "unsafe-allowlist",
                "--allow",
                "alloc-free-region",
                "--format",
                "github",
            ]))
            .unwrap(),
            Command::Analyze {
                root: "/tmp/ws".into(),
                allow: vec!["unsafe-allowlist".into(), "alloc-free-region".into()],
                format: "github".into()
            }
        );
        // Unknown rules die in the parser, naming the valid set.
        let err = parse_args(&args(&["analyze", "--allow", "bogus"])).unwrap_err();
        assert!(err.to_string().contains("unsafe-safety-comment"), "{err}");
        // Unknown formats likewise, naming the valid set.
        let err = parse_args(&args(&["analyze", "--format", "xml"])).unwrap_err();
        assert!(err.to_string().contains("github"), "{err}");
        assert!(parse_args(&args(&["analyze", "--root"])).is_err());
        assert!(parse_args(&args(&["analyze", "--format"])).is_err());
        assert!(parse_args(&args(&["analyze", "extra"])).is_err());
        // Analyze flags are analyze-only, like every other knob.
        let err = parse_args(&args(&["stats", "g", "--root", "/x"])).unwrap_err();
        assert!(err.to_string().contains("analyze"), "{err}");
        assert!(parse_args(&args(&["stats", "g", "--allow", "unsafe-allowlist"])).is_err());
    }

    #[test]
    fn analyze_runs_against_a_seeded_tree() {
        let dir = std::env::temp_dir().join("scs_cli_analyze_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // One unsafe block with no SAFETY comment and no allowlist:
        // two rules fire, and the CLI surfaces them as an error.
        std::fs::write(
            dir.join("lib.rs"),
            "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        )
        .unwrap();
        let err = run(Command::Analyze {
            root: dir.to_str().unwrap().into(),
            allow: vec![],
            format: "human".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("unsafe-safety-comment"), "{err}");
        assert!(err.to_string().contains("lib.rs:2"), "{err}");
        // Machine formats print the report to stdout and keep only a
        // one-line count on the error path.
        let err = run(Command::Analyze {
            root: dir.to_str().unwrap().into(),
            allow: vec![],
            format: "github".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("diagnostic(s)"), "{err}");
        assert!(!err.to_string().contains("::error"), "{err}");
        // Allowing both rules turns the same tree clean, in any format.
        let out = run(Command::Analyze {
            root: dir.to_str().unwrap().into(),
            allow: vec!["unsafe-safety-comment".into(), "unsafe-allowlist".into()],
            format: "json".into(),
        })
        .unwrap();
        assert!(out.contains("\"diagnostics\": []"), "{out}");
        let out = run(Command::Analyze {
            root: dir.to_str().unwrap().into(),
            allow: vec!["unsafe-safety-comment".into(), "unsafe-allowlist".into()],
            format: "human".into(),
        })
        .unwrap();
        assert!(
            out.contains("0 diagnostics") || out.contains("clean"),
            "{out}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn generate_end_to_end() {
        let dir = std::env::temp_dir().join("scs_cli_generate_test");
        std::fs::remove_dir_all(&dir).ok();
        let out = run(Command::Generate(GenerateArgs {
            dir: dir.to_str().unwrap().into(),
            scale: 0.02,
            seed: 3,
        }))
        .unwrap();
        assert!(out.contains("11 dataset analogues"), "{out}");
        // The generated files feed straight back into `scs stats`.
        let bs = dir.join("bs.tsv");
        let stats = run(Command::Stats {
            path: bs.to_str().unwrap().into(),
            one_based: false,
        })
        .unwrap();
        assert!(stats.contains("|E|="), "{stats}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn end_to_end_on_temp_file() {
        let dir = std::env::temp_dir().join("scs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        std::fs::write(&path, "0 0 5\n0 1 4\n1 0 5\n1 1 3\n1 2 1\n0 2 1\n").unwrap();
        let p = path.to_str().unwrap().to_string();

        let out = run(Command::Stats {
            path: p.clone(),
            one_based: false,
        })
        .unwrap();
        assert!(out.contains("|E|=6"), "{out}");
        assert!(out.contains("δ (degeneracy) = 2"), "{out}");

        let out = run(Command::Community {
            path: p.clone(),
            one_based: false,
            query: QueryRef {
                side: Side::Upper,
                index: 0,
            },
            alpha: 2,
            beta: 2,
        })
        .unwrap();
        assert!(out.contains("6 edges"), "{out}");

        let out = run(Command::Search {
            path: p.clone(),
            one_based: false,
            query: QueryRef {
                side: Side::Upper,
                index: 0,
            },
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
        })
        .unwrap();
        // The two weight-1 edges force l2 out: 4 edges, f = 3.
        assert!(out.contains("4 edges"), "{out}");
        assert!(out.contains("f = 3"), "{out}");

        let idx_path = dir.join("toy.scsidx");
        let out = run(Command::Index {
            path: p.clone(),
            one_based: false,
            out: idx_path.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(out.contains("δ = 2"), "{out}");
        assert!(idx_path.exists());

        let err = run(Command::Search {
            path: p,
            one_based: false,
            query: QueryRef {
                side: Side::Lower,
                index: 99,
            },
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
        })
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
        std::fs::remove_dir_all(dir).ok();
    }
}
