//! Eviction/recycling stress: hammer the result cache far past its
//! capacity with tiny arena slabs (fast slab turnover) while clients
//! keep live handles to a sample of responses, and prove
//!
//! * recycled slabs are never observed by live handles — every held
//!   summary stays bit-identical to the single-threaded oracle and its
//!   generation tag still matches its slab's ([`ArenaEdges::pinned`]);
//! * cache residency never exceeds the configured bound, storm after
//!   storm;
//! * recycling actually happens (the counters prove the storm exercised
//!   the mechanism, not an ever-growing arena), and arena residency
//!   stabilizes instead of growing with traffic.

use bigraph::arena::ArenaEdges;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use scs_service::{
    CommunitySummary, EdgeStore, QueryEngine, QueryRequest, QueryResponse, ServiceConfig,
};

fn arena_handle(resp: &QueryResponse) -> Option<&ArenaEdges> {
    match resp.summary.store() {
        EdgeStore::Arena(a) => Some(a),
        EdgeStore::Owned(_) => None,
    }
}

#[test]
fn recycled_slabs_are_never_observed_by_live_handles() {
    let mut rng = StdRng::seed_from_u64(20260730);
    let graph = bigraph::generators::random_bipartite(90, 90, 1300, &mut rng);
    let search = CommunitySearch::shared(graph);

    // Tiny cache (constant eviction churn) and tiny slabs (every few
    // results turn a slab over), so recycling runs hot.
    let engine = QueryEngine::start(
        search.clone(),
        ServiceConfig {
            workers: 3,
            cache_capacity: 24,
            cache_shards: 4,
            arena_slab_edges: 64,
            ..ServiceConfig::default()
        },
    );

    // Far more distinct keys than cache slots.
    let keys: Vec<QueryRequest> = search
        .graph()
        .vertices()
        .flat_map(|v| {
            [
                QueryRequest::new(v, 2, 2, Algorithm::Peel),
                QueryRequest::new(v, 1, 2, Algorithm::Expand),
            ]
        })
        .collect();
    assert!(keys.len() > 10 * 24, "storm must dwarf the cache");

    let cache_bound = engine.stats().cache.capacity;
    let storm = |seed: u64, keep: bool| -> Vec<QueryResponse> {
        // Three clients race mixed single/batched submissions; with
        // `keep`, each holds every 7th response alive across the whole
        // storm, so live handles overlap hundreds of slab turnovers.
        let mut held: Vec<QueryResponse> = Vec::new();
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for c in 0..3u64 {
                let engine = &engine;
                let keys = &keys;
                joins.push(scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed + c);
                    let mut mine = Vec::new();
                    for round in 0..6 {
                        if round % 2 == 0 {
                            for (i, resp) in keys.iter().map(|&k| engine.query(k)).enumerate() {
                                if keep && i % 7 == 0 {
                                    mine.push(resp);
                                }
                            }
                        } else {
                            let batch: Vec<QueryRequest> = (0..64)
                                .map(|_| keys[rng.gen_range(0..keys.len())])
                                .collect();
                            for (i, resp) in engine.query_batch(&batch).into_iter().enumerate() {
                                if keep && i % 7 == 0 {
                                    mine.push(resp);
                                }
                            }
                        }
                    }
                    mine
                }));
            }
            for j in joins {
                held.extend(j.join().expect("client panicked"));
            }
        });
        held
    };

    let held = storm(1, true);
    let after_first = engine.stats();

    // Residency bounds hold under churn.
    assert!(
        after_first.cache.entries <= cache_bound,
        "cache residency {} exceeds configured bound {cache_bound}",
        after_first.cache.entries
    );
    // The storm must actually have exercised recycling.
    assert!(
        after_first.arena_recycled > 0,
        "no slab was ever recycled — the stress measured nothing"
    );
    assert!(after_first.arena_bytes > 0);

    // Every live handle still reads exactly what was computed: compare
    // against the single-threaded oracle and check the generation tags.
    let mut ws = QueryWorkspace::new();
    let mut arena_backed = 0usize;
    for resp in &held {
        let req = resp.request;
        let sub = search.significant_community_in(
            req.q,
            req.alpha as usize,
            req.beta as usize,
            req.algo,
            &mut ws,
        );
        assert_eq!(
            resp.summary,
            CommunitySummary::from_subgraph(&sub),
            "{req:?}: a held response diverged from the oracle after recycling churn"
        );
        if let Some(handle) = arena_handle(resp) {
            arena_backed += 1;
            assert!(
                handle.pinned(),
                "{req:?}: live handle's generation {} != slab generation {} — \
                 its slab was recycled under it",
                handle.generation(),
                handle.slab_generation()
            );
        }
    }
    assert!(
        arena_backed > held.len() / 2,
        "only {arena_backed}/{} held responses were arena-backed",
        held.len()
    );

    // Further storms (still holding the first storm's responses, but
    // keeping nothing new) keep recycling, and arena residency
    // **converges**: each worker's pool grows only until it covers the
    // live set plus its share of transient churn, so repeated identical
    // traffic must stop growing it (different eviction interleavings
    // shift the equilibrium a little between storms, hence a
    // convergence loop rather than a single-storm comparison).
    let mut prev = after_first;
    let mut converged = false;
    for seed in 2..8u64 {
        assert!(storm(seed, false).is_empty());
        let now = engine.stats();
        assert!(
            now.cache.entries <= cache_bound,
            "cache residency {} exceeds bound {cache_bound} after storm {seed}",
            now.cache.entries
        );
        assert!(
            now.arena_recycled > prev.arena_recycled,
            "storm {seed} never recycled"
        );
        if now.arena_bytes <= prev.arena_bytes + prev.arena_bytes / 20 {
            converged = true;
            prev = now;
            break;
        }
        prev = now;
    }
    assert!(
        converged,
        "arena residency kept growing ≥5% per identical storm (now {}B) — \
         it tracks traffic, not the live set",
        prev.arena_bytes
    );

    // First-storm handles survived every later storm untouched: their
    // slabs were never recycled, and their contents still match the
    // oracle (checked again below after all that churn).
    for resp in &held {
        if let Some(handle) = arena_handle(resp) {
            assert!(handle.pinned(), "{:?} lost its slab", resp.request);
        }
        let req = resp.request;
        let sub = search.significant_community_in(
            req.q,
            req.alpha as usize,
            req.beta as usize,
            req.algo,
            &mut ws,
        );
        assert_eq!(
            resp.summary,
            CommunitySummary::from_subgraph(&sub),
            "{req:?}: storm-1 response corrupted by later recycling"
        );
    }
    drop(held);
    assert_eq!(engine.inflight_len(), 0, "a flight leaked");
    engine.shutdown();
}
