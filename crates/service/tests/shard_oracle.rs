//! Integration tests for the sharded engine: partitioning the workers,
//! caches, arenas and index replicas across shards must be invisible in
//! the answers. A sharded engine (1, 2 or 7 shards) must be
//! indistinguishable — response by response, counter by counter — from
//! the unsharded engine and from the single-threaded oracle; the
//! cross-shard batch fan-out must preserve submission order; installs
//! must fan out atomically enough that every response's epoch tag is
//! self-consistent under concurrent swaps and mixed traffic; and at
//! quiescence no shard may hold a leaked flight.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use scs_service::{
    build_workload, replay, replay_batched, CommunitySummary, QueryEngine, QueryRequest,
    ServiceConfig, WorkloadSpec,
};
use std::collections::HashMap;
use std::sync::Arc;

fn config(shards: usize) -> ServiceConfig {
    ServiceConfig {
        workers: 8,
        shards,
        // Big enough that no slice evicts: cache contents — and with
        // them the `cached` flags — stay deterministic per shard count.
        cache_capacity: 8192,
        cache_shards: 8,
        ..ServiceConfig::default()
    }
}

#[test]
fn sharded_matches_unsharded_and_oracle_bit_identically() {
    let mut rng = StdRng::seed_from_u64(20210707);
    let graph = bigraph::generators::random_bipartite(120, 120, 1800, &mut rng);
    let search = CommunitySearch::shared(graph);
    let spec = WorkloadSpec {
        n_queries: 800,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        zipf: 0.0,
        seed: 13,
    };
    let workload = build_workload(&search, &spec);
    assert_eq!(workload.len(), 800, "core must be populated at (2,2)");

    // One serial client: flags and counters are deterministic, so
    // "bit-identical" can include them. Batched submission exercises
    // the cross-shard fan-out (64-request batches span every shard).
    let mut runs = Vec::new();
    for shards in [1usize, 2, 7] {
        let engine = QueryEngine::start(search.clone(), config(shards));
        let (report, resps) = replay_batched(&engine, &workload, 1, 64);
        assert_eq!(engine.inflight_len(), 0, "{shards} shards: a flight leaked");
        engine.shutdown();
        runs.push((shards, report, resps));
    }

    // Single-threaded oracle for every slot, then pairwise identity.
    let mut ws = QueryWorkspace::new();
    let (_, base_report, base) = &runs[0];
    for (i, req) in workload.iter().enumerate() {
        let sub = search.significant_community_in(
            req.q,
            req.alpha as usize,
            req.beta as usize,
            req.algo,
            &mut ws,
        );
        let want = CommunitySummary::from_subgraph(&sub);
        for (shards, _, resps) in &runs {
            let r = &resps[i];
            assert_eq!(r.request, *req, "{shards} shards: slot {i} out of order");
            assert_eq!(
                r.summary, want,
                "{shards} shards: slot {i} diverged from the oracle"
            );
            assert_eq!(
                (r.cached, r.coalesced, r.epoch),
                (base[i].cached, base[i].coalesced, base[i].epoch),
                "{shards} shards: slot {i} flags diverged from unsharded"
            );
        }
    }

    // Counter identity: the same stream lands the same totals whether
    // one engine or seven shards served it.
    for (shards, report, _) in &runs[1..] {
        let (a, b) = (&base_report.stats, &report.stats);
        assert_eq!(a.completed, b.completed, "{shards} shards: completed");
        assert_eq!(a.cache.hits, b.cache.hits, "{shards} shards: hits");
        assert_eq!(a.cache.misses, b.cache.misses, "{shards} shards: misses");
        assert_eq!(a.coalesced, b.coalesced, "{shards} shards: coalesced");
        assert_eq!(
            b.per_shard.iter().map(|s| s.completed).sum::<u64>(),
            b.completed,
            "{shards} shards: per-shard rows must sum to the aggregate"
        );
    }
}

#[test]
fn sharded_stats_are_submission_mode_invariant() {
    // Per-request vs batched against a 7-shard engine: the cache and
    // coalescing counters must not depend on how requests arrived,
    // exactly as the unsharded batch oracle guarantees for one shard.
    let mut rng = StdRng::seed_from_u64(31);
    let graph = bigraph::generators::random_bipartite(100, 100, 1500, &mut rng);
    let search = CommunitySearch::shared(graph);
    let spec = WorkloadSpec {
        n_queries: 600,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        zipf: 0.0,
        seed: 19,
    };
    let workload = build_workload(&search, &spec);
    assert_eq!(workload.len(), 600);

    let engine = QueryEngine::start(search.clone(), config(7));
    let (per_report, per) = replay(&engine, &workload, 1);
    engine.shutdown();

    let engine = QueryEngine::start(search.clone(), config(7));
    let (batch_report, batched) = replay_batched(&engine, &workload, 1, 48);
    engine.shutdown();

    for (i, (a, b)) in per.iter().zip(&batched).enumerate() {
        assert_eq!(a.request, b.request, "slot {i} out of order");
        assert_eq!(a.summary, b.summary, "slot {i} diverged across modes");
        assert_eq!(
            (a.cached, a.coalesced),
            (b.cached, b.coalesced),
            "slot {i}: flags diverged across modes"
        );
    }
    let (a, b) = (&per_report.stats, &batch_report.stats);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.cache.hits, b.cache.hits);
    assert_eq!(a.cache.misses, b.cache.misses);
    assert_eq!(a.coalesced, b.coalesced);
    assert!(b.batches > 0, "batched run recorded no batch jobs");
}

#[test]
fn sharded_engine_stays_sound_under_concurrent_installs() {
    // Mixed per-request and cross-shard batch traffic from several
    // clients while an installer alternates two structurally different
    // graphs. Installs fan out to every shard; each response's epoch
    // tag must match the graph that epoch served (even = A, odd = B) —
    // a shard serving at a stale epoch, or a fan-out merge pairing an
    // answer with the wrong slot, fails the oracle immediately. At
    // quiescence every shard's flight table must be empty.
    let mut rng = StdRng::seed_from_u64(1);
    let graph_a = bigraph::generators::random_bipartite(80, 80, 1000, &mut rng);
    let mut rng = StdRng::seed_from_u64(2);
    let graph_b = bigraph::generators::random_bipartite(80, 80, 1400, &mut rng);
    let search_a = CommunitySearch::shared(graph_a);
    let search_b = CommunitySearch::shared(graph_b);

    let keys: Vec<QueryRequest> = search_a
        .graph()
        .vertices()
        .step_by(2)
        .flat_map(|v| {
            [
                QueryRequest::new(v, 2, 2, Algorithm::Auto),
                QueryRequest::new(v, 1, 2, Algorithm::Peel),
            ]
        })
        .collect();
    let mut ws = QueryWorkspace::new();
    let mut expected: HashMap<QueryRequest, [CommunitySummary; 2]> = HashMap::new();
    for req in &keys {
        let mut on = |search: &Arc<CommunitySearch>| {
            let sub = search.significant_community_in(
                req.q,
                req.alpha as usize,
                req.beta as usize,
                req.algo,
                &mut ws,
            );
            CommunitySummary::from_subgraph(&sub)
        };
        expected.insert(*req, [on(&search_a), on(&search_b)]);
    }
    assert!(
        expected.values().any(|[a, b]| a != b),
        "graphs must disagree somewhere or epoch mixing is undetectable"
    );

    let engine = QueryEngine::start(
        search_a.clone(),
        ServiceConfig {
            workers: 6,
            shards: 3,
            cache_capacity: 512,
            cache_shards: 4,
            min_sub_batch: 2,
            ..ServiceConfig::default()
        },
    );
    const INSTALLS: u64 = 12;
    std::thread::scope(|scope| {
        let engine = &engine;
        let keys = &keys;
        let expected = &expected;
        for c in 0..3u64 {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(700 + c);
                for round in 0..25 {
                    let batch: Vec<QueryRequest> = (0..48)
                        .map(|_| keys[rng.gen_range(0..keys.len())])
                        .collect();
                    let resps = if round % 4 == 3 {
                        // Per-request traffic races the fan-out batches.
                        batch.iter().map(|&r| engine.query(r)).collect()
                    } else {
                        engine.query_batch(&batch)
                    };
                    for (i, resp) in resps.into_iter().enumerate() {
                        assert_eq!(resp.request, batch[i], "slot {i} out of order");
                        let want = &expected[&resp.request][(resp.epoch % 2) as usize];
                        assert_eq!(
                            resp.summary, *want,
                            "epoch {} answer for {:?} does not match that epoch's graph \
                             (cached={} coalesced={})",
                            resp.epoch, resp.request, resp.cached, resp.coalesced
                        );
                    }
                }
            });
        }
        scope.spawn(move || {
            for i in 0..INSTALLS {
                std::thread::sleep(std::time::Duration::from_millis(7));
                let next = if i % 2 == 0 {
                    search_b.clone()
                } else {
                    search_a.clone()
                };
                engine.install(next);
            }
        });
    });

    let st = engine.stats();
    assert_eq!(st.epoch, INSTALLS, "installer must have finished");
    assert_eq!(
        st.installs, INSTALLS,
        "per-shard install fan-out multiply-counted"
    );
    assert_eq!(st.per_shard.len(), 3);
    assert!(
        st.per_shard.iter().all(|s| s.completed > 0),
        "a shard sat idle through the whole run: {:?}",
        st.per_shard
    );
    assert_eq!(
        st.cache.hits + st.cache.misses,
        st.completed,
        "per-request lookup accounting broke under installs"
    );
    assert_eq!(
        engine.inflight_len(),
        0,
        "a flight leaked across the epoch swaps"
    );
    engine.shutdown();
}
