//! The tentpole guarantee of the arena-backed result layer, enforced
//! end to end: a **warm [`QueryEngine`] serves leader queries with zero
//! heap allocations** — submit, queue hop, flight join, batched kernel,
//! summary build, cache insert, publish and reply included.
//!
//! A counting global allocator wraps the system allocator. Every phase
//! first warms the engine (pools fill, workspaces and arena slabs grow
//! to their steady-state sizes), forcing the *leader* path each round
//! by installing the same index snapshot (which clears the result
//! cache without allocating), then asserts a whole warm round's
//! allocation delta is **exactly zero**:
//!
//! * per-request submission (`engine.query`), every algorithm;
//! * batched submission (`query_batch_into` with a reused response
//!   buffer), unsplit — deterministic with one worker;
//! * batched submission with adaptive splitting across 4 workers —
//!   here chunk-to-worker assignment is scheduling-dependent, so the
//!   proof is that rounds reach zero (and stay there in steady state),
//!   asserted as `min(delta over rounds) == 0`.
//!
//! Runs as its own integration-test binary **without the libtest
//! harness** (`harness = false` in Cargo.toml): the harness's
//! main-thread bookkeeping (slow-test watchdog, channel waits)
//! allocates sporadically and would race the measured windows. The only
//! other threads in the process are the engine's own workers, which are
//! parked (allocation-free) whenever they are not serving.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::{Algorithm, CommunitySearch};
use scs_service::{
    build_workload, QueryEngine, QueryRequest, QueryResponse, ServiceConfig, WorkloadSpec,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump;
// every contract obligation is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller contract identical to `System`'s, to which we delegate.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller contract identical to `System`'s, to which we delegate.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our `alloc`, which delegated
        // to `System` with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller contract identical to `System`'s, to which we delegate.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged from our own caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn search() -> Arc<CommunitySearch> {
    let mut rng = StdRng::seed_from_u64(20210417);
    CommunitySearch::shared(bigraph::generators::random_bipartite(
        80, 80, 1100, &mut rng,
    ))
}

/// A request whose (2,2)-community is nonempty, per algorithm.
fn workload(search: &CommunitySearch, n: usize) -> Vec<QueryRequest> {
    let w = build_workload(
        search,
        &WorkloadSpec {
            n_queries: n,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat_fraction: 0.0,
            zipf: 0.0,
            seed: 3,
        },
    );
    assert_eq!(w.len(), n, "(2,2)-core must be populated");
    w
}

fn main() {
    let search = search();

    // ── Phase 1: per-request leader path, every algorithm ────────────
    // One worker: the serving thread is deterministic, so the measured
    // window contains exactly one leader computation and nothing else.
    {
        let engine = QueryEngine::start(
            search.clone(),
            ServiceConfig {
                workers: 1,
                cache_capacity: 64,
                cache_shards: 4,
                split_batches: false,
                ..ServiceConfig::default()
            },
        );
        let base = workload(&search, 1)[0];
        for algo in Algorithm::ALL {
            let req = QueryRequest::new(base.q, 2, 2, algo);
            // Warm-up: grow every buffer, fill every pool. Each round
            // re-installs the same snapshot, clearing the cache so the
            // next query is a leader again.
            for _ in 0..6 {
                engine.install(search.clone());
                let resp = engine.query(req);
                assert!(!resp.cached && !resp.coalesced);
                assert!(!resp.summary.edges().is_empty(), "warm-up must compute");
            }
            let before = allocations();
            engine.install(search.clone());
            let resp = engine.query(req);
            let delta = allocations() - before;
            assert!(!resp.cached, "install must have cleared the cache");
            assert_eq!(
                delta, 0,
                "algorithm {algo}: a warm leader query allocated {delta} times"
            );
            // The warm *cache-hit* path is free too.
            let before = allocations();
            let hit = engine.query(req);
            let delta = allocations() - before;
            assert!(hit.cached);
            assert_eq!(
                delta, 0,
                "algorithm {algo}: a warm cache hit allocated {delta} times"
            );
        }
        engine.shutdown();
    }

    // ── Phase 2: batched leader path, unsplit ────────────────────────
    // A mixed-algorithm batch with in-batch duplicates through one
    // worker: dedup tables, flight partition, batched kernel calls,
    // per-unit publishes and the pooled response vector all must be
    // warm-reusable.
    {
        let engine = QueryEngine::start(
            search.clone(),
            ServiceConfig {
                workers: 1,
                cache_capacity: 256,
                cache_shards: 4,
                split_batches: false,
                ..ServiceConfig::default()
            },
        );
        let distinct = workload(&search, 12);
        let mut reqs: Vec<QueryRequest> = Vec::new();
        for (i, r) in distinct.iter().enumerate() {
            let algo = Algorithm::ALL[i % Algorithm::ALL.len()];
            reqs.push(QueryRequest::new(r.q, 2, 2, algo));
        }
        reqs.push(reqs[0]); // duplicate keys ride along
        reqs.push(reqs[5]);
        let mut out: Vec<QueryResponse> = Vec::new();
        for _ in 0..8 {
            engine.install(search.clone());
            engine.query_batch_into(&reqs, &mut out);
            assert_eq!(out.len(), reqs.len());
            out.clear();
        }
        let before = allocations();
        engine.install(search.clone());
        engine.query_batch_into(&reqs, &mut out);
        let delta = allocations() - before;
        assert_eq!(out.len(), reqs.len());
        assert!(out.iter().all(|r| !r.coalesced));
        assert_eq!(
            delta,
            0,
            "a warm unsplit batch of {} leader queries allocated {delta} times",
            reqs.len()
        );
        out.clear();
        engine.shutdown();
    }

    // ── Phase 3: batched leader path, split across the pool ──────────
    // Which worker runs which chunk is scheduling-dependent, so a
    // round is only allocation-free once *every* worker that happens
    // to claim chunks has warmed its workspace, arena and staging
    // buffers, and the shared-state pool has a free entry. Steady
    // state must reach zero; we assert the best observed round is
    // exactly that.
    {
        let engine = QueryEngine::start(
            search.clone(),
            ServiceConfig {
                workers: 4,
                cache_capacity: 256,
                cache_shards: 4,
                min_sub_batch: 1,
                split_batches: true,
                ..ServiceConfig::default()
            },
        );
        // Let the pool park so the split heuristic sees idle workers.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let distinct = workload(&search, 24);
        let reqs: Vec<QueryRequest> = distinct
            .iter()
            .enumerate()
            .map(|(i, r)| QueryRequest::new(r.q, 2, 2, Algorithm::ALL[i % 2 + 1])) // Peel/Expand runs
            .collect();
        let mut out: Vec<QueryResponse> = Vec::new();
        for _ in 0..12 {
            engine.install(search.clone());
            engine.query_batch_into(&reqs, &mut out);
            out.clear();
        }
        let splits_before = engine.stats().splits;
        let mut deltas = Vec::with_capacity(12);
        for _ in 0..12 {
            let before = allocations();
            engine.install(search.clone());
            engine.query_batch_into(&reqs, &mut out);
            deltas.push(allocations() - before);
            assert_eq!(out.len(), reqs.len());
            out.clear();
        }
        assert!(
            engine.stats().splits > splits_before,
            "split path never engaged — the split proof measured nothing"
        );
        let min = *deltas.iter().min().expect("rounds measured");
        assert_eq!(
            min, 0,
            "no warm split batch round reached zero allocations (deltas: {deltas:?})"
        );
        engine.shutdown();
    }

    // ── Phase 4: sharded engine, per-request leader path ─────────────
    // Two shards, telemetry on (the default): hashing the request to
    // its shard, serving it on that shard's worker from that shard's
    // arena and cache slice, and the install fan-out that precedes each
    // round must all be as allocation-free as the unsharded engine.
    {
        let engine = QueryEngine::start(
            search.clone(),
            ServiceConfig {
                workers: 2,
                shards: 2,
                cache_capacity: 64,
                cache_shards: 4,
                split_batches: false,
                ..ServiceConfig::default()
            },
        );
        let mut reqs = workload(&search, 16);
        reqs.sort_by_key(|r| r.q);
        reqs.dedup_by_key(|r| r.q);
        reqs.truncate(8);
        for _ in 0..6 {
            engine.install(search.clone());
            for r in &reqs {
                let resp = engine.query(*r);
                assert!(!resp.cached && !resp.coalesced);
                assert!(!resp.summary.edges().is_empty(), "warm-up must compute");
            }
        }
        // Both shards must actually be serving, or the sharded claim
        // is vacuous.
        let st = engine.stats();
        assert!(
            st.per_shard.len() == 2 && st.per_shard.iter().all(|s| s.completed > 0),
            "a shard sat idle, proving nothing: {:?}",
            st.per_shard
        );
        let before = allocations();
        engine.install(search.clone());
        for r in &reqs {
            let resp = engine.query(*r);
            assert!(!resp.cached, "install must have cleared every slice");
        }
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "a warm sharded round of {} leader queries allocated {delta} times",
            reqs.len()
        );
        // Warm cross-shard cache hits are free too.
        let before = allocations();
        for r in &reqs {
            assert!(engine.query(*r).cached);
        }
        let delta = allocations() - before;
        assert_eq!(delta, 0, "a warm sharded cache hit allocated {delta} times");
        engine.shutdown();
    }

    println!(
        "alloc_free_service: warm leader queries allocated 0 times end to end \
         (per-request, cache hit, unsplit batch, split batch, 2-shard engine) — ok"
    );
}
