//! Integration test: batched submission is indistinguishable from
//! per-request submission — and both from the single-threaded oracle.
//!
//! The same generated workload is replayed twice against identically
//! configured engines, once with per-request submit+wait and once in
//! batches, and every pair of responses is compared one-to-one. A mixed
//! concurrent run (batches racing single submissions against one engine)
//! then checks that the two paths share caches and flights soundly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use scs_service::{
    build_workload, replay, replay_batched, CommunitySummary, QueryEngine, QueryRequest,
    ServiceConfig, WorkloadSpec,
};

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        cache_capacity: 512,
        cache_shards: 8,
        ..ServiceConfig::default()
    }
}

#[test]
fn batched_replay_is_bit_identical_to_per_request() {
    let mut rng = StdRng::seed_from_u64(20210415);
    let graph = bigraph::generators::random_bipartite(120, 120, 1800, &mut rng);
    let search = CommunitySearch::shared(graph);

    let spec = WorkloadSpec {
        n_queries: 1000,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        zipf: 0.0,
        seed: 11,
    };
    let workload = build_workload(&search, &spec);
    assert_eq!(workload.len(), 1000, "core must be populated at (2,2)");

    let engine = QueryEngine::start(search.clone(), config());
    let (_, per_request) = replay(&engine, &workload, 6);
    engine.shutdown();

    let engine = QueryEngine::start(search.clone(), config());
    let (report, batched) = replay_batched(&engine, &workload, 6, 32);
    engine.shutdown();

    assert_eq!(per_request.len(), batched.len());
    let mut ws = QueryWorkspace::new();
    for (i, ((req, a), b)) in workload.iter().zip(&per_request).zip(&batched).enumerate() {
        assert_eq!(a.request, *req, "per-request slot {i} out of order");
        assert_eq!(b.request, *req, "batched slot {i} out of order");
        assert_eq!(
            a.summary, b.summary,
            "slot {i} diverged between submission modes (batched cached={} coalesced={})",
            b.cached, b.coalesced
        );
        let sub = search.significant_community_in(
            req.q,
            req.alpha as usize,
            req.beta as usize,
            req.algo,
            &mut ws,
        );
        assert_eq!(
            b.summary,
            CommunitySummary::from_subgraph(&sub),
            "slot {i} diverged from the single-threaded oracle"
        );
    }

    // The batched run actually took the batch path, exercised the cache
    // through it, and deduplicated in-batch repeats.
    assert_eq!(report.stats.batched, 1000);
    assert!(
        report.stats.batches >= 32,
        "batches={}",
        report.stats.batches
    );
    assert!(report.stats.cache.hits > 0, "repeats must hit the cache");
    assert!(batched.iter().any(|r| r.cached), "cached path unexercised");
    assert!(
        batched.iter().any(|r| !r.cached && !r.coalesced),
        "leader path unexercised"
    );
    // Per-request accounting holds even through the batch path: every
    // completed request was counted as exactly one lookup.
    assert_eq!(
        report.stats.cache.hits + report.stats.cache.misses,
        report.stats.completed,
        "batch path drifted from one-counted-lookup-per-request"
    );
}

#[test]
fn service_stats_are_submission_mode_invariant() {
    // The same workload replayed serially (one client) through three
    // fresh engines — per-request, batched unsplit, batched split —
    // must leave identical traffic counters behind: the batch path may
    // amortize lookups and computations, but it must *account* per
    // request, and splitting may move work between workers, but never
    // change what is counted.
    let mut rng = StdRng::seed_from_u64(20260730);
    let graph = bigraph::generators::random_bipartite(90, 90, 1200, &mut rng);
    let search = CommunitySearch::shared(graph);
    let spec = WorkloadSpec {
        n_queries: 400,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        zipf: 0.0,
        seed: 5,
    };
    let workload = build_workload(&search, &spec);
    assert_eq!(workload.len(), 400);

    let per_request = QueryEngine::start(search.clone(), config());
    let (_, _) = replay(&per_request, &workload, 1);
    let a = per_request.stats();
    per_request.shutdown();

    let unsplit = QueryEngine::start(
        search.clone(),
        ServiceConfig {
            split_batches: false,
            ..config()
        },
    );
    let (_, _) = replay_batched(&unsplit, &workload, 1, 32);
    let b = unsplit.stats();
    unsplit.shutdown();

    let split = QueryEngine::start(
        search.clone(),
        ServiceConfig {
            min_sub_batch: 2,
            split_batches: true,
            ..config()
        },
    );
    // Give the 4 workers a beat to park on the queue so the split
    // heuristic sees the idle capacity it is supposed to use.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let (_, _) = replay_batched(&split, &workload, 1, 32);
    let c = split.stats();
    split.shutdown();

    for (label, s) in [("batched", &b), ("batched+split", &c)] {
        assert_eq!(a.completed, s.completed, "{label}: completed drifted");
        assert_eq!(a.cache.hits, s.cache.hits, "{label}: hits drifted");
        assert_eq!(a.cache.misses, s.cache.misses, "{label}: misses drifted");
        assert_eq!(a.coalesced, s.coalesced, "{label}: coalesced drifted");
        assert_eq!(
            s.cache.hits + s.cache.misses,
            s.completed,
            "{label}: lookup accounting broken"
        );
    }
    // A serial client coalesces nothing, in any mode.
    assert_eq!(a.coalesced, 0);
    assert!(
        c.splits > 0,
        "split engine never split — vacuous comparison"
    );
    assert_eq!(b.splits, 0, "unsplit engine must not split");
}

#[test]
fn batches_race_single_requests_on_one_engine() {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = bigraph::generators::random_bipartite(60, 60, 700, &mut rng);
    let search = CommunitySearch::shared(graph);

    let spec = WorkloadSpec {
        n_queries: 400,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.6,
        zipf: 0.0,
        seed: 3,
    };
    let workload = build_workload(&search, &spec);
    assert!(!workload.is_empty());

    // Half the clients submit per-request, half in batches, all racing
    // on the same engine over the same keys so batch leaders, single
    // leaders, followers and cache hits all interleave.
    let engine = QueryEngine::start(search.clone(), config());
    let mut collected: Vec<(QueryRequest, CommunitySummary)> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..4usize {
            let engine = &engine;
            let workload = &workload;
            joins.push(scope.spawn(move || {
                let mine: Vec<QueryRequest> = (0..workload.len())
                    .skip(c)
                    .step_by(4)
                    .map(|i| workload[i])
                    .collect();
                let mut got = Vec::new();
                if c % 2 == 0 {
                    for chunk in mine.chunks(16) {
                        for (req, resp) in chunk.iter().zip(engine.query_batch(chunk)) {
                            got.push((*req, resp.summary.clone()));
                        }
                    }
                } else {
                    for req in mine {
                        got.push((req, engine.query(req).summary.clone()));
                    }
                }
                got
            }));
        }
        for j in joins {
            collected.extend(j.join().expect("client panicked"));
        }
    });
    engine.shutdown();

    let mut ws = QueryWorkspace::new();
    for (req, summary) in collected {
        let sub = search.significant_community_in(
            req.q,
            req.alpha as usize,
            req.beta as usize,
            req.algo,
            &mut ws,
        );
        assert_eq!(
            summary,
            CommunitySummary::from_subgraph(&sub),
            "{req:?} diverged under mixed batch/single racing"
        );
    }
}
