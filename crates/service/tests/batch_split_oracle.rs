//! Integration tests for adaptive batch splitting: a split batch must
//! be indistinguishable — response by response, counter by counter —
//! from the same batch served unsplit by one worker, from per-request
//! submission, and from the single-threaded oracle; and the split path
//! must stay sound (right-epoch answers, no leaked flights) while
//! `install` swaps the index under the pool.
//!
//! Results are arena-backed throughout (summaries are views into
//! per-worker slab storage), so every bit-identity assertion here also
//! proves the arena layer: a sub-batch published from another worker's
//! arena reads the same as an inline one, and the concurrent-install
//! test at the bottom runs with deliberately tiny slabs and cache so
//! recycling churns *under* the epoch swaps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use scs_service::{
    build_workload, replay, replay_batched, CommunitySummary, QueryEngine, QueryRequest,
    ServiceConfig, WorkloadSpec,
};
use std::collections::HashMap;
use std::sync::Arc;

fn config(split: bool) -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        cache_capacity: 4096,
        cache_shards: 8,
        // Aggressive splitting so the fan-out path is exercised hard.
        min_sub_batch: 2,
        split_batches: split,
        ..ServiceConfig::default()
    }
}

/// Workers advertise idleness once they park on the job queue; give a
/// freshly spawned pool a beat to get there so assertions that the
/// split heuristic *engaged* don't race thread startup. (Correctness
/// never depends on the idle count — only how much fans out does.)
fn settle() {
    std::thread::sleep(std::time::Duration::from_millis(100));
}

#[test]
fn split_equals_unsplit_equals_per_request_bit_identically() {
    let mut rng = StdRng::seed_from_u64(20210415);
    let graph = bigraph::generators::random_bipartite(120, 120, 1800, &mut rng);
    let search = CommunitySearch::shared(graph);
    let spec = WorkloadSpec {
        n_queries: 900,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        zipf: 0.0,
        seed: 11,
    };
    let workload = build_workload(&search, &spec);
    assert_eq!(workload.len(), 900, "core must be populated at (2,2)");

    // One client everywhere: the pool has idle capacity (the scenario
    // splitting exists for) and a serial submitter makes flags and
    // counters deterministic, so "bit-identical" can include them.
    let engine = QueryEngine::start(search.clone(), config(true));
    settle();
    let (split_report, split) = replay_batched(&engine, &workload, 1, 64);
    assert_eq!(engine.inflight_len(), 0, "split batches leaked flights");
    engine.shutdown();

    let engine = QueryEngine::start(search.clone(), config(false));
    let (unsplit_report, unsplit) = replay_batched(&engine, &workload, 1, 64);
    engine.shutdown();

    let engine = QueryEngine::start(search.clone(), config(false));
    let (per_report, per_request) = replay(&engine, &workload, 1);
    engine.shutdown();

    assert!(
        split_report.stats.splits > 0,
        "split path never engaged — nothing was proven"
    );
    assert!(
        split_report.stats.sub_batches >= 2 * split_report.stats.splits,
        "splits={} sub_batches={}",
        split_report.stats.splits,
        split_report.stats.sub_batches
    );
    assert_eq!(unsplit_report.stats.splits, 0);

    let mut ws = QueryWorkspace::new();
    for (i, req) in workload.iter().enumerate() {
        let (s, u, p) = (&split[i], &unsplit[i], &per_request[i]);
        assert_eq!(s.request, *req, "split slot {i} out of order");
        assert_eq!(u.request, *req, "unsplit slot {i} out of order");
        assert_eq!(p.request, *req, "per-request slot {i} out of order");
        assert_eq!(s.summary, u.summary, "slot {i}: split vs unsplit diverged");
        assert_eq!(
            s.summary, p.summary,
            "slot {i}: split vs per-request diverged"
        );
        assert_eq!(
            (s.cached, s.coalesced, s.epoch),
            (u.cached, u.coalesced, u.epoch),
            "slot {i}: flags diverged between split and unsplit"
        );
        assert_eq!(
            (s.cached, s.coalesced, s.epoch),
            (p.cached, p.coalesced, p.epoch),
            "slot {i}: flags diverged between split and per-request"
        );
        let sub = search.significant_community_in(
            req.q,
            req.alpha as usize,
            req.beta as usize,
            req.algo,
            &mut ws,
        );
        assert_eq!(
            s.summary,
            CommunitySummary::from_subgraph(&sub),
            "slot {i} diverged from the single-threaded oracle"
        );
    }

    // Counter equivalence across all three modes.
    for (label, r) in [("unsplit", &unsplit_report), ("per-request", &per_report)] {
        assert_eq!(
            split_report.stats.completed, r.stats.completed,
            "completed drifted vs {label}"
        );
        assert_eq!(
            split_report.stats.cache.hits, r.stats.cache.hits,
            "hits drifted vs {label}"
        );
        assert_eq!(
            split_report.stats.cache.misses, r.stats.cache.misses,
            "misses drifted vs {label}"
        );
        assert_eq!(
            split_report.stats.coalesced, r.stats.coalesced,
            "coalesced drifted vs {label}"
        );
    }
}

#[test]
fn one_giant_batch_fans_out_and_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(99);
    let graph = bigraph::generators::random_bipartite(150, 150, 2200, &mut rng);
    let search = CommunitySearch::shared(graph);
    let engine = QueryEngine::start(
        search.clone(),
        ServiceConfig {
            min_sub_batch: 8,
            ..config(true)
        },
    );
    settle();
    // Every vertex twice (two algorithms) in one submission: the
    // single-big-submitter case the ROADMAP called out, where an
    // unsplit engine would leave 3 of 4 workers idle.
    let reqs: Vec<QueryRequest> = search
        .graph()
        .vertices()
        .flat_map(|v| {
            [
                QueryRequest::new(v, 2, 2, Algorithm::Peel),
                QueryRequest::new(v, 1, 2, Algorithm::Expand),
            ]
        })
        .collect();
    let resps = engine.query_batch(&reqs);
    let st = engine.stats();
    assert_eq!(st.splits, 1, "one giant batch must split once");
    assert!(st.sub_batches >= 2, "sub_batches={}", st.sub_batches);
    assert_eq!(engine.inflight_len(), 0, "flights leaked");
    engine.shutdown();

    let mut ws = QueryWorkspace::new();
    for (req, resp) in reqs.iter().zip(&resps) {
        assert_eq!(resp.request, *req, "submission order broken");
        let sub = search.significant_community_in(
            req.q,
            req.alpha as usize,
            req.beta as usize,
            req.algo,
            &mut ws,
        );
        assert_eq!(
            resp.summary,
            CommunitySummary::from_subgraph(&sub),
            "{req:?} diverged from the oracle"
        );
    }
}

#[test]
fn split_batches_stay_sound_under_concurrent_installs() {
    // Two structurally different graphs of the same shape are installed
    // alternately while clients hammer the engine with split batches.
    // Every response's epoch tag must be self-consistent: the summary
    // must equal the single-threaded oracle on the graph that epoch
    // served (even epochs = graph A, odd = graph B). At quiescence the
    // in-flight table must be empty — no flight may leak, however the
    // sub-batches interleaved with the swaps.
    let mut rng = StdRng::seed_from_u64(1);
    let graph_a = bigraph::generators::random_bipartite(80, 80, 1000, &mut rng);
    let mut rng = StdRng::seed_from_u64(2);
    let graph_b = bigraph::generators::random_bipartite(80, 80, 1400, &mut rng);
    let search_a = CommunitySearch::shared(graph_a);
    let search_b = CommunitySearch::shared(graph_b);

    // Pre-compute both oracles for every key the clients may submit.
    let keys: Vec<QueryRequest> = search_a
        .graph()
        .vertices()
        .step_by(2)
        .flat_map(|v| {
            [
                QueryRequest::new(v, 2, 2, Algorithm::Auto),
                QueryRequest::new(v, 1, 2, Algorithm::Peel),
            ]
        })
        .collect();
    let mut ws = QueryWorkspace::new();
    let mut expected: HashMap<QueryRequest, [CommunitySummary; 2]> = HashMap::new();
    for req in &keys {
        let mut on = |search: &Arc<CommunitySearch>| {
            let sub = search.significant_community_in(
                req.q,
                req.alpha as usize,
                req.beta as usize,
                req.algo,
                &mut ws,
            );
            CommunitySummary::from_subgraph(&sub)
        };
        expected.insert(*req, [on(&search_a), on(&search_b)]);
    }
    assert!(
        expected.values().any(|[a, b]| a != b),
        "graphs must disagree somewhere or epoch mixing is undetectable"
    );

    let engine = QueryEngine::start(
        search_a.clone(),
        ServiceConfig {
            min_sub_batch: 1,
            ..config(true)
        },
    );
    settle();
    const INSTALLS: u64 = 12;
    std::thread::scope(|scope| {
        let engine = &engine;
        let keys = &keys;
        let expected = &expected;
        for c in 0..3u64 {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + c);
                for _ in 0..25 {
                    let batch: Vec<QueryRequest> = (0..48)
                        .map(|_| keys[rng.gen_range(0..keys.len())])
                        .collect();
                    for resp in engine.query_batch(&batch) {
                        let want = &expected[&resp.request][(resp.epoch % 2) as usize];
                        assert_eq!(
                            resp.summary, *want,
                            "epoch {} answer for {:?} does not match that epoch's graph \
                             (cached={} coalesced={})",
                            resp.epoch, resp.request, resp.cached, resp.coalesced
                        );
                    }
                }
            });
        }
        scope.spawn(move || {
            for i in 0..INSTALLS {
                std::thread::sleep(std::time::Duration::from_millis(7));
                let next = if i % 2 == 0 {
                    search_b.clone()
                } else {
                    search_a.clone()
                };
                engine.install(next);
            }
        });
    });

    let st = engine.stats();
    assert_eq!(st.epoch, INSTALLS, "installer must have finished");
    assert!(st.splits > 0, "split path never engaged under installs");
    assert_eq!(
        st.cache.hits + st.cache.misses,
        st.completed,
        "per-request lookup accounting broke under installs"
    );
    assert_eq!(
        engine.inflight_len(),
        0,
        "a flight leaked across the epoch swaps"
    );
    engine.shutdown();
}

#[test]
fn arena_recycling_stays_bit_identical_under_concurrent_installs() {
    // The concurrent arena oracle: split batches, per-request racers
    // and ≥ 12 epoch-swap installs over an engine configured so arena
    // slabs recycle constantly (64-edge slabs, 16-entry cache). Every
    // response — whichever worker's arena produced it, however many
    // slab generations turned over beneath the cache — must stay
    // bit-identical to the single-threaded oracle for the epoch that
    // served it, and responses held across the whole run must keep
    // reading their original bytes (generation tags prove their slabs
    // were never recycled while live).
    let mut rng = StdRng::seed_from_u64(41);
    let graph_a = bigraph::generators::random_bipartite(70, 70, 900, &mut rng);
    let mut rng = StdRng::seed_from_u64(42);
    let graph_b = bigraph::generators::random_bipartite(70, 70, 1200, &mut rng);
    let search_a = CommunitySearch::shared(graph_a);
    let search_b = CommunitySearch::shared(graph_b);

    let keys: Vec<QueryRequest> = search_a
        .graph()
        .vertices()
        .step_by(2)
        .flat_map(|v| {
            [
                QueryRequest::new(v, 2, 2, Algorithm::Peel),
                QueryRequest::new(v, 1, 2, Algorithm::Expand),
            ]
        })
        .collect();
    let mut ws = QueryWorkspace::new();
    let mut expected: HashMap<QueryRequest, [CommunitySummary; 2]> = HashMap::new();
    for req in &keys {
        let mut on = |search: &Arc<CommunitySearch>| {
            let sub = search.significant_community_in(
                req.q,
                req.alpha as usize,
                req.beta as usize,
                req.algo,
                &mut ws,
            );
            CommunitySummary::from_subgraph(&sub)
        };
        expected.insert(*req, [on(&search_a), on(&search_b)]);
    }
    assert!(
        expected.values().any(|[a, b]| a != b),
        "graphs must disagree somewhere or epoch mixing is undetectable"
    );

    let engine = QueryEngine::start(
        search_a.clone(),
        ServiceConfig {
            workers: 4,
            cache_capacity: 16,
            cache_shards: 4,
            min_sub_batch: 1,
            split_batches: true,
            arena_slab_edges: 64,
            ..ServiceConfig::default()
        },
    );
    settle();
    const INSTALLS: u64 = 12;
    let mut held: Vec<scs_service::QueryResponse> = Vec::new();
    std::thread::scope(|scope| {
        let engine = &engine;
        let keys = &keys;
        let expected = &expected;
        let mut joins = Vec::new();
        for c in 0..3u64 {
            joins.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(500 + c);
                let mut kept = Vec::new();
                for round in 0..25 {
                    let batch: Vec<QueryRequest> = (0..40)
                        .map(|_| keys[rng.gen_range(0..keys.len())])
                        .collect();
                    let resps = if round % 5 == 4 {
                        // Some per-request traffic races the batches.
                        batch.iter().map(|&r| engine.query(r)).collect()
                    } else {
                        engine.query_batch(&batch)
                    };
                    for (i, resp) in resps.into_iter().enumerate() {
                        let want = &expected[&resp.request][(resp.epoch % 2) as usize];
                        assert_eq!(
                            resp.summary, *want,
                            "epoch {} answer for {:?} does not match that epoch's graph \
                             (cached={} coalesced={})",
                            resp.epoch, resp.request, resp.cached, resp.coalesced
                        );
                        if i % 9 == 0 {
                            kept.push(resp);
                        }
                    }
                }
                kept
            }));
        }
        scope.spawn(move || {
            for i in 0..INSTALLS {
                std::thread::sleep(std::time::Duration::from_millis(7));
                let next = if i % 2 == 0 {
                    search_b.clone()
                } else {
                    search_a.clone()
                };
                engine.install(next);
            }
        });
        for j in joins {
            held.extend(j.join().expect("client panicked"));
        }
    });

    let st = engine.stats();
    assert_eq!(st.epoch, INSTALLS, "installer must have finished");
    assert!(st.splits > 0, "split path never engaged under installs");
    assert!(
        st.arena_recycled > 0,
        "slabs never recycled — the arena was not stressed"
    );
    assert_eq!(engine.inflight_len(), 0, "a flight leaked");

    // Responses held across the whole run — installs, evictions and
    // slab recycles included — still read their original bytes, and
    // their generation tags prove the storage was never reused.
    assert!(!held.is_empty());
    for resp in &held {
        let want = &expected[&resp.request][(resp.epoch % 2) as usize];
        assert_eq!(
            resp.summary, *want,
            "held response for {:?} (epoch {}) corrupted by recycling",
            resp.request, resp.epoch
        );
        if let scs_service::EdgeStore::Arena(handle) = resp.summary.store() {
            assert!(
                handle.pinned(),
                "{:?}: live handle generation {} != slab generation {}",
                resp.request,
                handle.generation(),
                handle.slab_generation()
            );
        }
    }
    engine.shutdown();
}
