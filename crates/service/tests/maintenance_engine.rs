//! Maintenance-under-serving oracle (the paper's dynamic-graph story,
//! §VI): a [`scs::DynamicIndex`] absorbs edge insertions and removals
//! while a live 2-shard [`QueryEngine`] keeps serving; after every
//! maintenance round the maintained snapshot is installed and the
//! engine's answers are compared **bit-identically** against a
//! [`CommunitySearch`] freshly built from scratch on the same graph —
//! the incremental index repair must be indistinguishable from a full
//! rebuild at every epoch, under concurrent query traffic.

use bigraph::generators::random_bipartite;
use bigraph::weights::WeightModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch, DynamicIndex};
use scs_service::{CommunitySummary, QueryEngine, QueryRequest, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn incremental_maintenance_matches_fresh_rebuild_at_every_epoch() {
    let mut rng = StdRng::seed_from_u64(0xD15C0);
    let g0 = random_bipartite(12, 12, 70, &mut rng);
    let g = WeightModel::Uniform { lo: 1.0, hi: 9.0 }.apply(&g0, &mut rng);
    let mut maintained = DynamicIndex::new(g);

    let engine = QueryEngine::start(
        Arc::new(maintained.snapshot()),
        ServiceConfig {
            workers: 4,
            shards: 2,
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
    );

    // Background traffic keeps both shards genuinely live across every
    // install: responses must stay internally consistent (each reply's
    // summary is valid for *some* installed epoch) but are not
    // epoch-pinned, so the thread only checks that nothing wedges or
    // panics.
    let stop = AtomicBool::new(false);
    let background_served = std::thread::scope(|scope| {
        let background = scope.spawn(|| {
            let mut i = 0usize;
            let mut served = 0u64;
            // ordering: Relaxed — a plain stop flag; no data is
            // published through it.
            while !stop.load(Ordering::Relaxed) {
                let q = bigraph::Vertex((i % 24) as u32);
                let resp =
                    engine.query(QueryRequest::new(q, 1 + i % 2, 1 + i % 3, Algorithm::Auto));
                // Sanity that can't depend on the racing epoch: an
                // empty result has no minimum weight, a non-empty one
                // always does.
                assert_eq!(resp.summary.min_weight.is_some(), resp.summary.size() > 0);
                served += 1;
                i += 1;
            }
            served
        });

        let mut last_epoch = 0u64;
        for round in 0..6 {
            // A seeded burst of mutations per round: removals of
            // existing edges and insertions of currently-absent pairs,
            // interleaved.
            for step in 0..3 {
                let g = maintained.graph();
                let (n_upper, n_lower) = (g.n_upper(), g.n_lower());
                if (round + step) % 2 == 0 && g.n_edges() > 20 {
                    // Remove a random existing edge.
                    let eid = bigraph::EdgeId(rng.gen_range(0..g.n_edges()) as u32);
                    let (u, l) = g.endpoints(eid);
                    let (ui, li) = (g.local_index(u), g.local_index(l));
                    maintained
                        .remove_edge(ui, li)
                        .expect("endpoints taken from a live edge");
                } else {
                    // Insert a random absent pair (retry a few times;
                    // the graph is sparse so absent pairs dominate).
                    for _ in 0..50 {
                        let ui = rng.gen_range(0..n_upper);
                        let li = rng.gen_range(0..n_lower);
                        let w = rng.gen_range(1.0..9.0);
                        if maintained.insert_edge(ui, li, w).is_ok() {
                            break;
                        }
                    }
                }
            }

            // Epoch swap: snapshot the maintained pair (a clone, not a
            // rebuild) and install it into the serving engine.
            let epoch = engine.install(Arc::new(maintained.snapshot()));
            assert!(epoch > last_epoch, "install must advance the epoch");
            last_epoch = epoch;

            // Oracle: a CommunitySearch built *from scratch* on the
            // same graph — full DeltaIndex rebuild, no incremental
            // repair.
            let fresh = CommunitySearch::new(maintained.graph().clone());
            for qi in 0..maintained.graph().n_upper() {
                let q = maintained.graph().upper(qi);
                for (alpha, beta) in [(1, 1), (1, 2), (2, 2), (2, 3)] {
                    for algo in [Algorithm::Peel, Algorithm::Expand] {
                        let resp = engine.query(QueryRequest::new(q, alpha, beta, algo));
                        assert_eq!(resp.epoch, epoch, "round {round}: reply from a stale epoch");
                        let expect = CommunitySummary::from_subgraph(
                            &fresh.significant_community(q, alpha, beta, algo),
                        );
                        // Bit-identical: same edge ids, same member
                        // counts, same minimum weight.
                        assert_eq!(
                            resp.summary, expect,
                            "round {round}, q=u:{qi}, (α,β)=({alpha},{beta}), {algo:?}: \
                             incrementally maintained index diverged from fresh rebuild"
                        );
                    }
                }
            }
        }

        // ordering: Relaxed — see the load in the background thread.
        stop.store(true, Ordering::Relaxed);
        background.join().expect("background client must not panic")
    });
    assert!(background_served > 0, "background traffic never ran");
    engine.shutdown();
}
