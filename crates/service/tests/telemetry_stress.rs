//! Concurrent-recording stress for the telemetry plane.
//!
//! Two layers:
//!
//! * [`Telemetry`] in isolation, hammered from many threads — after the
//!   dust settles every histogram must be internally consistent
//!   (`count == Σ buckets`, sum and max match what was recorded).
//! * A live [`QueryEngine`] under mixed per-request / batch load from
//!   several client threads — the per-algorithm totals must reconcile
//!   with the engine's own `completed` counter, and for every request
//!   retained in the slow-query ring the per-stage sums must reconcile
//!   with its end-to-end latency: the stages tile the request on the
//!   per-request path (`queue + snapshot + cache + kernel + publish +
//!   reply ≈ total`) and are disjoint sub-windows of it on the batch
//!   path (`Σ stages ≤ total`).

use bigraph::builder::figure2_example;
use scs::{Algorithm, CommunitySearch};
use scs_service::telemetry::{StageSet, Telemetry};
use scs_service::{Provenance, QueryEngine, QueryRequest, ServiceConfig, Stage, N_STAGES};

/// Truncation slack: each stage is truncated to whole µs when recorded
/// (and the total once more), so a fully tiled request may reconcile
/// up to ~1µs short per stage.
const SLACK_US: u64 = N_STAGES as u64 + 2;

#[test]
fn concurrent_recording_keeps_histograms_consistent() {
    let telem = Telemetry::new(8);
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let telem = &telem;
            scope.spawn(move || {
                let req = QueryRequest::new(
                    bigraph::Vertex(t as u32),
                    2,
                    2,
                    Algorithm::ALL[(t % Algorithm::ALL.len() as u64) as usize],
                );
                let mut stages = StageSet::new();
                for i in 0..PER_THREAD {
                    // Deterministic spread across buckets, with the
                    // kernel dominating like a real request.
                    let kernel = 1 + (t * PER_THREAD + i) % 4096;
                    stages
                        .set(Stage::QueueWait, i % 7)
                        .set(Stage::CacheLookup, 1)
                        .set(Stage::Kernel, kernel);
                    telem.record(&stages.trace(
                        &req,
                        0,
                        false,
                        false,
                        Provenance::Single,
                        i % 7 + 1 + kernel,
                    ));
                }
            });
        }
    });
    let snap = telem.snapshot();
    let mut total_count = 0u64;
    for algo_hist in &snap.total {
        let bucket_sum: u64 = (0..scs_service::HistSnapshot::N_BUCKETS)
            .map(|i| algo_hist.bucket_count(i))
            .sum();
        assert_eq!(
            algo_hist.count(),
            bucket_sum,
            "count must equal the sum of bucket counts"
        );
        total_count += algo_hist.count();
    }
    assert_eq!(total_count, THREADS * PER_THREAD, "no record may be lost");
    for algo_stages in &snap.stage {
        for hist in algo_stages {
            let bucket_sum: u64 = (0..scs_service::HistSnapshot::N_BUCKETS)
                .map(|i| hist.bucket_count(i))
                .sum();
            assert_eq!(hist.count(), bucket_sum);
        }
    }
    // Every record touched the same three stages.
    for algo_stages in &snap.stage {
        let kernels = algo_stages[Stage::Kernel as usize].count();
        assert_eq!(algo_stages[Stage::QueueWait as usize].count(), kernels);
        assert_eq!(algo_stages[Stage::CacheLookup as usize].count(), kernels);
        assert_eq!(algo_stages[Stage::Snapshot as usize].count(), 0);
    }
}

#[test]
fn engine_under_load_reconciles_stages_with_totals() {
    let engine = QueryEngine::start(
        CommunitySearch::shared(figure2_example()),
        ServiceConfig {
            workers: 4,
            cache_capacity: 64,
            cache_shards: 4,
            min_sub_batch: 1,
            // Retain plenty so the ring holds single and batch traces.
            slow_ring_capacity: 64,
            ..ServiceConfig::default()
        },
    );
    let g = engine.current_index().0.graph().clone();
    std::thread::scope(|scope| {
        let engine = &engine;
        let g = &g;
        for c in 0..4usize {
            scope.spawn(move || {
                let algo = Algorithm::ALL[c % Algorithm::ALL.len()];
                for round in 0..8 {
                    // Per-request traffic (hits, leaders, followers)…
                    for i in 0..g.n_upper() {
                        engine.query(QueryRequest::new(g.upper(i), 2, 2, algo));
                    }
                    // …and batches with in-batch duplicates (split and
                    // unsplit paths, depending on idle workers).
                    let mut reqs: Vec<QueryRequest> = (0..g.n_upper())
                        .map(|i| QueryRequest::new(g.upper(i), 1 + (round % 2), 2, algo))
                        .collect();
                    reqs.push(reqs[0]);
                    engine.query_batch(&reqs);
                }
            });
        }
    });

    let stats = engine.stats();
    let algo_total: u64 = stats.algos.iter().map(|a| a.total.count).sum();
    assert_eq!(
        algo_total, stats.completed,
        "every completed request must be recorded exactly once"
    );
    // Every request waits in the queue; the queue-wait stage must have
    // seen them all.
    assert_eq!(stats.stages[Stage::QueueWait as usize].count, algo_total);

    // Per-request reconciliation on what the ring retained — the ring
    // keeps the worst requests with their full breakdown, so these are
    // real recorded requests, not aggregates.
    let slow = stats.slow;
    assert!(!slow.is_empty(), "load this size must retain slow queries");
    for sq in &slow {
        let stage_sum: u64 = sq.stages_us.iter().sum();
        assert!(
            stage_sum <= sq.total_us + SLACK_US,
            "stages exceed the request: {sq}"
        );
        if sq.provenance == Provenance::Single {
            // The per-request path tiles the whole interval.
            assert!(
                stage_sum + SLACK_US >= sq.total_us,
                "single-path stages must tile the request: {stage_sum}µs \
                 attributed of {}µs total ({sq})",
                sq.total_us
            );
        }
    }
    engine.shutdown();
}
