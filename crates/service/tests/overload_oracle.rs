//! Overload oracle for the network front end (`scs_service::Server`).
//!
//! Drives the server well past its admission budget — more concurrent
//! socket clients than `pending_budget` admits, i.e. a sustained ~4×
//! multiple of what the budget lets through at once — and checks the
//! graceful-overload contract:
//!
//! * requests over budget are shed **promptly** with `429` carrying a
//!   `Retry-After` header and a `retry_after_ms` JSON field;
//! * admitted requests keep **bounded** latency (the budget caps what
//!   can queue, the deadline batcher caps how long a bucket waits);
//! * every request gets exactly one reply — none lost, none
//!   duplicated;
//! * at quiescence the admission ledger reconciles exactly:
//!   `admitted == served + shed_after_admit`;
//! * concurrent single-request socket clients still reach the engine's
//!   batch path (`ServiceStats::batches > 0`).

use bigraph::builder::figure2_example;
use scs::CommunitySearch;
use scs_service::{QueryEngine, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One keep-alive GET; returns (status, headers, body).
fn get(stream: &mut TcpStream, target: &str) -> (u16, Vec<String>, String) {
    write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
        headers.push(line);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8_lossy(&body).into_owned())
}

#[test]
fn overload_sheds_promptly_serves_boundedly_and_reconciles() {
    // A tiny pending budget and a real batching deadline: with 12
    // clients in lockstep (each waits for its reply before sending the
    // next), up to 12 requests race for 3 admission slots — a
    // sustained ~4× of what the budget admits — so shedding is
    // guaranteed, while admitted requests wait at most the deadline
    // plus service time.
    const CLIENTS: usize = 12;
    const PER_CLIENT: usize = 25;
    let config = ServiceConfig {
        workers: 2,
        shards: 2,
        pending_budget: 3,
        batch_deadline_ms: 10,
        batch_max: 64,
        socket_timeout_ms: 10_000,
        ..ServiceConfig::default()
    };
    let engine = QueryEngine::start(CommunitySearch::shared(figure2_example()), config.clone());
    let server = Server::start(engine, "127.0.0.1:0", &config).expect("bind loopback");
    let addr = server.local_addr();
    let n_upper = figure2_example().n_upper();

    struct ClientReport {
        ok: u64,
        shed: u64,
        replies: u64,
        max_ok_us: u64,
    }
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut r = ClientReport {
                        ok: 0,
                        shed: 0,
                        replies: 0,
                        max_ok_us: 0,
                    };
                    for i in 0..PER_CLIENT {
                        // A few distinct (α, β) shapes so the batcher
                        // exercises multiple buckets; all answerable.
                        let q = figure2_example().upper((c + i) % n_upper).0;
                        let beta = 1 + (i % 2);
                        let t = Instant::now();
                        let (status, headers, body) =
                            get(&mut stream, &format!("/query?q={q}&alpha=1&beta={beta}"));
                        let us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
                        r.replies += 1;
                        match status {
                            200 => {
                                r.ok += 1;
                                r.max_ok_us = r.max_ok_us.max(us);
                            }
                            429 => {
                                r.shed += 1;
                                // Shedding is graceful: a machine-usable
                                // hint in both header and body.
                                assert!(
                                    headers.iter().any(|h| h.starts_with("Retry-After:")),
                                    "429 without Retry-After: {headers:?}"
                                );
                                assert!(body.contains("retry_after_ms"), "{body}");
                                // Shedding is prompt: a 429 never waits
                                // out the batch deadline, let alone the
                                // queue. 2s is orders of magnitude of
                                // slack for a loaded CI machine.
                                assert!(us < 2_000_000, "429 took {us}µs — not prompt");
                            }
                            other => panic!("unexpected status {other}: {body}"),
                        }
                    }
                    r
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let sent = (CLIENTS * PER_CLIENT) as u64;
    let replies: u64 = reports.iter().map(|r| r.replies).sum();
    let ok: u64 = reports.iter().map(|r| r.ok).sum();
    let shed: u64 = reports.iter().map(|r| r.shed).sum();
    // No reply lost, none duplicated: request/reply lockstep per
    // connection, and the totals cover every request exactly once
    // (anything that was neither 200 nor 429 panicked its client).
    assert_eq!(replies, sent);
    assert_eq!(ok + shed, sent);
    // Overload actually happened, and yet requests kept being served.
    assert!(shed > 0, "12 clients over a budget of 3 must shed");
    assert!(ok > 0, "admission must keep serving under overload");
    // Bounded latency for admitted requests: budget (3) × deadline
    // (10ms) × service time leaves the worst admitted request far
    // under 5s even on a heavily loaded CI machine.
    let worst_ok = reports.iter().map(|r| r.max_ok_us).max().unwrap_or(0);
    assert!(
        worst_ok < 5_000_000,
        "admitted request took {worst_ok}µs — latency not bounded"
    );

    // Single-request socket clients still reached the engine's batch
    // path through the deadline batcher.
    let stats = server.stats();
    assert!(stats.batches > 0, "no engine batches formed: {stats:?}");
    assert!(
        stats.admission.deadline_flushes + stats.admission.size_flushes > 0,
        "no batcher flush recorded: {:?}",
        stats.admission
    );

    // Quiescent reconciliation: every admitted request resolved
    // exactly once.
    let fin = server.stop();
    assert_eq!(
        fin.admitted,
        fin.served + fin.shed_after_admit,
        "admission ledger must reconcile: {fin:?}"
    );
    assert_eq!(fin.served, ok, "server-side served == client-side 200s");
    assert_eq!(fin.shed + fin.quota_rejected, shed);
}
