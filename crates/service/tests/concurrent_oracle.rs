//! Integration test: the concurrent engine is indistinguishable from a
//! direct single-threaded `CommunitySearch::significant_community` call.
//!
//! A ≥1000-query workload with repeats is replayed from several client
//! threads against a ≥4-worker engine; every response — cached, computed
//! or coalesced — must be byte-identical (same edge set, same min
//! weight) to the oracle's answer for that request.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::{Algorithm, CommunitySearch, DynamicIndex, QueryWorkspace};
use scs_service::{
    build_workload, replay, CommunitySummary, QueryEngine, QueryRequest, ServiceConfig,
    WorkloadSpec,
};
use std::sync::Arc;

/// The single-threaded reference. It reuses one workspace across its
/// whole run — the same reuse discipline as the engine's workers — so
/// the oracle comparison also cross-checks warm-workspace results
/// against whatever path the engine took.
fn oracle(
    search: &CommunitySearch,
    req: &QueryRequest,
    ws: &mut QueryWorkspace,
) -> CommunitySummary {
    let sub =
        search.significant_community_in(req.q, req.alpha as usize, req.beta as usize, req.algo, ws);
    CommunitySummary::from_subgraph(&sub)
}

#[test]
fn thousand_concurrent_queries_match_single_threaded_oracle() {
    let mut rng = StdRng::seed_from_u64(20210414);
    let graph = bigraph::generators::random_bipartite(120, 120, 1800, &mut rng);
    let search = CommunitySearch::shared(graph);

    let spec = WorkloadSpec {
        n_queries: 1200,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        zipf: 0.0,
        seed: 7,
    };
    let workload = build_workload(&search, &spec);
    assert_eq!(workload.len(), 1200, "core must be populated at (2,2)");

    let engine = QueryEngine::start(
        search.clone(),
        ServiceConfig {
            workers: 4,
            cache_capacity: 512,
            cache_shards: 8,
            ..ServiceConfig::default()
        },
    );
    let (report, responses) = replay(&engine, &workload, 8);

    assert_eq!(responses.len(), workload.len());
    let mut ws = QueryWorkspace::new();
    for (i, (req, resp)) in workload.iter().zip(&responses).enumerate() {
        assert_eq!(resp.request, *req);
        let expect = oracle(&search, req, &mut ws);
        assert_eq!(
            resp.summary, expect,
            "response {i} diverged from the oracle (cached={}, coalesced={})",
            resp.cached, resp.coalesced
        );
    }

    // The repeats must have produced real cache traffic.
    assert!(
        report.stats.cache.hits > 0,
        "expected cache hits, got {:?}",
        report.stats.cache
    );
    // The workers' reusable workspaces must be resident and doing work.
    assert!(report.stats.scratch_bytes > 0, "no scratch resident");
    assert!(report.stats.allocs_avoided > 0, "workspaces never reused");
    assert!(report.stats.cache.hit_rate() > 0.0);
    assert_eq!(report.stats.completed, 1200);
    assert!(
        responses.iter().any(|r| r.cached),
        "cached path unexercised"
    );
    assert!(
        responses.iter().any(|r| !r.cached),
        "compute path unexercised"
    );

    engine.shutdown();
}

#[test]
fn mixed_algorithms_and_parameters_match_oracle() {
    let mut rng = StdRng::seed_from_u64(99);
    let graph = bigraph::generators::random_bipartite(40, 40, 420, &mut rng);
    let search = CommunitySearch::shared(graph);

    // A grid workload: every vertex × a few (α,β) × every algorithm.
    let mut workload = Vec::new();
    for v in search.graph().vertices().step_by(3) {
        for (a, b) in [(1, 1), (2, 2), (1, 3)] {
            for algo in [Algorithm::Peel, Algorithm::Expand, Algorithm::Binary] {
                workload.push(QueryRequest::new(v, a, b, algo));
            }
        }
    }
    // Duplicate the whole batch so the second half races the first and
    // exercises coalescing/caching on every key.
    let doubled: Vec<_> = workload.iter().chain(&workload).copied().collect();

    let engine = QueryEngine::start(
        search.clone(),
        ServiceConfig {
            workers: 6,
            cache_capacity: 4096,
            cache_shards: 8,
            ..ServiceConfig::default()
        },
    );
    let (_, responses) = replay(&engine, &doubled, 6);
    let mut ws = QueryWorkspace::new();
    for (req, resp) in doubled.iter().zip(&responses) {
        assert_eq!(resp.summary, oracle(&search, req, &mut ws), "req {req:?}");
    }
    engine.shutdown();
}

#[test]
fn epoch_swap_serves_updated_index_without_restart() {
    let mut rng = StdRng::seed_from_u64(5);
    let graph = bigraph::generators::random_bipartite(25, 25, 160, &mut rng);
    let mut dynidx = DynamicIndex::new(graph.clone());
    let engine = QueryEngine::start(
        CommunitySearch::shared(graph),
        ServiceConfig {
            workers: 4,
            cache_capacity: 256,
            cache_shards: 4,
            ..ServiceConfig::default()
        },
    );

    // Mutate the graph through the dynamic index: add a few edges that
    // don't exist yet.
    let mut added = 0;
    'outer: for u in 0..25 {
        for l in 0..25 {
            if dynidx.insert_edge(u, l, 3.0).is_ok() {
                added += 1;
                if added == 10 {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(added, 10);

    // Install the maintained snapshot; the engine must now answer like a
    // fresh single-threaded search over the updated graph.
    let updated = Arc::new(dynidx.snapshot());
    let epoch = engine.install(updated.clone());
    assert_eq!(epoch, 1);

    let mut ws = QueryWorkspace::new();
    for v in updated.graph().vertices().step_by(5) {
        let req = QueryRequest::new(v, 2, 2, Algorithm::Auto);
        let resp = engine.query(req);
        assert_eq!(resp.epoch, 1);
        assert_eq!(resp.summary, oracle(&updated, &req, &mut ws));
    }
    engine.shutdown();
}
