//! Deadline batching and admission bookkeeping for the network front
//! end (`scs serve`, [`crate::server`]).
//!
//! The engine's batch path ([`crate::QueryEngine::submit_batch`]) pays
//! its per-request overheads once per batch: one queue job, one index
//! snapshot, one cache pass, one batched kernel call per algorithm
//! run. A network server can only cash that in if it *forms* batches —
//! socket clients arrive one request at a time. The
//! [`DeadlineBuckets`] here are the SLO-aware accumulator that does
//! it: requests land in a bucket per compatible shape
//! `(α, β, algorithm)`, and a bucket flushes into `submit_batch` when
//! it reaches `batch_max` (size flush) or when its deadline expires
//! (deadline flush). The deadline is the latency the operator is
//! willing to spend buying throughput; `0` degenerates to
//! one-request-per-batch pass-through.
//!
//! Per-tenant [`TokenBucket`] quotas and the [`TenantQuotas`] table
//! live here too — they are pure-state admission machinery the server
//! consults before a request may occupy pending-budget, and keeping
//! them free of sockets makes both sides unit-testable.
//!
//! Everything in this module is single-threaded state driven by the
//! server's batcher thread (or a test); time is always passed in as
//! [`Instant`] so tests control the clock.

use crate::QueryRequest;
use scs::Algorithm;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The compatible-request shape a bucket accumulates: requests that
/// share degree constraints and algorithm batch well (one algorithm
/// run, one batched kernel call; duplicate keys dedup in the engine).
pub type BucketKey = (u32, u32, Algorithm);

/// Why a bucket was flushed — the server's counters split on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The bucket reached `batch_max`.
    Size,
    /// The bucket's deadline expired.
    Deadline,
    /// The batcher is shutting down and draining.
    Drain,
}

/// One flushed accumulation bucket: the requests in arrival order plus
/// the caller-supplied tags (the server threads' reply routes) and the
/// flush cause.
#[derive(Debug)]
pub struct Flush<T> {
    /// `(request, tag)` pairs in arrival order.
    pub items: Vec<(QueryRequest, T)>,
    /// What triggered the flush.
    pub cause: FlushCause,
    /// When the oldest member of the bucket was admitted — the server
    /// derives its queue-wait sample (admit → flush) from this.
    pub opened_at: Instant,
}

struct Bucket<T> {
    key: BucketKey,
    /// When the oldest member arrived.
    opened_at: Instant,
    /// Absolute flush deadline: `opened_at + batch_deadline`, tightened
    /// by any member's own `deadline_ms`.
    deadline: Instant,
    items: Vec<(QueryRequest, T)>,
}

/// Per-(α, β, algorithm) accumulation buckets with size- and
/// deadline-triggered flushing. Single-threaded; the owner supplies
/// `now` everywhere, so tests are deterministic and the server thread
/// reads the clock once per wakeup.
///
/// The bucket set is a linear-scan `Vec`: live buckets number at most
/// the distinct request shapes seen within one deadline window —
/// a handful — and a scan beats hashing at that size.
pub struct DeadlineBuckets<T> {
    batch_max: usize,
    batch_deadline: Duration,
    buckets: Vec<Bucket<T>>,
}

impl<T> DeadlineBuckets<T> {
    /// `batch_max` is clamped to ≥ 1; a zero `batch_deadline` flushes
    /// every request immediately (batching off).
    pub fn new(batch_max: usize, batch_deadline: Duration) -> Self {
        DeadlineBuckets {
            batch_max: batch_max.max(1),
            batch_deadline,
            buckets: Vec::new(),
        }
    }

    /// Requests currently accumulated across all buckets.
    pub fn pending(&self) -> usize {
        self.buckets.iter().map(|b| b.items.len()).sum()
    }

    /// Admits one request into its shape bucket. `deadline_override`
    /// (the request's own `deadline_ms`, if any) tightens — never
    /// loosens — the bucket's flush deadline. Returns the bucket as a
    /// size flush the moment it reaches `batch_max`.
    pub fn push(
        &mut self,
        req: QueryRequest,
        tag: T,
        now: Instant,
        deadline_override: Option<Duration>,
    ) -> Option<Flush<T>> {
        let key: BucketKey = (req.alpha, req.beta, req.algo);
        let limit = match deadline_override {
            Some(d) => self.batch_deadline.min(d),
            None => self.batch_deadline,
        };
        let idx = match self.buckets.iter().position(|b| b.key == key) {
            Some(i) => {
                let b = &mut self.buckets[i];
                b.deadline = b.deadline.min(now + limit);
                b.items.push((req, tag));
                i
            }
            None => {
                self.buckets.push(Bucket {
                    key,
                    opened_at: now,
                    deadline: now + limit,
                    items: vec![(req, tag)],
                });
                self.buckets.len() - 1
            }
        };
        if self.buckets[idx].items.len() >= self.batch_max {
            let b = self.buckets.swap_remove(idx);
            return Some(Flush {
                items: b.items,
                cause: FlushCause::Size,
                opened_at: b.opened_at,
            });
        }
        None
    }

    /// The earliest deadline across live buckets — how long the owner
    /// may sleep before calling [`Self::expired`]. `None` when empty.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.buckets.iter().map(|b| b.deadline).min()
    }

    /// Pops one bucket whose deadline is ≤ `now` (call until `None` to
    /// drain everything due).
    pub fn expired(&mut self, now: Instant) -> Option<Flush<T>> {
        let idx = self.buckets.iter().position(|b| b.deadline <= now)?;
        let b = self.buckets.swap_remove(idx);
        Some(Flush {
            items: b.items,
            cause: FlushCause::Deadline,
            opened_at: b.opened_at,
        })
    }

    /// Unconditionally flushes every bucket (server shutdown).
    pub fn drain(&mut self) -> Vec<Flush<T>> {
        self.buckets
            .drain(..)
            .map(|b| Flush {
                items: b.items,
                cause: FlushCause::Drain,
                opened_at: b.opened_at,
            })
            .collect()
    }
}

/// A classic token bucket: `burst` capacity, refilled at `rate`
/// tokens/second, one token per admitted request. Time is supplied by
/// the caller. Token arithmetic is integer nanoseconds of "earned
/// refill" rather than floats, so long-running buckets cannot drift.
#[derive(Debug)]
pub struct TokenBucket {
    rate: u64,
    burst: u64,
    tokens: u64,
    /// Nanoseconds of refill credit below one whole token.
    frac_ns: u128,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket: `burst` tokens available immediately.
    pub fn new(rate: u64, burst: u64, now: Instant) -> Self {
        let burst = burst.max(1);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            frac_ns: 0,
            last: now,
        }
    }

    /// Takes one token if available after refilling up to `now`.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_nanos() + self.frac_ns;
        self.last = now;
        let earned = elapsed * u128::from(self.rate) / 1_000_000_000;
        // Keep the unconverted remainder so sub-token intervals add up.
        self.frac_ns = if self.rate == 0 {
            0
        } else {
            elapsed - earned * 1_000_000_000 / u128::from(self.rate)
        };
        self.tokens = self
            .tokens
            .saturating_add(u64::try_from(earned).unwrap_or(u64::MAX))
            .min(self.burst);
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }
}

/// Tenant → token-bucket table. Bounded: past [`Self::MAX_TENANTS`]
/// distinct tenant names, new tenants share one overflow bucket — an
/// adversarial stream of unique names cannot grow the map without
/// bound (and shares one quota, which is exactly what an abuser
/// deserves).
pub struct TenantQuotas {
    rate: u64,
    burst: u64,
    buckets: HashMap<String, TokenBucket>,
    overflow: Option<TokenBucket>,
}

impl TenantQuotas {
    /// Distinct tenants tracked individually before the overflow
    /// bucket takes over.
    pub const MAX_TENANTS: usize = 10_000;

    /// `rate == 0` disables quotas: every [`Self::admit`] succeeds.
    pub fn new(rate: u64, burst: u64) -> Self {
        TenantQuotas {
            rate,
            burst: burst.max(1),
            buckets: HashMap::new(),
            overflow: None,
        }
    }

    /// Whether `tenant` may spend one quota token at `now`. Requests
    /// without a tenant are exempt (quotas bound tenants, not the
    /// total — the pending budget does that).
    pub fn admit(&mut self, tenant: Option<&str>, now: Instant) -> bool {
        if self.rate == 0 {
            return true;
        }
        let Some(name) = tenant else { return true };
        let (rate, burst) = (self.rate, self.burst);
        let bucket = if self.buckets.len() >= Self::MAX_TENANTS && !self.buckets.contains_key(name)
        {
            self.overflow
                .get_or_insert_with(|| TokenBucket::new(rate, burst, now))
        } else {
            self.buckets
                .entry(name.to_string())
                .or_insert_with(|| TokenBucket::new(rate, burst, now))
        };
        bucket.try_take(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Vertex;

    fn req(q: u32, alpha: u32, beta: u32, algo: Algorithm) -> QueryRequest {
        QueryRequest {
            q: Vertex(q),
            alpha,
            beta,
            algo,
        }
    }

    #[test]
    fn size_flush_fires_at_batch_max_per_shape() {
        let mut b: DeadlineBuckets<usize> = DeadlineBuckets::new(3, Duration::from_millis(10));
        let t0 = Instant::now();
        // Two shapes interleaved: each accumulates independently.
        assert!(b.push(req(1, 2, 2, Algorithm::Peel), 0, t0, None).is_none());
        assert!(b.push(req(2, 1, 1, Algorithm::Auto), 1, t0, None).is_none());
        assert!(b.push(req(3, 2, 2, Algorithm::Peel), 2, t0, None).is_none());
        assert_eq!(b.pending(), 3);
        let flush = b
            .push(req(4, 2, 2, Algorithm::Peel), 3, t0, None)
            .expect("third (2,2,Peel) request must flush by size");
        assert_eq!(flush.cause, FlushCause::Size);
        let qs: Vec<u32> = flush.items.iter().map(|(r, _)| r.q.0).collect();
        assert_eq!(qs, vec![1, 3, 4], "arrival order within the bucket");
        let tags: Vec<usize> = flush.items.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags, vec![0, 2, 3]);
        // The other shape is untouched.
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn deadline_flush_fires_when_due_and_sleep_hint_tracks_it() {
        let mut b: DeadlineBuckets<usize> = DeadlineBuckets::new(100, Duration::from_millis(10));
        let t0 = Instant::now();
        assert!(b.push(req(1, 2, 2, Algorithm::Peel), 0, t0, None).is_none());
        assert_eq!(b.next_deadline(), Some(t0 + Duration::from_millis(10)));
        // Not due yet.
        assert!(b.expired(t0 + Duration::from_millis(9)).is_none());
        let flush = b
            .expired(t0 + Duration::from_millis(10))
            .expect("bucket due at its deadline");
        assert_eq!(flush.cause, FlushCause::Deadline);
        assert_eq!(flush.opened_at, t0);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn per_request_deadline_tightens_the_bucket() {
        let mut b: DeadlineBuckets<usize> = DeadlineBuckets::new(100, Duration::from_millis(10));
        let t0 = Instant::now();
        b.push(req(1, 2, 2, Algorithm::Peel), 0, t0, None);
        // A member with a tighter SLO pulls the whole bucket forward...
        b.push(
            req(2, 2, 2, Algorithm::Peel),
            1,
            t0,
            Some(Duration::from_millis(3)),
        );
        assert_eq!(b.next_deadline(), Some(t0 + Duration::from_millis(3)));
        // ...and a looser one cannot push it back.
        b.push(
            req(3, 2, 2, Algorithm::Peel),
            2,
            t0,
            Some(Duration::from_millis(50)),
        );
        assert_eq!(b.next_deadline(), Some(t0 + Duration::from_millis(3)));
        let flush = b.expired(t0 + Duration::from_millis(3)).unwrap();
        assert_eq!(flush.items.len(), 3);
    }

    #[test]
    fn zero_deadline_passes_requests_through() {
        let mut b: DeadlineBuckets<usize> = DeadlineBuckets::new(100, Duration::ZERO);
        let t0 = Instant::now();
        assert!(b.push(req(1, 2, 2, Algorithm::Peel), 0, t0, None).is_none());
        // Due immediately: the owner's flush loop empties it in the
        // same wakeup, so batching degenerates to pass-through.
        let flush = b.expired(t0).expect("zero deadline is due at once");
        assert_eq!(flush.items.len(), 1);
    }

    #[test]
    fn drain_empties_every_bucket() {
        let mut b: DeadlineBuckets<usize> = DeadlineBuckets::new(100, Duration::from_millis(10));
        let t0 = Instant::now();
        b.push(req(1, 2, 2, Algorithm::Peel), 0, t0, None);
        b.push(req(2, 1, 1, Algorithm::Auto), 1, t0, None);
        let flushes = b.drain();
        assert_eq!(flushes.len(), 2);
        assert!(flushes.iter().all(|f| f.cause == FlushCause::Drain));
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        let t0 = Instant::now();
        let mut tb = TokenBucket::new(10, 3, t0);
        // The burst is immediately spendable, then the bucket is dry.
        assert!(tb.try_take(t0));
        assert!(tb.try_take(t0));
        assert!(tb.try_take(t0));
        assert!(!tb.try_take(t0));
        // 100ms at 10 tokens/s earns exactly one token.
        assert!(tb.try_take(t0 + Duration::from_millis(100)));
        assert!(!tb.try_take(t0 + Duration::from_millis(100)));
        // Sub-token intervals accumulate without float drift: 2 × 50ms
        // = one token.
        assert!(!tb.try_take(t0 + Duration::from_millis(150)));
        assert!(tb.try_take(t0 + Duration::from_millis(200)));
        // A long idle period refills to burst, not beyond.
        let later = t0 + Duration::from_secs(60);
        assert!(tb.try_take(later));
        assert!(tb.try_take(later));
        assert!(tb.try_take(later));
        assert!(!tb.try_take(later));
    }

    #[test]
    fn tenant_quotas_isolate_tenants_and_exempt_the_anonymous() {
        let t0 = Instant::now();
        let mut q = TenantQuotas::new(1, 2);
        // Tenant A spends its burst; tenant B is unaffected.
        assert!(q.admit(Some("a"), t0));
        assert!(q.admit(Some("a"), t0));
        assert!(!q.admit(Some("a"), t0));
        assert!(q.admit(Some("b"), t0));
        // Anonymous requests bypass tenant quotas entirely.
        for _ in 0..10 {
            assert!(q.admit(None, t0));
        }
        // rate == 0 disables quotas.
        let mut off = TenantQuotas::new(0, 1);
        for _ in 0..10 {
            assert!(off.admit(Some("a"), t0));
        }
    }
}
