//! Sharded LRU result cache.
//!
//! The engine keys results by `(q, α, β, algorithm)`. Lock contention is
//! bounded by splitting the key space over a power-of-two number of
//! independently locked shards (keys are assigned by hash), each holding
//! an O(1) intrusive-list LRU. Hit/miss counters are process-wide
//! atomics so [`CacheStats`] needs no locks to read.
//!
//! Values are stored by value and dropped on eviction (or [`clear`], the
//! epoch-swap path) — which is the service's arena-recycling hook: an
//! evicted `QueryResponse` releases its summary's [`bigraph::arena`]
//! slab handle, and once a slab's last handle is gone the owning worker
//! recycles it in place. No explicit eviction callback is needed; the
//! `Drop` is the hook.
//!
//! [`clear`]: ShardedCache::clear

use std::collections::hash_map::{DefaultHasher, Entry as MapEntry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A classic O(1) LRU: hash map into a slab of doubly linked nodes,
/// most-recently-used at the head.
struct LruShard<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.nodes[i].value)
    }

    /// Inserts (or refreshes) `key`; returns `true` iff a resident
    /// entry was evicted to make room (the telemetry eviction counter).
    fn insert(&mut self, key: K, value: V) -> bool {
        match self.map.entry(key.clone()) {
            MapEntry::Occupied(slot) => {
                let i = *slot.get();
                self.nodes[i].value = value;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                false
            }
            MapEntry::Vacant(slot) => {
                let i = if let Some(i) = self.free.pop() {
                    self.nodes[i] = Node {
                        key,
                        value,
                        prev: NIL,
                        next: NIL,
                    };
                    i
                } else {
                    self.nodes.push(Node {
                        key,
                        value,
                        prev: NIL,
                        next: NIL,
                    });
                    self.nodes.len() - 1
                };
                slot.insert(i);
                self.push_front(i);
                if self.map.len() > self.capacity {
                    let victim = self.tail;
                    debug_assert_ne!(victim, NIL);
                    self.unlink(victim);
                    let old_key = self.nodes[victim].key.clone();
                    self.map.remove(&old_key);
                    self.free.push(victim);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Drops everything; returns how many resident entries were dropped
    /// (the telemetry invalidation counter).
    fn clear(&mut self) -> usize {
        let dropped = self.map.len();
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dropped
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries currently resident (across all shards).
    pub entries: usize,
    /// The configured total entry budget: residency (`entries`) never
    /// exceeds it. Per-shard slots are `capacity / shards` (floor), so
    /// up to `capacity % shards` configured slots go unused; in the
    /// degenerate `capacity < shards` case every shard still holds one
    /// entry and the reported capacity is the shard count.
    pub capacity: usize,
    /// Number of shards.
    pub shards: usize,
    /// Resident entries dropped by LRU eviction (capacity pressure in
    /// their shard).
    pub evictions: u64,
    /// Resident entries dropped by [`ShardedCache::clear`] — the
    /// epoch-swap (index install) invalidation path.
    pub invalidated: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`; 0 when the cache is untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent LRU cache sharded by key hash.
///
/// `get` counts a hit or a miss; `insert` evicts the least-recently-used
/// entry of the target shard when that shard is full (so total residency
/// is bounded by `capacity` but per-shard imbalance can evict earlier —
/// the usual sharded-LRU trade-off).
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    mask: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// `capacity` total entries spread over `shards` (rounded up to a
    /// power of two) independently locked shards.
    ///
    /// Each shard gets `capacity / shards` (floor) slots, so total
    /// residency never exceeds the configured capacity — rounding up
    /// used to overstate it (`new(100, 7)` held and reported 104).
    /// Every shard holds at least one entry, so when `capacity` is
    /// smaller than the shard count the effective capacity is the shard
    /// count, and that is what [`Self::stats`] reports.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = (capacity / n).max(1);
        ShardedCache {
            shards: (0..n)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            mask: n - 1,
            capacity: capacity.max(n),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Index of the internal sub-shard `key` lands on.
    ///
    /// Exposed so the engine's router-decorrelation regression test can
    /// observe the cache's key→shard mapping: the engine routes query
    /// vertices with a different mixer family (splitmix64) than the
    /// `DefaultHasher` used here, and the test asserts that keys
    /// uniform over vertices land near-uniform over *both* mappings
    /// jointly.
    pub fn shard_index(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        &self.shards[self.shard_index(key)]
    }

    /// Looks `key` up, refreshing its recency and counting hit/miss.
    // ordering: Relaxed counters throughout this impl — hit/miss/eviction
    // statistics are independent; the shard mutex orders the data.
    pub fn get(&self, key: &K) -> Option<V> {
        let got = self.shard_of(key).lock().unwrap().get(key).cloned();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed, as above
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting within its shard if full
    /// (counted in [`CacheStats::evictions`]).
    // ordering: Relaxed — independent statistic; see `get`.
    pub fn insert(&self, key: K, value: V) {
        if self.shard_of(&key).lock().unwrap().insert(key, value) {
            // contract-ok: warm inserts replace or evict within retained table capacity; growth is cold
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one additional hit that was answered from an
    /// already-performed lookup. The batch path answers duplicate keys
    /// from one physical lookup (or from the leader's freshly inserted
    /// result) but must report per-request traffic — per-request
    /// submission performs one counted lookup per request, and
    /// [`CacheStats`] may not depend on how requests were submitted.
    pub fn record_extra_hit(&self) {
        // ordering: Relaxed — independent statistic; see `get`.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one additional miss; the counterpart of
    /// [`Self::record_extra_hit`] for duplicate keys whose shared
    /// result never made it into the cache (follower flights, or an
    /// install retiring the epoch between compute and insert).
    pub fn record_extra_miss(&self) {
        // ordering: Relaxed — independent statistic; see `get`.
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry (counters are kept — they describe traffic, not
    /// contents). Used on epoch swap; the dropped residents are counted
    /// in [`CacheStats::invalidated`].
    pub fn clear(&self) {
        let mut dropped = 0u64;
        for shard in &self.shards {
            dropped += shard.lock().unwrap().clear() as u64;
        }
        // ordering: Relaxed — independent statistic; see `get`.
        if dropped > 0 {
            self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// `true` iff no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    // ordering: Relaxed loads — counters are advisory; tearing across
    // them is accepted.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
            shards: self.shards.len(),
            evictions: self.evictions.load(Ordering::Relaxed), // ordering: Relaxed, as above
            invalidated: self.invalidated.load(Ordering::Relaxed), // ordering: Relaxed, as above
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s: LruShard<u32, u32> = LruShard::new(2);
        s.insert(1, 10);
        s.insert(2, 20);
        assert_eq!(s.get(&1), Some(&10)); // 1 becomes MRU
        s.insert(3, 30); // evicts 2
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&2), None);
        assert_eq!(s.get(&1), Some(&10));
        assert_eq!(s.get(&3), Some(&30));
    }

    #[test]
    fn lru_refreshes_on_reinsert() {
        let mut s: LruShard<u32, u32> = LruShard::new(2);
        s.insert(1, 10);
        s.insert(2, 20);
        s.insert(1, 11); // refresh value + recency
        s.insert(3, 30); // evicts 2, not 1
        assert_eq!(s.get(&1), Some(&11));
        assert_eq!(s.get(&2), None);
    }

    #[test]
    fn lru_single_slot() {
        let mut s: LruShard<u32, u32> = LruShard::new(1);
        for i in 0..10 {
            s.insert(i, i);
            assert_eq!(s.len(), 1);
            assert_eq!(s.get(&i), Some(&i));
        }
    }

    #[test]
    fn sharded_counters_and_hit_rate() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(64, 4);
        assert_eq!(c.get(&1), None);
        c.insert(1, 100);
        assert_eq!(c.get(&1), Some(100));
        assert_eq!(c.get(&1), Some(100));
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries), (2, 1, 1));
        assert!((st.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 2); // counters survive clear
    }

    #[test]
    fn extra_hit_and_miss_counters() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(64, 4);
        c.insert(1, 100);
        assert_eq!(c.get(&1), Some(100));
        c.record_extra_hit();
        c.record_extra_hit();
        c.record_extra_miss();
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (3, 1));
        // Bookkeeping only: nothing about residency or recency changes.
        assert_eq!(st.entries, 1);
    }

    #[test]
    fn eviction_and_invalidation_counters() {
        // One shard, two slots: inserts beyond capacity evict exactly
        // one resident each, refreshes evict nothing.
        let c: ShardedCache<u64, u64> = ShardedCache::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.stats().evictions, 0);
        c.insert(1, 11); // refresh — no eviction
        assert_eq!(c.stats().evictions, 0);
        c.insert(3, 30); // evicts 2
        c.insert(4, 40); // evicts 1
        let st = c.stats();
        assert_eq!(st.evictions, 2);
        assert_eq!(st.invalidated, 0);
        // clear() counts the dropped residents as invalidations, not
        // evictions.
        c.clear();
        let st = c.stats();
        assert_eq!(st.evictions, 2);
        assert_eq!(st.invalidated, 2);
        assert_eq!(st.entries, 0);
        // Clearing an empty cache invalidates nothing.
        c.clear();
        assert_eq!(c.stats().invalidated, 2);
    }

    #[test]
    fn sharded_capacity_bound_under_churn() {
        // Non-power-of-two shard count and indivisible capacity: the
        // *reported* capacity must itself be the residency bound.
        for (capacity, shards) in [(32usize, 4usize), (100, 7), (33, 8), (5, 4)] {
            let c: ShardedCache<u64, u64> = ShardedCache::new(capacity, shards);
            let bound = c.stats().capacity;
            for i in 0..10_000u64 {
                c.insert(i, i);
            }
            assert!(
                c.len() <= bound,
                "new({capacity}, {shards}): len={} exceeds reported capacity {bound}",
                c.len()
            );
        }
    }

    #[test]
    fn stats_report_configured_capacity() {
        // Regression: capacity was reported as shards × ceil(cap/shards),
        // e.g. new(100, 7) → 8 shards × 13 = 104 instead of 100.
        let c: ShardedCache<u64, u64> = ShardedCache::new(100, 7);
        assert_eq!(c.stats().capacity, 100);
        assert_eq!(
            ShardedCache::<u64, u64>::new(4096, 16).stats().capacity,
            4096
        );
        assert_eq!(ShardedCache::<u64, u64>::new(33, 8).stats().capacity, 33);
        // Degenerate: fewer slots than shards — one entry per shard, and
        // the report says so instead of promising an unreachable bound.
        assert_eq!(ShardedCache::<u64, u64>::new(2, 4).stats().capacity, 4);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(100, 7);
        assert_eq!(c.stats().shards, 8);
    }
}
