//! Service-side metrics: a lock-free latency histogram and the
//! [`ServiceStats`] snapshot the CLI prints.

use crate::cache::CacheStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds for `0 < i < 39`; bucket 0 holds
/// `[0, 2)` (0µs and 1µs together) and the final bucket 39 is
/// open-ended, holding every sample `≥ 2^39`µs.
const BUCKETS: usize = 40;

/// A log-bucketed histogram of latencies in microseconds.
///
/// Recording is a single relaxed `fetch_add`, so worker threads never
/// contend; quantiles are read by scanning the 40 buckets and are exact
/// to within a factor of two (the bucket width), reported at the bucket's
/// geometric midpoint.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Bucket index of a sample: `floor(log2(us))` (0 for both 0µs and
    /// 1µs), clamped into the open-ended top bucket. The clamp must
    /// come *after* the ilog2 decrement — clamping first made bucket
    /// `BUCKETS-1` unreachable and dumped every `us ≥ 2^39` sample one
    /// bucket low.
    fn bucket_of(us: u64) -> usize {
        (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`) in microseconds: the
    /// geometric midpoint of the bucket containing the quantile rank.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64 << (i + 1);
                return ((lo + hi) / 2).min(self.max_us());
            }
        }
        self.max_us()
    }
}

/// A point-in-time snapshot of a running engine, as printed by
/// `scs serve-bench` and the scaling benchmark.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Requests completed since engine start.
    pub completed: u64,
    /// Responses that waited on an identical in-flight computation, or
    /// shared a batch-internal computation whose result never reached
    /// the cache. Duplicate keys of a batch whose leader's result *was*
    /// cached count as the cache hits a per-request resubmission would
    /// have been — see the README's stats-semantics section.
    pub coalesced: u64,
    /// Batch jobs served through [`crate::QueryEngine::submit_batch`].
    pub batches: u64,
    /// Requests that arrived inside a batch job (each still counts in
    /// `completed`).
    pub batched: u64,
    /// Batch jobs whose leader computations were split across the
    /// worker pool (adaptive batch splitting; a batch splits only when
    /// idle capacity and enough leaders exist — see
    /// [`crate::ServiceConfig::min_sub_batch`]).
    pub splits: u64,
    /// Sub-batches carved out of split batch jobs, the splitting
    /// worker's own share included; each is one batched kernel call on
    /// one worker. Chunk boundaries respect per-algorithm runs, so a
    /// many-algorithm batch can carve more sub-batches than the
    /// fan-out width that executes them (which stays capped at the
    /// pool's idle capacity plus the owner).
    pub sub_batches: u64,
    /// Result-cache counters. `cache.capacity` is the configured total
    /// entry budget across all shards — residency never exceeds it (see
    /// [`CacheStats::capacity`]).
    pub cache: CacheStats,
    /// Current index epoch (number of `install` calls).
    pub epoch: u64,
    /// Completed requests per wall-clock second since engine start.
    pub qps: f64,
    /// Mean service latency, µs.
    pub mean_us: f64,
    /// Median service latency, µs — the geometric midpoint of the
    /// log-bucket containing the median sample, so exact to within the
    /// factor-of-two bucket width (likewise for p90/p99).
    pub p50_us: u64,
    /// 90th-percentile service latency, µs.
    pub p90_us: u64,
    /// 99th-percentile service latency, µs.
    pub p99_us: u64,
    /// Worst observed service latency, µs.
    pub max_us: u64,
    /// Resident bytes of the workers' reusable query workspaces —
    /// the memory held to keep the query path's *scratch*
    /// allocation-free.
    pub scratch_bytes: usize,
    /// Resident bytes of the workers' result-arena slabs — the memory
    /// held to keep the *results* allocation-free too. Published before
    /// each reply, like `scratch_bytes`, so a submitter reading stats
    /// right after a blocking query sees the serving worker's arena.
    pub arena_bytes: usize,
    /// Scratch-buffer acquisitions served from resident workspace
    /// memory, counted once per buffer per kernel entry. A query that
    /// passes through several kernels (e.g. retrieval + peel) counts
    /// each kernel's buffer set, so this tracks reuse traffic rather
    /// than a per-query allocation count.
    pub allocs_avoided: u64,
    /// Arena slab recycles across the workers: stores served by
    /// reclaiming a slab whose every result (cache entry, client
    /// response, coalesced copy) had been dropped.
    pub arena_recycled: u64,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "┌─────────────────────┬──────────────┐")?;
        writeln!(f, "│ workers             │ {:>12} │", self.workers)?;
        writeln!(f, "│ completed           │ {:>12} │", self.completed)?;
        writeln!(f, "│ throughput (QPS)    │ {:>12.1} │", self.qps)?;
        writeln!(f, "│ latency mean (µs)   │ {:>12.1} │", self.mean_us)?;
        writeln!(f, "│ latency p50 (µs)    │ {:>12} │", self.p50_us)?;
        writeln!(f, "│ latency p90 (µs)    │ {:>12} │", self.p90_us)?;
        writeln!(f, "│ latency p99 (µs)    │ {:>12} │", self.p99_us)?;
        writeln!(f, "│ latency max (µs)    │ {:>12} │", self.max_us)?;
        writeln!(f, "│ cache hits          │ {:>12} │", self.cache.hits)?;
        writeln!(f, "│ cache misses        │ {:>12} │", self.cache.misses)?;
        writeln!(
            f,
            "│ cache hit rate      │ {:>11.1}% │",
            self.cache.hit_rate() * 100.0
        )?;
        writeln!(f, "│ cache entries       │ {:>12} │", self.cache.entries)?;
        writeln!(f, "│ coalesced queries   │ {:>12} │", self.coalesced)?;
        writeln!(f, "│ batch jobs          │ {:>12} │", self.batches)?;
        writeln!(f, "│ batched requests    │ {:>12} │", self.batched)?;
        writeln!(f, "│ batch splits        │ {:>12} │", self.splits)?;
        writeln!(f, "│ sub-batches         │ {:>12} │", self.sub_batches)?;
        writeln!(f, "│ scratch resident    │ {:>11}B │", self.scratch_bytes)?;
        writeln!(f, "│ arena resident      │ {:>11}B │", self.arena_bytes)?;
        writeln!(f, "│ allocs avoided      │ {:>12} │", self.allocs_avoided)?;
        writeln!(f, "│ arena recycles      │ {:>12} │", self.arena_recycled)?;
        writeln!(f, "│ index epoch         │ {:>12} │", self.epoch)?;
        write!(f, "└─────────────────────┴──────────────┘")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for us in [10u64, 12, 14, 16, 100, 1000, 10_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us(), 10_000);
        let p50 = h.quantile_us(0.5);
        // Median sample is 16 → its bucket [16,32) midpoint is 24.
        assert!((8..=32).contains(&p50), "p50={p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 1000, "p99={p99}");
        assert!(h.quantile_us(1.0) <= 10_000);
        let mean = h.mean_us();
        assert!((mean - 11152.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_top_bucket_is_reachable() {
        // Regression: the clamp used to run before the ilog2 decrement,
        // so every sample ≥ 2^39 landed in bucket 38 alongside
        // [2^38, 2^39) and the final bucket could never fill.
        let h = LatencyHistogram::default();
        h.record((1 << 39) - 1); // top of bucket 38
        h.record(1 << 39); // bottom of bucket 39 (the open-ended top)
                           // The two samples must land in *different* buckets: the p50
                           // rank stays in bucket 38 (midpoint 3·2^37) while the p100 rank
                           // reaches bucket 39, whose huge midpoint is capped by max.
        assert_eq!(h.quantile_us(0.5), 3 << 37);
        assert_eq!(h.quantile_us(1.0), 1 << 39);
        // The bucket index saturates instead of wrapping for any u64;
        // the top bucket's reported midpoint is 3·2^38.
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.quantile_us(1.0), 3 << 38);
    }

    #[test]
    fn histogram_exact_bucket_edges() {
        // bucket_of is floor(log2): 2^k−1 and 2^k straddle an edge.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        for k in 2..39usize {
            assert_eq!(LatencyHistogram::bucket_of((1 << k) - 1), k - 1, "2^{k}-1");
            assert_eq!(LatencyHistogram::bucket_of(1 << k), k, "2^{k}");
        }
        // Everything from 2^39 up shares the open-ended top bucket.
        assert_eq!(LatencyHistogram::bucket_of(1 << 39), BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(1 << 40), BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), 0); // capped by max
    }

    #[test]
    fn stats_table_renders() {
        let s = ServiceStats {
            workers: 4,
            completed: 1000,
            coalesced: 3,
            batches: 12,
            batched: 384,
            splits: 5,
            sub_batches: 17,
            cache: CacheStats {
                hits: 600,
                misses: 400,
                entries: 128,
                capacity: 1024,
                shards: 8,
            },
            epoch: 1,
            qps: 12345.6,
            mean_us: 42.0,
            p50_us: 30,
            p90_us: 80,
            p99_us: 200,
            max_us: 900,
            scratch_bytes: 65536,
            arena_bytes: 262144,
            allocs_avoided: 4321,
            arena_recycled: 9,
        };
        let txt = s.to_string();
        assert!(txt.contains("QPS"));
        assert!(txt.contains("12345.6"));
        assert!(txt.contains("60.0%"));
        assert!(txt.contains("scratch resident"));
        assert!(txt.contains("65536B"));
        assert!(txt.contains("arena resident"));
        assert!(txt.contains("262144B"));
        assert!(txt.contains("arena recycles"));
        assert!(txt.contains("4321"));
        assert!(txt.contains("batch jobs"));
        assert!(txt.contains("384"));
        assert!(txt.contains("batch splits"));
        assert!(txt.contains("sub-batches"));
        assert!(txt.contains("17"));
    }
}
