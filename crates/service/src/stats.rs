//! Service-side metrics: a lock-free latency histogram, raw histogram
//! snapshots (the currency of windowed stats and the metrics exporters),
//! and the [`ServiceStats`] snapshot the CLI prints.

use crate::cache::CacheStats;
use crate::telemetry::{AlgoStats, LatencySummary, SlowQuery, Stage, N_STAGES};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds for `0 < i < 39`; bucket 0 holds
/// `[0, 2)` (0µs and 1µs together) and the final bucket 39 is
/// open-ended, holding every sample `≥ 2^39`µs.
pub(crate) const BUCKETS: usize = 40;

/// A log-bucketed histogram of latencies in microseconds.
///
/// Recording is a single relaxed `fetch_add`, so worker threads never
/// contend; quantiles are read by scanning the 40 buckets, with linear
/// interpolation inside the bucket containing the quantile rank (and
/// capped by the observed maximum), so a bucket holding `c` samples
/// reports `c` evenly spaced values instead of one midpoint.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Bucket index of a sample: `floor(log2(us))` (0 for both 0µs and
    /// 1µs), clamped into the open-ended top bucket. The clamp must
    /// come *after* the ilog2 decrement — clamping first made bucket
    /// `BUCKETS-1` unreachable and dumped every `us ≥ 2^39` sample one
    /// bucket low.
    fn bucket_of(us: u64) -> usize {
        (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(BUCKETS - 1)
    }

    /// Records one sample.
    // ordering: Relaxed throughout — each counter is an independent
    // statistic; nothing synchronizes on histogram contents.
    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    // ordering: Relaxed — monotone statistic, no pairing.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, µs. Together with [`Self::count`]
    /// this is the two-load mean the split-sizing feedback reads on the
    /// batch path — cheaper than a full [`Self::snapshot`].
    // ordering: Relaxed — monotone statistic, no pairing.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        self.snapshot().mean_us()
    }

    /// Largest recorded sample.
    // ordering: Relaxed — monotone statistic, no pairing.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`) in microseconds — see
    /// [`HistSnapshot::quantile_us`].
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.snapshot().quantile_us(q)
    }

    /// A point-in-time copy of every counter, the input of windowed
    /// deltas and the metrics exporters. Loads are relaxed: a snapshot
    /// taken while workers record is internally consistent to within
    /// the records in flight at that instant.
    // ordering: Relaxed loads — tearing across counters is accepted;
    // a snapshot is consistent to within the records in flight.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            // contract-ok: `array::from_fn` hands out i < BUCKETS only.
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed), // ordering: Relaxed, as above
            max_us: self.max_us.load(Ordering::Relaxed), // ordering: Relaxed, as above
        }
    }
}

/// A plain-value copy of a [`LatencyHistogram`]: subtractable (windowed
/// stats), mergeable (aggregating algorithms into one stage row) and
/// walkable bucket by bucket (the Prometheus exposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl HistSnapshot {
    /// Number of buckets every snapshot carries.
    pub const N_BUCKETS: usize = BUCKETS;

    /// The all-zero snapshot (identity of [`Self::merge`]).
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Mean sample, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest sample the snapshot can vouch for. For a windowed delta
    /// this is an upper bound (see [`Self::delta`]), not necessarily a
    /// sample inside the window.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Samples in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Exclusive upper edge of bucket `i` in µs, `None` for the
    /// open-ended top bucket (`+Inf` in Prometheus terms).
    pub fn bucket_upper_edge(i: usize) -> Option<u64> {
        if i + 1 >= BUCKETS {
            None
        } else {
            Some(1u64 << (i + 1))
        }
    }

    /// `self − prev`, the histogram of samples recorded between the two
    /// snapshots (`prev` taken earlier from the same histogram).
    /// Bucket counts and sums subtract exactly; the maximum is not
    /// recoverable from counters alone, so the delta reports the
    /// tightest available upper bound: the cumulative max clamped to
    /// the highest bucket the window actually touched.
    pub fn delta(&self, prev: &HistSnapshot) -> HistSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].saturating_sub(prev.buckets[i]));
        let mut max_us = 0;
        for (i, &c) in buckets.iter().enumerate() {
            if c > 0 {
                max_us = Self::bucket_upper_edge(i)
                    .map_or(self.max_us, |hi| self.max_us.min(hi.saturating_sub(1)));
            }
        }
        HistSnapshot {
            buckets,
            count: self.count.saturating_sub(prev.count),
            sum_us: self.sum_us.saturating_sub(prev.sum_us),
            max_us,
        }
    }

    /// True when `self` cannot be a later snapshot of the same
    /// histogram as `baseline`: some bucket, the count or the sum went
    /// backwards. Cumulative histogram counters are monotone, so a
    /// regression proves the baseline belongs to different (replaced or
    /// reset) storage — e.g. a telemetry plane recreated mid-window.
    /// [`Self::delta`] saturates per field, which silently yields a
    /// `count` that disagrees with `Σ buckets` in that case (quantiles
    /// then read the wrong bucket); windowed readers must detect the
    /// regression with this and resnapshot instead.
    pub fn regressed_from(&self, baseline: &HistSnapshot) -> bool {
        if self.count < baseline.count || self.sum_us < baseline.sum_us {
            return true;
        }
        self.buckets
            .iter()
            .zip(baseline.buckets.iter())
            .any(|(now, base)| now < base)
    }

    /// Bucket-wise sum of two snapshots (aggregating per-algorithm
    /// histograms into one per-stage row).
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum_us: self.sum_us + other.sum_us,
            max_us: self.max_us.max(other.max_us),
        }
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`) in microseconds: linear
    /// interpolation inside the bucket containing the quantile rank —
    /// the `r`-th of a bucket's `c` samples reports
    /// `lo + ((r − 0.5) / c) · (hi − lo)` — capped by the observed
    /// maximum. A bucket holding a single sample therefore reports its
    /// arithmetic midpoint, the pre-interpolation behaviour.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= rank && c > 0 {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64 << (i + 1);
                let frac = ((rank - seen) as f64 - 0.5) / c as f64;
                let v = (lo as f64 + frac * (hi - lo) as f64) as u64;
                return v.min(self.max_us);
            }
            seen += c;
        }
        self.max_us
    }

    /// The five-number summary derived from this snapshot.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.mean_us(),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            max_us: if self.count == 0 { 0 } else { self.max_us },
        }
    }
}

/// One engine shard's slice of the totals, as reported in
/// [`ServiceStats::per_shard`]. The aggregate fields of `ServiceStats`
/// keep their unsharded meaning (sums, or merged histograms, over every
/// shard); these rows are where imbalance — a hot key concentrating on
/// one shard, a shard with a colder cache — becomes visible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard index (the router's output for this shard's keys).
    pub shard: usize,
    /// Worker threads owned by this shard.
    pub workers: usize,
    /// Requests this shard completed.
    pub completed: u64,
    /// Requests that coalesced onto an in-flight computation here.
    pub coalesced: u64,
    /// This shard's cache-slice hits.
    pub cache_hits: u64,
    /// This shard's cache-slice misses.
    pub cache_misses: u64,
    /// Batch jobs this shard split across its own pool.
    pub splits: u64,
    /// Median service latency on this shard, µs.
    pub p50_us: u64,
    /// 99th-percentile service latency on this shard, µs.
    pub p99_us: u64,
    /// The sub-batch granularity this shard's split heuristic is
    /// currently using: the configured
    /// [`crate::ServiceConfig::min_sub_batch`] floor, raised once enough
    /// kernel-cost samples exist to size chunks from the observed
    /// per-record kernel time (see the engine's split-sizing feedback).
    pub min_sub_batch_effective: usize,
}

/// Network-front-end admission counters (`scs serve`): how many
/// requests the server admitted, shed or quota-rejected, and how its
/// deadline batcher flushed. All zero for an in-process engine — the
/// engine itself never sheds; [`crate::Server`] injects its live
/// counters into the snapshots it exposes over `/metrics` and `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted past the pending budget and tenant quotas.
    pub admitted: u64,
    /// Admitted requests whose reply was written back to the client.
    /// At quiescence `admitted == served + shed_after_admit`.
    pub served: u64,
    /// Requests shed with `429 Too Many Requests` because the pending
    /// budget was exhausted.
    pub shed: u64,
    /// Requests rejected with `429` by a per-tenant token bucket.
    pub quota_rejected: u64,
    /// Admitted requests whose reply was never delivered — the server
    /// shut down while they were pending, or their socket died before
    /// the response could be written. At quiescence
    /// `admitted == served + shed_after_admit`, where `served` is the
    /// count of replies actually written.
    pub shed_after_admit: u64,
    /// Accumulation buckets flushed into `submit_batch` because their
    /// deadline expired.
    pub deadline_flushes: u64,
    /// Accumulation buckets flushed because they reached `batch_max`.
    pub size_flushes: u64,
}

impl AdmissionStats {
    /// True when every counter is zero (the in-process case — the
    /// stats table hides the admission section then).
    pub fn is_zero(&self) -> bool {
        *self == AdmissionStats::default()
    }
}

/// A point-in-time snapshot of a running engine, as printed by
/// `scs serve-bench` and the scaling benchmark. Produced either
/// cumulatively ([`crate::QueryEngine::stats`], counters since engine
/// start) or as a window ([`crate::QueryEngine::stats_window`], deltas
/// since the previous window call — the steady-state view).
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Requests completed (since engine start, or within the window).
    pub completed: u64,
    /// Responses that waited on an identical in-flight computation, or
    /// shared a batch-internal computation whose result never reached
    /// the cache. Duplicate keys of a batch whose leader's result *was*
    /// cached count as the cache hits a per-request resubmission would
    /// have been — see the README's stats-semantics section.
    pub coalesced: u64,
    /// Batch jobs served through [`crate::QueryEngine::submit_batch`].
    pub batches: u64,
    /// Requests that arrived inside a batch job (each still counts in
    /// `completed`).
    pub batched: u64,
    /// Batch jobs whose leader computations were split across the
    /// worker pool (adaptive batch splitting; a batch splits only when
    /// idle capacity and enough leaders exist — see
    /// [`crate::ServiceConfig::min_sub_batch`]).
    pub splits: u64,
    /// Sub-batches carved out of split batch jobs, the splitting
    /// worker's own share included; each is one batched kernel call on
    /// one worker. Chunk boundaries respect per-algorithm runs, so a
    /// many-algorithm batch can carve more sub-batches than the
    /// fan-out width that executes them (which stays capped at the
    /// pool's idle capacity plus the owner).
    pub sub_batches: u64,
    /// Result-cache counters. `cache.capacity` is the configured total
    /// entry budget across all shards — residency never exceeds it (see
    /// [`CacheStats::capacity`]).
    pub cache: CacheStats,
    /// Current index epoch (number of `install` calls since process
    /// start — point-in-time even in a window).
    pub epoch: u64,
    /// Index installs (within the period). Each install retires the
    /// previous epoch and clears the result cache.
    pub installs: u64,
    /// Leader results whose index epoch was retired by an install
    /// before they could be cached — the computation still answered its
    /// requester and any coalesced followers, but never reached the
    /// cache.
    pub stale_publishes: u64,
    /// Completed requests per wall-clock second over the period.
    pub qps: f64,
    /// Mean service latency, µs.
    pub mean_us: f64,
    /// Median service latency, µs — linearly interpolated inside the
    /// log-bucket containing the median sample and capped by the
    /// observed maximum (likewise for p90/p99).
    pub p50_us: u64,
    /// 90th-percentile service latency, µs.
    pub p90_us: u64,
    /// 99th-percentile service latency, µs.
    pub p99_us: u64,
    /// Worst observed service latency, µs (for a window: an upper
    /// bound — see [`HistSnapshot::delta`]).
    pub max_us: u64,
    /// Resident bytes of the workers' reusable query workspaces —
    /// the memory held to keep the query path's *scratch*
    /// allocation-free.
    pub scratch_bytes: usize,
    /// Resident bytes of the workers' result-arena slabs — the memory
    /// held to keep the *results* allocation-free too. Published before
    /// each reply, like `scratch_bytes`, so a submitter reading stats
    /// right after a blocking query sees the serving worker's arena.
    pub arena_bytes: usize,
    /// Scratch-buffer acquisitions served from resident workspace
    /// memory, counted once per buffer per kernel entry. A query that
    /// passes through several kernels (e.g. retrieval + peel) counts
    /// each kernel's buffer set, so this tracks reuse traffic rather
    /// than a per-query allocation count.
    pub allocs_avoided: u64,
    /// Arena slab recycles across the workers: stores served by
    /// reclaiming a slab whose every result (cache entry, client
    /// response, coalesced copy) had been dropped.
    pub arena_recycled: u64,
    /// Per-stage latency summaries aggregated over every algorithm —
    /// where a request's time goes: queue wait, snapshot acquire, cache
    /// lookup, kernel compute, arena publish, reply. Indexed by
    /// [`Stage`]; see [`crate::telemetry`] for attribution semantics
    /// (for coalesced requests the kernel stage is the wait on the
    /// leader's computation).
    pub stages: [LatencySummary; N_STAGES],
    /// Per-algorithm end-to-end latency (including queue wait and, for
    /// per-request submissions, the reply) with the per-stage split —
    /// indexed in [`scs::Algorithm::ALL`] order.
    pub algos: [AlgoStats; crate::telemetry::N_ALGOS],
    /// Admission-control counters of the network front end; all zero
    /// when the engine serves in-process calls only.
    pub admission: AdmissionStats,
    /// The worst requests observed, sorted worst-first. Cumulative for
    /// [`crate::QueryEngine::stats`]; a [`crate::QueryEngine::stats_window`]
    /// call reports the worst requests *since the previous window call*
    /// and re-arms the ring, so a fast window after a slow warmup still
    /// surfaces its own spikes.
    pub slow: Vec<SlowQuery>,
    /// Per-shard slices of the totals above, one row per engine shard
    /// in shard order (a single row when the engine is unsharded).
    /// Cumulative since engine start even in windowed snapshots — the
    /// rows diagnose imbalance, which a short window would hide.
    pub per_shard: Vec<ShardStats>,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "┌─────────────────────┬──────────────┐")?;
        writeln!(f, "│ workers             │ {:>12} │", self.workers)?;
        writeln!(f, "│ completed           │ {:>12} │", self.completed)?;
        writeln!(f, "│ throughput (QPS)    │ {:>12.1} │", self.qps)?;
        writeln!(f, "│ latency mean (µs)   │ {:>12.1} │", self.mean_us)?;
        writeln!(f, "│ latency p50 (µs)    │ {:>12} │", self.p50_us)?;
        writeln!(f, "│ latency p90 (µs)    │ {:>12} │", self.p90_us)?;
        writeln!(f, "│ latency p99 (µs)    │ {:>12} │", self.p99_us)?;
        writeln!(f, "│ latency max (µs)    │ {:>12} │", self.max_us)?;
        writeln!(f, "│ cache hits          │ {:>12} │", self.cache.hits)?;
        writeln!(f, "│ cache misses        │ {:>12} │", self.cache.misses)?;
        writeln!(
            f,
            "│ cache hit rate      │ {:>11.1}% │",
            self.cache.hit_rate() * 100.0
        )?;
        writeln!(f, "│ cache entries       │ {:>12} │", self.cache.entries)?;
        writeln!(f, "│ cache evictions     │ {:>12} │", self.cache.evictions)?;
        writeln!(
            f,
            "│ cache invalidated   │ {:>12} │",
            self.cache.invalidated
        )?;
        writeln!(f, "│ coalesced queries   │ {:>12} │", self.coalesced)?;
        writeln!(f, "│ batch jobs          │ {:>12} │", self.batches)?;
        writeln!(f, "│ batched requests    │ {:>12} │", self.batched)?;
        writeln!(f, "│ batch splits        │ {:>12} │", self.splits)?;
        writeln!(f, "│ sub-batches         │ {:>12} │", self.sub_batches)?;
        writeln!(f, "│ scratch resident    │ {:>11}B │", self.scratch_bytes)?;
        writeln!(f, "│ arena resident      │ {:>11}B │", self.arena_bytes)?;
        writeln!(f, "│ allocs avoided      │ {:>12} │", self.allocs_avoided)?;
        writeln!(f, "│ arena recycles      │ {:>12} │", self.arena_recycled)?;
        writeln!(f, "│ index epoch         │ {:>12} │", self.epoch)?;
        writeln!(f, "│ installs            │ {:>12} │", self.installs)?;
        writeln!(f, "│ stale publishes     │ {:>12} │", self.stale_publishes)?;
        if !self.admission.is_zero() {
            let a = &self.admission;
            writeln!(f, "│ admitted            │ {:>12} │", a.admitted)?;
            writeln!(f, "│ served              │ {:>12} │", a.served)?;
            writeln!(f, "│ shed (429)          │ {:>12} │", a.shed)?;
            writeln!(f, "│ quota rejected      │ {:>12} │", a.quota_rejected)?;
            writeln!(f, "│ shed after admit    │ {:>12} │", a.shed_after_admit)?;
            writeln!(f, "│ deadline flushes    │ {:>12} │", a.deadline_flushes)?;
            writeln!(f, "│ size flushes        │ {:>12} │", a.size_flushes)?;
        }
        writeln!(f, "└─────────────────────┴──────────────┘")?;
        writeln!(
            f,
            "stage breakdown (µs)   {:>10} {:>9} {:>8} {:>8} {:>8}",
            "count", "mean", "p50", "p99", "max"
        )?;
        for stage in Stage::ALL {
            let s = &self.stages[stage as usize];
            writeln!(
                f,
                "  {:<20} {:>10} {:>9.1} {:>8} {:>8} {:>8}",
                stage.name(),
                s.count,
                s.mean_us,
                s.p50_us,
                s.p99_us,
                s.max_us
            )?;
        }
        write!(
            f,
            "per-algorithm (µs)     {:>10} {:>9} {:>8} {:>8} {:>8}",
            "count", "mean", "p50", "p99", "kern p99"
        )?;
        for a in &self.algos {
            if a.total.count == 0 {
                continue;
            }
            write!(
                f,
                "\n  {:<20} {:>10} {:>9.1} {:>8} {:>8} {:>8}",
                a.algo.name(),
                a.total.count,
                a.total.mean_us,
                a.total.p50_us,
                a.total.p99_us,
                a.stages[Stage::Kernel as usize].p99_us
            )?;
        }
        if self.per_shard.len() > 1 {
            write!(
                f,
                "\nper-shard          {:>8} {:>10} {:>9} {:>9} {:>8} {:>8} {:>9}",
                "workers", "completed", "hits", "misses", "p50", "p99", "min-sub"
            )?;
            for s in &self.per_shard {
                write!(
                    f,
                    "\n  shard {:<11} {:>8} {:>10} {:>9} {:>9} {:>8} {:>8} {:>9}",
                    s.shard,
                    s.workers,
                    s.completed,
                    s.cache_hits,
                    s.cache_misses,
                    s.p50_us,
                    s.p99_us,
                    s.min_sub_batch_effective
                )?;
            }
        }
        if !self.slow.is_empty() {
            write!(f, "\nslow queries (worst {})", self.slow.len())?;
            for (i, s) in self.slow.iter().enumerate() {
                write!(f, "\n  {:>2}. {}", i + 1, s)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::N_ALGOS;
    use scs::Algorithm;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for us in [10u64, 12, 14, 16, 100, 1000, 10_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us(), 10_000);
        // In-bucket linear interpolation makes quantiles deterministic
        // and tighter than the bucket width. p25: rank 2 of the three
        // samples in [8,16) → 8 + (1.5/3)·8 = 12 — the actual sample.
        assert_eq!(h.quantile_us(0.25), 12);
        // Median sample is 16, alone in [16,32) → its midpoint 24,
        // within half a bucket of the true value (pre-interpolation the
        // only guarantee was the factor-of-two bucket [16,32)).
        let p50 = h.quantile_us(0.5);
        assert_eq!(p50, 24);
        assert!((16..=24).contains(&(p50.min(24))), "p50={p50}");
        // p99 rank is the 10_000µs sample, alone in [8192,16384) —
        // interpolation says 12288 but the ≤max cap tightens it to the
        // exact sample.
        assert_eq!(h.quantile_us(0.99), 10_000);
        assert_eq!(h.quantile_us(1.0), 10_000);
        let mean = h.mean_us();
        assert!((mean - 11152.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_interpolation_is_monotone_within_a_bucket() {
        // 8 samples in one bucket [64,128): interpolated quantiles must
        // increase with q and stay inside the bucket (capped by max).
        let h = LatencyHistogram::default();
        for i in 0..8u64 {
            h.record(64 + 8 * i); // 64, 72, ..., 120
        }
        let mut prev = 0;
        for q in [0.125, 0.25, 0.5, 0.75, 0.875, 1.0] {
            let v = h.quantile_us(q);
            assert!((64..=120).contains(&v), "q={q} v={v}");
            assert!(v >= prev, "quantiles must be monotone: q={q} v={v}");
            prev = v;
        }
        // Rank r of c samples sits at lo + ((r−0.5)/c)·(hi−lo).
        assert_eq!(h.quantile_us(0.5), 64 + ((4.0 - 0.5) / 8.0 * 64.0) as u64);
    }

    #[test]
    fn histogram_top_bucket_is_reachable() {
        // Regression: the clamp used to run before the ilog2 decrement,
        // so every sample ≥ 2^39 landed in bucket 38 alongside
        // [2^38, 2^39) and the final bucket could never fill.
        let h = LatencyHistogram::default();
        h.record((1 << 39) - 1); // top of bucket 38
        h.record(1 << 39); // bottom of bucket 39 (the open-ended top)
                           // The two samples must land in *different* buckets: the p50
                           // rank stays in bucket 38 (a single sample interpolates to the
                           // midpoint 3·2^37) while the p100 rank reaches bucket 39, whose
                           // huge midpoint is capped by max.
        assert_eq!(h.quantile_us(0.5), 3 << 37);
        assert_eq!(h.quantile_us(1.0), 1 << 39);
        // The bucket index saturates instead of wrapping for any u64;
        // the top bucket's reported midpoint is 3·2^38.
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.quantile_us(1.0), 3 << 38);
    }

    #[test]
    fn histogram_exact_bucket_edges() {
        // bucket_of is floor(log2): 2^k−1 and 2^k straddle an edge.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        for k in 2..39usize {
            assert_eq!(LatencyHistogram::bucket_of((1 << k) - 1), k - 1, "2^{k}-1");
            assert_eq!(LatencyHistogram::bucket_of(1 << k), k, "2^{k}");
        }
        // Everything from 2^39 up shares the open-ended top bucket.
        assert_eq!(LatencyHistogram::bucket_of(1 << 39), BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(1 << 40), BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), 0); // capped by max
    }

    #[test]
    fn snapshot_delta_and_merge() {
        let h = LatencyHistogram::default();
        h.record(10);
        h.record(100);
        let first = h.snapshot();
        assert_eq!(first.count(), 2);
        assert_eq!(first.sum_us(), 110);
        h.record(1100);
        h.record(1200);
        let second = h.snapshot();
        let window = second.delta(&first);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum_us(), 2300);
        // The delta's max is an upper bound from the touched buckets:
        // both samples are in [1024,2048), cumulative max 1200.
        assert_eq!(window.max_us(), 1200);
        assert_eq!(window.quantile_us(1.0), 1200);
        // Quantiles of the window see only the window's samples.
        assert!(window.quantile_us(0.5) >= 1024, "window p50 must be ≥ 1024");
        // Merge is bucket-wise addition.
        let merged = first.merge(&window);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum_us(), 2410);
        assert_eq!(merged.max_us(), 1200);
        // Empty delta behaves like an empty histogram.
        let none = second.delta(&second);
        assert_eq!(none.count(), 0);
        assert_eq!(none.quantile_us(0.99), 0);
        assert_eq!(none.max_us(), 0);
    }

    #[test]
    fn stats_table_renders() {
        let mut stages = [LatencySummary::empty(); N_STAGES];
        stages[Stage::Kernel as usize] = LatencySummary {
            count: 1000,
            mean_us: 37.5,
            p50_us: 31,
            p99_us: 170,
            max_us: 800,
        };
        let mut algos: [AlgoStats; N_ALGOS] =
            std::array::from_fn(|i| AlgoStats::empty(Algorithm::ALL[i]));
        algos[1].total = LatencySummary {
            count: 600,
            mean_us: 40.0,
            p50_us: 28,
            p99_us: 190,
            max_us: 900,
        };
        let s = ServiceStats {
            workers: 4,
            completed: 1000,
            coalesced: 3,
            batches: 12,
            batched: 384,
            splits: 5,
            sub_batches: 17,
            cache: CacheStats {
                hits: 600,
                misses: 400,
                entries: 128,
                capacity: 1024,
                shards: 8,
                evictions: 23,
                invalidated: 77,
            },
            epoch: 1,
            installs: 1,
            stale_publishes: 0,
            qps: 12345.6,
            mean_us: 42.0,
            p50_us: 30,
            p90_us: 80,
            p99_us: 200,
            max_us: 900,
            scratch_bytes: 65536,
            arena_bytes: 262144,
            allocs_avoided: 4321,
            arena_recycled: 9,
            stages,
            algos,
            slow: vec![SlowQuery {
                q: 17,
                alpha: 2,
                beta: 3,
                algo: Algorithm::Peel,
                epoch: 1,
                provenance: crate::telemetry::Provenance::Batch,
                cached: false,
                coalesced: false,
                total_us: 900,
                stages_us: [1, 2, 3, 880, 10, 4, 0],
            }],
            admission: AdmissionStats {
                admitted: 5000,
                served: 4998,
                shed: 123,
                quota_rejected: 45,
                shed_after_admit: 2,
                deadline_flushes: 67,
                size_flushes: 89,
            },
            per_shard: vec![
                ShardStats {
                    shard: 0,
                    workers: 2,
                    completed: 640,
                    coalesced: 2,
                    cache_hits: 400,
                    cache_misses: 240,
                    splits: 3,
                    p50_us: 29,
                    p99_us: 180,
                    min_sub_batch_effective: 8,
                },
                ShardStats {
                    shard: 1,
                    workers: 2,
                    completed: 360,
                    coalesced: 1,
                    cache_hits: 200,
                    cache_misses: 160,
                    splits: 2,
                    p50_us: 33,
                    p99_us: 230,
                    min_sub_batch_effective: 12,
                },
            ],
        };
        let txt = s.to_string();
        assert!(txt.contains("QPS"));
        assert!(txt.contains("12345.6"));
        assert!(txt.contains("60.0%"));
        assert!(txt.contains("scratch resident"));
        assert!(txt.contains("65536B"));
        assert!(txt.contains("arena resident"));
        assert!(txt.contains("262144B"));
        assert!(txt.contains("arena recycles"));
        assert!(txt.contains("4321"));
        assert!(txt.contains("batch jobs"));
        assert!(txt.contains("384"));
        assert!(txt.contains("batch splits"));
        assert!(txt.contains("sub-batches"));
        assert!(txt.contains("17"));
        // New observability sections.
        assert!(txt.contains("cache evictions"));
        assert!(txt.contains("installs"));
        assert!(txt.contains("stale publishes"));
        assert!(txt.contains("stage breakdown"));
        assert!(txt.contains("kernel"));
        assert!(txt.contains("per-algorithm"));
        assert!(txt.contains("peel"));
        assert!(txt.contains("slow queries (worst 1)"));
        assert!(txt.contains("q=17"));
        // Algorithms that served nothing stay out of the table.
        assert!(!txt.contains("baseline"));
        // The per-shard section renders one row per shard with the
        // effective split granularity.
        assert!(txt.contains("per-shard"));
        assert!(txt.contains("shard 0"));
        assert!(txt.contains("shard 1"));
        assert!(txt.contains("min-sub"));
        // The admission section renders when any counter is nonzero...
        assert!(txt.contains("shed (429)"));
        assert!(txt.contains("quota rejected"));
        assert!(txt.contains("deadline flushes"));
        // ...and hides for the in-process (all-zero) case.
        let mut quiet = s.clone();
        quiet.admission = AdmissionStats::default();
        assert!(!quiet.to_string().contains("shed (429)"));
    }

    #[test]
    fn snapshot_regression_is_detected_not_saturated() {
        // Regression (ISSUE 10, satellite 1): `delta` saturates per
        // field, so a baseline from replaced/reset storage yields a
        // delta whose `count` disagrees with `Σ buckets` and quantiles
        // silently read the wrong bucket. `regressed_from` is the
        // detector windowed readers must consult first.
        let h = LatencyHistogram::default();
        for us in [10u64, 100, 1000, 10_000] {
            h.record(us);
        }
        let big = h.snapshot();
        let h2 = LatencyHistogram::default();
        h2.record(50);
        let small = h2.snapshot();
        // Forward in time over the same storage: no regression.
        h.record(7);
        let later = h.snapshot();
        assert!(!later.regressed_from(&big));
        assert!(!big.regressed_from(&big));
        // A fresh histogram observed against the old baseline: count,
        // sum and buckets all went backwards.
        assert!(small.regressed_from(&big));
        // The saturated delta is exactly the inconsistent artifact the
        // detector exists to catch: nonzero buckets under a zero count.
        let bad = small.delta(&big);
        let bucket_sum: u64 = (0..HistSnapshot::N_BUCKETS)
            .map(|i| bad.bucket_count(i))
            .sum();
        assert_eq!(bad.count(), 0);
        assert_eq!(bucket_sum, 1);
    }

    #[test]
    fn single_shard_stats_hide_the_per_shard_section() {
        // An unsharded engine still carries its one row (the effective
        // min_sub_batch is visible programmatically) but the table
        // skips the section — nothing to compare.
        let mut s = ServiceStats {
            workers: 1,
            completed: 0,
            coalesced: 0,
            batches: 0,
            batched: 0,
            splits: 0,
            sub_batches: 0,
            cache: CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
                capacity: 64,
                shards: 4,
                evictions: 0,
                invalidated: 0,
            },
            epoch: 0,
            installs: 0,
            stale_publishes: 0,
            qps: 0.0,
            mean_us: 0.0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
            scratch_bytes: 0,
            arena_bytes: 0,
            allocs_avoided: 0,
            arena_recycled: 0,
            stages: [LatencySummary::empty(); N_STAGES],
            algos: std::array::from_fn(|i| AlgoStats::empty(Algorithm::ALL[i])),
            admission: AdmissionStats::default(),
            slow: Vec::new(),
            per_shard: vec![ShardStats {
                shard: 0,
                workers: 1,
                completed: 0,
                coalesced: 0,
                cache_hits: 0,
                cache_misses: 0,
                splits: 0,
                p50_us: 0,
                p99_us: 0,
                min_sub_batch_effective: 8,
            }],
        };
        assert!(!s.to_string().contains("per-shard"));
        s.per_shard.push(ShardStats {
            shard: 1,
            ..s.per_shard[0]
        });
        assert!(s.to_string().contains("per-shard"));
    }
}
