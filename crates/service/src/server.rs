//! `scs serve` — a std-only TCP network front end over the
//! [`QueryEngine`], with admission control, deadline batching and
//! graceful overload.
//!
//! # Protocol
//!
//! Hand-rolled minimal HTTP/1.1 (same no-dependency policy as the
//! vendored crates): one `GET` per request, keep-alive by default
//! (pipelined requests in one segment are preserved, not dropped),
//! JSON responses. Endpoints:
//!
//! * `GET /query?q=<vertex>&alpha=<a>&beta=<b>[&algo=<name>]`
//!   `[&tenant=<id>][&deadline_ms=<ms>]` — answer one
//!   (α,β)-community query. `algo` is one of
//!   `auto|peel|expand|binary|baseline` (default `auto`); `tenant`
//!   attributes the request to a per-tenant quota bucket;
//!   `deadline_ms` tightens (never loosens) the deadline batcher's
//!   flush for the bucket this request lands in. The response carries
//!   the community's size and minimum weight, epoch provenance
//!   (`epoch`, `cached`, `coalesced`) and per-request timings:
//!   `accept_us` (socket accept → engine enqueue — the batching
//!   latency the operator dialed in), `service_us` (engine dequeue →
//!   response) and `total_us` (admission → reply handoff).
//! * `GET /metrics` — Prometheus text exposition, the engine families
//!   plus the live `scs_admission_*` counters.
//! * `GET /stats` — the human-readable stats table.
//! * `GET /healthz` — liveness probe.
//!
//! # Admission control and overload
//!
//! A request is admitted only if (a) its tenant's token bucket
//! ([`crate::TenantQuotas`]) has a token and (b) the **pending
//! budget** ([`ServiceConfig::pending_budget`]) — admitted requests
//! not yet answered — has room. Anything else is shed *immediately*
//! with `429 Too Many Requests` and a `Retry-After` whose value is
//! derived from the observed accept-stage p99 (how long admitted
//! requests are currently waiting to reach the engine), jittered
//! ±25% so a synchronized client herd does not return as one wave.
//! Under overload the server therefore degrades by answering fast
//! 429s rather than growing an unbounded queue; admitted requests
//! keep bounded latency because the budget caps what can be in
//! flight. Socket read/write timeouts
//! ([`ServiceConfig::socket_timeout_ms`]) stop a slow or dead client
//! from pinning its connection thread.
//!
//! At quiescence the counters reconcile exactly:
//! `admitted == served + shed_after_admit` — every admitted request
//! is resolved by its owning connection thread as either a written
//! reply or a recorded post-admission shed (client death, reply
//! timeout or shutdown drain). No reply is lost or duplicated: each
//! request has exactly one reply channel, each flushed batch member
//! is answered from [`submit_batch`]'s submission-order responses.
//!
//! # Deadline batching
//!
//! Admitted requests flow to a single batcher thread that accumulates
//! them in per-`(α, β, algorithm)` buckets ([`DeadlineBuckets`]) and
//! flushes a bucket into [`QueryEngine::submit_batch`] when it holds
//! [`ServiceConfig::batch_max`] requests or its deadline
//! ([`ServiceConfig::batch_deadline_ms`]) expires — converting bursty
//! single-request socket traffic into the engine's batch path (one
//! queue job, one snapshot, one cache pass, batched kernel calls). A
//! small responder pool waits on the [`BatchHandle`]s so the batcher
//! never blocks on the engine.
//!
//! [`submit_batch`]: QueryEngine::submit_batch

use crate::batcher::{DeadlineBuckets, Flush, FlushCause, TenantQuotas};
use crate::engine::{BatchHandle, QueryEngine, ServiceConfig};
use crate::stats::{AdmissionStats, LatencyHistogram, ServiceStats};
use crate::{QueryRequest, QueryResponse};
use bigraph::Vertex;
use scs::Algorithm;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum bytes of one request head (request line + headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Responder threads waiting on in-flight [`BatchHandle`]s. Two keep
/// the batcher pipelined: a new batch can form while the previous one
/// computes.
const N_RESPONDERS: usize = 2;

/// One admitted request in flight between a connection thread and the
/// batcher.
struct Admitted {
    req: QueryRequest,
    /// Where the responder delivers this request's answer.
    tx: mpsc::Sender<QueryResponse>,
    /// When the connection thread admitted it (accept-stage start).
    t_admit: Instant,
    /// The request's own `deadline_ms`, if it sent one.
    deadline: Option<Duration>,
}

/// One flushed batch on its way to a responder thread: the engine's
/// pending handle plus the reply channels in submission order.
struct Dispatch {
    handle: BatchHandle,
    txs: Vec<mpsc::Sender<QueryResponse>>,
}

/// Everything the server's threads share.
struct ServerInner {
    engine: QueryEngine,
    stop: AtomicBool,
    /// Admitted-but-unanswered requests, bounded by `pending_budget`.
    pending: AtomicUsize,
    pending_budget: usize,
    socket_timeout: Option<Duration>,
    /// How long a connection thread waits for its admitted request's
    /// reply before declaring it shed-after-admit.
    reply_timeout: Duration,
    admitted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    quota_rejected: AtomicU64,
    shed_after_admit: AtomicU64,
    deadline_flushes: AtomicU64,
    size_flushes: AtomicU64,
    quotas: Mutex<TenantQuotas>,
    /// Accept-stage (admission → engine enqueue) samples; its p99
    /// feeds the `Retry-After` hint on 429s.
    queue_wait: LatencyHistogram,
    /// Jitter state for `Retry-After` (a splitmix64 counter — no
    /// external RNG, deterministic per process but decorrelated across
    /// rejections).
    jitter: AtomicU64,
    /// The batcher's intake. `None` once the server started shutting
    /// down.
    batch_tx: Mutex<Option<mpsc::Sender<Admitted>>>,
    /// Clones of live connection sockets keyed by connection id, so
    /// shutdown can unblock reads immediately instead of waiting out
    /// socket timeouts. Each connection thread removes its own entry
    /// on exit — the map holds only live connections, so a
    /// long-running server does not leak one duplicated fd per
    /// connection ever accepted.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Live connection threads keyed by connection id. The accept
    /// loop reaps finished handles between accepts; shutdown joins
    /// whatever is left.
    conn_joins: Mutex<HashMap<u64, JoinHandle<()>>>,
    /// Id source for the two maps above.
    next_conn_id: AtomicU64,
}

impl ServerInner {
    fn admission(&self) -> AdmissionStats {
        // ordering: Relaxed — statistics reads; each counter is
        // independent and the reconciliation invariant is only claimed
        // at quiescence (no concurrent writers).
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed), // ordering: Relaxed, as above
            shed_after_admit: self.shed_after_admit.load(Ordering::Relaxed), // ordering: Relaxed, as above
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed), // ordering: Relaxed, as above
            size_flushes: self.size_flushes.load(Ordering::Relaxed), // ordering: Relaxed, as above
        }
    }

    /// The jittered `Retry-After` hint, milliseconds: the observed
    /// accept-stage p99 (how long admitted requests currently wait to
    /// reach the engine), clamped to [50ms, 5s], ±25% jitter.
    fn retry_after_ms(&self) -> u64 {
        let p99_us = self.queue_wait.snapshot().quantile_us(0.99);
        let base_ms = (p99_us / 1000).clamp(50, 5000);
        // splitmix64 over a counter: cheap decorrelated jitter.
        // ordering: Relaxed — the counter only needs uniqueness-ish,
        // not ordering.
        let mut x = self
            .jitter
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        // jitter in [-25%, +25%] of base.
        let span = base_ms / 2;
        let off = if span == 0 { 0 } else { x % (span + 1) };
        base_ms - span / 2 + off
    }
}

/// The running network front end. Construct with [`Server::start`];
/// the handle stops (and joins) everything on [`ServerHandle::stop`].
pub struct Server;

/// Handle to a running [`Server`]: the bound address, live stats and
/// the shutdown switch. Dropping the handle without calling
/// [`Self::stop`] leaks the serving threads (they keep serving) — the
/// CLI relies on that to serve "forever".
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    responders: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), takes
    /// ownership of `engine` and starts the accept loop, the deadline
    /// batcher and the responder pool. Admission/batching knobs come
    /// from `config` (the same struct that sized the engine).
    pub fn start(
        engine: QueryEngine,
        addr: &str,
        config: &ServiceConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let socket_timeout = match config.socket_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };
        let reply_timeout = Duration::from_millis(
            config
                .socket_timeout_ms
                .max(config.batch_deadline_ms.saturating_mul(2) + 1_000)
                .max(1_000),
        );
        let (batch_tx, batch_rx) = mpsc::channel::<Admitted>();
        let inner = Arc::new(ServerInner {
            engine,
            stop: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            pending_budget: config.pending_budget.max(1),
            socket_timeout,
            reply_timeout,
            admitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            shed_after_admit: AtomicU64::new(0),
            deadline_flushes: AtomicU64::new(0),
            size_flushes: AtomicU64::new(0),
            quotas: Mutex::new(TenantQuotas::new(config.tenant_rate, config.tenant_burst)),
            queue_wait: LatencyHistogram::default(),
            jitter: AtomicU64::new(0x5ca1_ab1e),
            batch_tx: Mutex::new(Some(batch_tx)),
            conns: Mutex::new(HashMap::new()),
            conn_joins: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let (disp_tx, disp_rx) = mpsc::channel::<Dispatch>();
        let responders = {
            let disp_rx = Arc::new(Mutex::new(disp_rx));
            (0..N_RESPONDERS)
                .map(|i| {
                    let rx = Arc::clone(&disp_rx);
                    std::thread::Builder::new()
                        .name(format!("scs-respond-{i}"))
                        .spawn(move || responder_loop(&rx))
                        .expect("spawn responder")
                })
                .collect()
        };

        let batcher = {
            let inner = Arc::clone(&inner);
            let batch_max = config.batch_max.max(1);
            let deadline = Duration::from_millis(config.batch_deadline_ms);
            std::thread::Builder::new()
                .name("scs-batcher".into())
                .spawn(move || batcher_loop(&inner, &batch_rx, &disp_tx, batch_max, deadline))
                .expect("spawn batcher")
        };

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("scs-accept".into())
                .spawn(move || accept_loop(&inner, &listener))
                .expect("spawn accept loop")
        };

        Ok(ServerHandle {
            inner,
            addr: local,
            accept: Some(accept),
            batcher: Some(batcher),
            responders,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live admission counters.
    pub fn admission(&self) -> AdmissionStats {
        self.inner.admission()
    }

    /// Engine stats with the live admission counters spliced in.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.inner.engine.stats();
        stats.admission = self.inner.admission();
        stats
    }

    /// Graceful shutdown: stop accepting, unblock and join every
    /// connection thread (their in-flight requests resolve as served
    /// or shed-after-admit), drain the batcher into the engine, join
    /// the responders, then shut the engine down. Returns the final
    /// admission counters, reconciled
    /// (`admitted == served + shed_after_admit`).
    pub fn stop(mut self) -> AdmissionStats {
        // ordering: Release pairs with the Acquire loads in the accept
        // and connection loops — threads that observe the flag also
        // observe everything the stopper did before raising it.
        self.inner.stop.store(true, Ordering::Release);
        // Unblock the accept loop: it checks `stop` after every
        // accept, so one throwaway connection gets it to exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock connection threads stuck in read() and join them;
        // each resolves its in-flight request on the way out.
        {
            let mut conns = self.inner.conns.lock().unwrap();
            for (_, c) in conns.drain() {
                let _ = c.shutdown(std::net::Shutdown::Both);
            }
        }
        let joins: Vec<_> = {
            let mut j = self.inner.conn_joins.lock().unwrap();
            j.drain().map(|(_, h)| h).collect()
        };
        for h in joins {
            let _ = h.join();
        }
        // With every connection thread gone, dropping the server's
        // sender disconnects the batcher's intake; it drains its
        // buckets into the engine and exits.
        self.inner.batch_tx.lock().unwrap().take();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for h in self.responders.drain(..) {
            let _ = h.join();
        }
        self.inner.admission()
        // `self.inner` drops here; the engine's Drop drains and joins
        // its workers.
    }
}

fn accept_loop(inner: &Arc<ServerInner>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) => {
                // ordering: Acquire pairs with the stopper's Release.
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                // A persistent accept failure (EMFILE/ENFILE under fd
                // pressure) would otherwise spin this loop at 100%
                // CPU; back off briefly so exhaustion degrades instead
                // of livelocking the server.
                if !matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                ) {
                    std::thread::sleep(Duration::from_millis(50));
                }
                continue;
            }
        };
        // ordering: Acquire pairs with the stopper's Release store.
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        reap_finished_conns(inner);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(inner.socket_timeout);
        let _ = stream.set_write_timeout(inner.socket_timeout);
        // ordering: Relaxed — the id only needs uniqueness.
        let id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            inner.conns.lock().unwrap().insert(id, clone);
        }
        let inner2 = Arc::clone(inner);
        match std::thread::Builder::new()
            .name("scs-conn".into())
            .spawn(move || {
                connection_loop(&inner2, stream);
                // Drop our socket clone (and its duplicated fd) as
                // soon as the connection ends, not at shutdown.
                inner2.conns.lock().unwrap().remove(&id);
            }) {
            Ok(h) => {
                inner.conn_joins.lock().unwrap().insert(id, h);
            }
            Err(_) => {
                inner.conns.lock().unwrap().remove(&id);
            }
        }
    }
}

/// Joins connection threads that have already exited, so the join map
/// tracks only live connections instead of growing by one handle per
/// connection ever accepted.
fn reap_finished_conns(inner: &ServerInner) {
    let finished: Vec<JoinHandle<()>> = {
        let mut joins = inner.conn_joins.lock().unwrap();
        let done: Vec<u64> = joins
            .iter()
            .filter(|(_, h)| h.is_finished())
            .map(|(&id, _)| id)
            .collect();
        done.into_iter()
            .filter_map(|id| joins.remove(&id))
            .collect()
    };
    for h in finished {
        let _ = h.join();
    }
}

/// One HTTP request head, split into what the handler needs.
struct HttpRequest<'a> {
    method: &'a str,
    path: &'a str,
    query: &'a str,
    keep_alive: bool,
}

/// One response on its way out.
struct HttpResponse {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
    retry_after_ms: Option<u64>,
}

impl HttpResponse {
    fn json(status: u16, reason: &'static str, body: String) -> Self {
        HttpResponse {
            status,
            reason,
            content_type: "application/json",
            body,
            retry_after_ms: None,
        }
    }

    fn error(status: u16, reason: &'static str, msg: &str) -> Self {
        HttpResponse::json(status, reason, format!("{{\"error\":\"{msg}\"}}\n"))
    }
}

/// What a `/query` request resolved to, for the admission ledger.
enum QueryOutcome {
    /// Not admitted (shed, quota-rejected, parse error…) — nothing to
    /// reconcile.
    NotAdmitted,
    /// Admitted and a reply is in hand: a successful socket write
    /// counts `served`, a failed one `shed_after_admit`.
    Delivered,
}

fn connection_loop(inner: &Arc<ServerInner>, mut stream: TcpStream) {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        // ordering: Acquire pairs with the stopper's Release store.
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let head = match read_request_head(&mut stream, &mut buf) {
            Ok(Some(head)) => head,
            Ok(None) => return, // clean EOF between requests
            Err(_) => return,   // timeout / reset / oversized head
        };
        let (resp, outcome, keep_alive) = match parse_request(&head) {
            Ok(req) => {
                let keep_alive = req.keep_alive;
                let (resp, outcome) = handle_request(inner, &req);
                (resp, outcome, keep_alive)
            }
            Err(msg) => (
                HttpResponse::error(400, "Bad Request", msg),
                QueryOutcome::NotAdmitted,
                false,
            ),
        };
        let wrote = write_response(&mut stream, &resp, keep_alive).is_ok();
        if let QueryOutcome::Delivered = outcome {
            if wrote {
                // ordering: Relaxed — independent statistics counters;
                // quiescent reconciliation needs no ordering.
                inner.served.fetch_add(1, Ordering::Relaxed);
            } else {
                // ordering: Relaxed — as above.
                inner.shed_after_admit.fetch_add(1, Ordering::Relaxed);
            }
        }
        if !wrote || !keep_alive {
            return;
        }
    }
}

/// Reads one request head (through `\r\n\r\n`) into `buf` and returns
/// it as text. `Ok(None)` on clean EOF before any byte. Bytes past
/// the terminator stay in `buf` for the next call, so a keep-alive
/// client that pipelines several requests in one segment loses none
/// of them.
fn read_request_head(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<Option<String>> {
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(buf) {
            let head = String::from_utf8_lossy(buf.get(..end).unwrap_or_default()).into_owned();
            buf.drain(..(end + 4).min(buf.len()));
            return Ok(Some(head));
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-request",
                ))
            };
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

// The per-connection request handler must never take the whole server
// down: a malformed request, an unexpected parameter or a dead socket
// ends at worst this one connection. The analyzer proves the handler
// and its transitive callees free of panic sites.
// scs-contract: no-panic
fn parse_request<'a>(head: &'a str) -> Result<HttpRequest<'a>, &'static str> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?;
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    // Keep-alive: HTTP/1.1 defaults on, `Connection: close` (or an
    // HTTP/1.0 client) turns it off.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("connection") {
            let v = value.trim();
            if v.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if v.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    Ok(HttpRequest {
        method,
        path,
        query,
        keep_alive,
    })
}

// scs-contract: no-panic — see `parse_request`; this is the dispatch
// half of the connection handler.
fn handle_request(inner: &Arc<ServerInner>, req: &HttpRequest<'_>) -> (HttpResponse, QueryOutcome) {
    if req.method != "GET" {
        return (
            HttpResponse::error(405, "Method Not Allowed", "only GET is served"),
            QueryOutcome::NotAdmitted,
        );
    }
    match req.path {
        "/query" => handle_query(inner, req.query),
        "/metrics" => {
            let text = inner.engine.render_metrics_with(inner.admission());
            (
                HttpResponse {
                    status: 200,
                    reason: "OK",
                    content_type: "text/plain; version=0.0.4",
                    body: text,
                    retry_after_ms: None,
                },
                QueryOutcome::NotAdmitted,
            )
        }
        "/stats" => {
            let mut stats = inner.engine.stats();
            stats.admission = inner.admission();
            (
                HttpResponse {
                    status: 200,
                    reason: "OK",
                    content_type: "text/plain; charset=utf-8",
                    body: stats.to_string(),
                    retry_after_ms: None,
                },
                QueryOutcome::NotAdmitted,
            )
        }
        "/healthz" => (
            HttpResponse::json(200, "OK", "{\"ok\":true}\n".to_string()),
            QueryOutcome::NotAdmitted,
        ),
        _ => (
            HttpResponse::error(404, "Not Found", "unknown path"),
            QueryOutcome::NotAdmitted,
        ),
    }
}

/// Query-string parameters of `/query`, parsed but not yet validated
/// as a complete request.
#[derive(Default)]
struct QueryParams {
    q: Option<u32>,
    alpha: Option<u32>,
    beta: Option<u32>,
    algo: Option<Algorithm>,
    tenant: Option<String>,
    deadline_ms: Option<u64>,
}

// scs-contract: no-panic — parameter parsing runs on every socket
// request; a hostile query string must yield a 400, not a panic.
fn parse_query_params(query: &str) -> Result<QueryParams, &'static str> {
    let mut p = QueryParams::default();
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (key, value) = pair.split_once('=').ok_or("parameter without value")?;
        match key {
            "q" => p.q = Some(value.parse().map_err(|_| "q must be a u32 vertex id")?),
            "alpha" => p.alpha = Some(value.parse().map_err(|_| "alpha must be a u32")?),
            "beta" => p.beta = Some(value.parse().map_err(|_| "beta must be a u32")?),
            "algo" => {
                p.algo = Some(match value {
                    "auto" => Algorithm::Auto,
                    "peel" => Algorithm::Peel,
                    "expand" => Algorithm::Expand,
                    "binary" => Algorithm::Binary,
                    "baseline" => Algorithm::Baseline,
                    _ => return Err("unknown algo (auto|peel|expand|binary|baseline)"),
                })
            }
            "tenant" => p.tenant = Some(url_decode(value).ok_or("bad tenant encoding")?),
            "deadline_ms" => {
                p.deadline_ms = Some(value.parse().map_err(|_| "deadline_ms must be a u64")?)
            }
            _ => {} // ignore unknown parameters (forward compatibility)
        }
    }
    Ok(p)
}

// Percent-decoding works on raw bytes: a UTF-8 name like
// `caf%C3%A9` must decode through its byte sequence, not through
// per-byte `char::from` (Latin-1), or the tenant string is mojibake.
// Invalid UTF-8 after decoding is rejected (→ 400), never replaced,
// so distinct raw names cannot collide.
// scs-contract: no-panic — runs on attacker-controlled input.
fn url_decode(s: &str) -> Option<String> {
    let mut out = Vec::with_capacity(s.len());
    let mut bytes = s.bytes();
    while let Some(b) = bytes.next() {
        match b {
            b'%' => {
                let hi = hex_val(bytes.next()?)?;
                let lo = hex_val(bytes.next()?)?;
                out.push(hi * 16 + lo);
            }
            b'+' => out.push(b' '),
            _ => out.push(b),
        }
    }
    String::from_utf8(out).ok()
}

// scs-contract: no-panic
fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// The `/query` path: admission control, the deadline batcher
/// round-trip, and the JSON reply.
// scs-contract: no-panic — the heart of the connection handler: every
// exit is an HTTP response, never an unwind.
fn handle_query(inner: &Arc<ServerInner>, query: &str) -> (HttpResponse, QueryOutcome) {
    let params = match parse_query_params(query) {
        Ok(p) => p,
        Err(msg) => {
            return (
                HttpResponse::error(400, "Bad Request", msg),
                QueryOutcome::NotAdmitted,
            )
        }
    };
    let (Some(q), Some(alpha), Some(beta)) = (params.q, params.alpha, params.beta) else {
        return (
            HttpResponse::error(400, "Bad Request", "q, alpha and beta are required"),
            QueryOutcome::NotAdmitted,
        );
    };
    let req = QueryRequest {
        q: Vertex(q),
        alpha,
        beta,
        algo: params.algo.unwrap_or(Algorithm::Auto),
    };
    let t_admit = Instant::now();

    // Tenant quota first: a quota-limited tenant must not consume
    // pending budget.
    {
        let mut quotas = match inner.quotas.lock() {
            Ok(g) => g,
            // Quota state is plain counters; a writer can't have left
            // them inconsistent mid-panic in any way that matters.
            Err(poisoned) => poisoned.into_inner(),
        };
        if !quotas.admit(params.tenant.as_deref(), t_admit) {
            // ordering: Relaxed — independent statistics counter.
            inner.quota_rejected.fetch_add(1, Ordering::Relaxed);
            drop(quotas); // contract-ok: dropping a MutexGuard cannot panic
            return (
                reject_429(inner, "tenant quota exhausted"),
                QueryOutcome::NotAdmitted,
            );
        }
    }

    // Pending budget: admit or shed, never queue unboundedly.
    // ordering: Relaxed — the budget is a statistical bound, not a
    // synchronization point; a transient overshoot of one is benign
    // and immediately corrected below.
    let prior = inner.pending.fetch_add(1, Ordering::Relaxed);
    if prior >= inner.pending_budget {
        // ordering: Relaxed — undoing the optimistic increment above.
        inner.pending.fetch_sub(1, Ordering::Relaxed);
        // ordering: Relaxed — independent statistics counter.
        inner.shed.fetch_add(1, Ordering::Relaxed);
        return (
            reject_429(inner, "pending budget exhausted"),
            QueryOutcome::NotAdmitted,
        );
    }
    // ordering: Relaxed — independent statistics counter.
    inner.admitted.fetch_add(1, Ordering::Relaxed);

    // Hand the request to the batcher and wait for its reply.
    let (tx, rx) = mpsc::channel();
    let sent = {
        let guard = match inner.batch_tx.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match guard.as_ref() {
            Some(batch_tx) => batch_tx
                .send(Admitted {
                    req,
                    tx,
                    t_admit,
                    deadline: params.deadline_ms.map(Duration::from_millis),
                })
                .is_ok(),
            None => false,
        }
    };
    if !sent {
        // Shutting down: the admission is resolved here as shed.
        // ordering: Relaxed — statistics counters, as above.
        inner.pending.fetch_sub(1, Ordering::Relaxed);
        inner.shed_after_admit.fetch_add(1, Ordering::Relaxed);
        return (
            HttpResponse::error(503, "Service Unavailable", "server is shutting down"),
            QueryOutcome::NotAdmitted,
        );
    }
    match rx.recv_timeout(inner.reply_timeout) {
        Ok(resp) => {
            // ordering: Relaxed — budget release; see the admission
            // increment above.
            inner.pending.fetch_sub(1, Ordering::Relaxed);
            let total_us = u64::try_from(t_admit.elapsed().as_micros()).unwrap_or(u64::MAX);
            (
                HttpResponse::json(200, "OK", render_query_json(&resp, total_us)),
                QueryOutcome::Delivered,
            )
        }
        Err(_) => {
            // Reply never arrived (engine wedged or shutdown drain
            // raced us): resolve as shed-after-admit. The late reply,
            // if any, lands in a closed channel and is dropped — never
            // double-delivered.
            // ordering: Relaxed — statistics counters, as above.
            inner.pending.fetch_sub(1, Ordering::Relaxed);
            inner.shed_after_admit.fetch_add(1, Ordering::Relaxed);
            (
                HttpResponse::error(503, "Service Unavailable", "reply timed out"),
                QueryOutcome::NotAdmitted,
            )
        }
    }
}

// scs-contract: no-panic — the overload exit must itself be
// panic-free or shedding would be the crash it exists to prevent.
fn reject_429(inner: &Arc<ServerInner>, msg: &str) -> HttpResponse {
    let retry_ms = inner.retry_after_ms();
    HttpResponse {
        status: 429,
        reason: "Too Many Requests",
        content_type: "application/json",
        body: format!("{{\"error\":\"{msg}\",\"retry_after_ms\":{retry_ms}}}\n"),
        retry_after_ms: Some(retry_ms),
    }
}

fn render_query_json(resp: &QueryResponse, total_us: u64) -> String {
    let r = &resp.request;
    let min_weight = match resp.summary.min_weight {
        Some(w) => format!("{w}"),
        None => "null".to_string(),
    };
    format!(
        "{{\"q\":{},\"alpha\":{},\"beta\":{},\"algo\":\"{}\",\"epoch\":{},\
         \"cached\":{},\"coalesced\":{},\"n_upper\":{},\"n_lower\":{},\
         \"edges\":{},\"min_weight\":{},\"service_us\":{},\"total_us\":{}}}\n",
        r.q.0,
        r.alpha,
        r.beta,
        r.algo.name(),
        resp.epoch,
        resp.cached,
        resp.coalesced,
        resp.summary.n_upper,
        resp.summary.n_lower,
        resp.summary.size(),
        min_weight,
        resp.service_us,
        total_us,
    )
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        resp.reason,
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(ms) = resp.retry_after_ms {
        // The header is whole seconds (RFC 9110), rounded up and ≥ 1;
        // the JSON body carries the precise milliseconds.
        head.push_str(&format!("Retry-After: {}\r\n", ms.div_ceil(1000).max(1)));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// The deadline batcher: accumulates admitted requests in
/// per-(α, β, algorithm) buckets and flushes them into the engine by
/// size or deadline. Exits (after draining) when every sender is gone.
fn batcher_loop(
    inner: &Arc<ServerInner>,
    rx: &mpsc::Receiver<Admitted>,
    disp_tx: &mpsc::Sender<Dispatch>,
    batch_max: usize,
    deadline: Duration,
) {
    let mut buckets: DeadlineBuckets<(mpsc::Sender<QueryResponse>, Instant)> =
        DeadlineBuckets::new(batch_max, deadline);
    loop {
        let now = Instant::now();
        // Sleep until the earliest bucket deadline (or indefinitely
        // when empty — a new request wakes us).
        let msg = match buckets.next_deadline() {
            Some(due) => rx.recv_timeout(due.saturating_duration_since(now)),
            None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        };
        match msg {
            Ok(adm) => {
                let now = Instant::now();
                if let Some(flush) = buckets.push(adm.req, (adm.tx, adm.t_admit), now, adm.deadline)
                {
                    dispatch(inner, disp_tx, flush, now);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Shutdown: drain what's accumulated into the engine —
                // the admitted requests still get real answers (their
                // connection threads may still be waiting).
                let now = Instant::now();
                for flush in buckets.drain() {
                    dispatch(inner, disp_tx, flush, now);
                }
                return;
            }
        }
        // Flush everything that came due while we slept or pushed.
        let now = Instant::now();
        while let Some(flush) = buckets.expired(now) {
            dispatch(inner, disp_tx, flush, now);
        }
    }
}

/// Submits one flushed bucket to the engine and hands the pending
/// handle to the responder pool. Records each member's accept-stage
/// latency (admission → this enqueue) into the telemetry plane and
/// the server's Retry-After histogram.
fn dispatch(
    inner: &Arc<ServerInner>,
    disp_tx: &mpsc::Sender<Dispatch>,
    flush: Flush<(mpsc::Sender<QueryResponse>, Instant)>,
    now: Instant,
) {
    match flush.cause {
        // ordering: Relaxed — independent statistics counters.
        FlushCause::Size => inner.size_flushes.fetch_add(1, Ordering::Relaxed),
        // ordering: Relaxed — as above. A drain flush counts as a
        // deadline flush: the deadline was simply "now".
        FlushCause::Deadline | FlushCause::Drain => {
            inner.deadline_flushes.fetch_add(1, Ordering::Relaxed)
        }
    };
    let mut reqs = Vec::with_capacity(flush.items.len());
    let mut txs = Vec::with_capacity(flush.items.len());
    for (req, (tx, t_admit)) in flush.items {
        let us =
            u64::try_from(now.saturating_duration_since(t_admit).as_micros()).unwrap_or(u64::MAX);
        inner.engine.record_accept(&req, us);
        inner.queue_wait.record(us);
        reqs.push(req);
        txs.push(tx);
    }
    let handle = inner.engine.submit_batch(&reqs);
    if disp_tx.send(Dispatch { handle, txs }).is_err() {
        // Responders are gone (shutdown tail): nobody will wait on the
        // handle; dropping it leaves the engine to answer into the
        // pooled cell, which is reclaimed on engine shutdown. The
        // waiting connection threads resolve via their reply timeout.
    }
}

/// Waits on dispatched batches and routes each response to its
/// request's connection thread. A dead reply channel (client gone) is
/// fine — the connection thread owns the shed-after-admit accounting.
fn responder_loop(rx: &Arc<Mutex<mpsc::Receiver<Dispatch>>>) {
    loop {
        let msg = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(dispatch) = msg else { return };
        let responses = dispatch.handle.wait();
        for (resp, tx) in responses.into_iter().zip(dispatch.txs) {
            let _ = tx.send(resp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::figure2_example;
    use scs::CommunitySearch;
    use std::io::BufRead;

    fn serve(config: ServiceConfig) -> ServerHandle {
        let engine = QueryEngine::start(CommunitySearch::shared(figure2_example()), config.clone());
        Server::start(engine, "127.0.0.1:0", &config).expect("bind loopback")
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, Vec<String>, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        read_reply(&mut s)
    }

    fn read_reply(s: &mut TcpStream) -> (u16, Vec<String>, String) {
        let mut reader = io::BufReader::new(s);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap_or(0);
                }
            }
            headers.push(line);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, headers, String::from_utf8_lossy(&body).into_owned())
    }

    #[test]
    fn serves_queries_with_provenance_and_timings() {
        let handle = serve(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let addr = handle.local_addr();
        // figure2's upper(2) answers (2,2) with a 4-edge community of
        // min weight 13 (the engine tests' oracle answer).
        let g = figure2_example();
        let q = g.upper(2).0;
        let (status, _, body) = get(addr, &format!("/query?q={q}&alpha=2&beta=2&algo=peel"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"edges\":4"), "{body}");
        assert!(body.contains("\"min_weight\":13"), "{body}");
        assert!(body.contains("\"cached\":false"), "{body}");
        assert!(body.contains("\"epoch\":0"), "{body}");
        assert!(body.contains("\"service_us\":"), "{body}");
        assert!(body.contains("\"total_us\":"), "{body}");
        // Same key again: the engine's cache answers.
        let (status, _, body) = get(addr, &format!("/query?q={q}&alpha=2&beta=2&algo=peel"));
        assert_eq!(status, 200);
        assert!(body.contains("\"cached\":true"), "{body}");
        let fin = handle.stop();
        assert_eq!(fin.admitted, 2);
        assert_eq!(fin.served, 2);
        assert_eq!(fin.shed_after_admit, 0);
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let handle = serve(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let q = figure2_example().upper(2).0;
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        for i in 0..3 {
            write!(
                s,
                "GET /query?q={q}&alpha=1&beta={} HTTP/1.1\r\nHost: x\r\n\r\n",
                i + 1
            )
            .unwrap();
            let (status, _, body) = read_reply(&mut s);
            assert_eq!(status, 200, "request {i}: {body}");
        }
        drop(s);
        let fin = handle.stop();
        assert_eq!(fin.admitted, 3);
        assert_eq!(fin.served, 3);
    }

    #[test]
    fn pipelined_requests_all_get_replies() {
        let handle = serve(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let q = figure2_example().upper(2).0;
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        // Two requests in one write: the head reader must retain the
        // bytes past the first `\r\n\r\n` instead of discarding them.
        write!(
            s,
            "GET /query?q={q}&alpha=1&beta=1 HTTP/1.1\r\nHost: x\r\n\r\n\
             GET /query?q={q}&alpha=1&beta=2 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (status1, _, body1) = read_reply(&mut s);
        assert_eq!(status1, 200, "{body1}");
        assert!(body1.contains("\"beta\":1"), "{body1}");
        let (status2, _, body2) = read_reply(&mut s);
        assert_eq!(status2, 200, "{body2}");
        assert!(body2.contains("\"beta\":2"), "{body2}");
        let fin = handle.stop();
        assert_eq!(fin.admitted, 2);
        assert_eq!(fin.served, 2);
    }

    #[test]
    fn url_decode_is_utf8_not_latin1() {
        assert_eq!(url_decode("caf%C3%A9").as_deref(), Some("café"));
        assert_eq!(url_decode("a+b%20c").as_deref(), Some("a b c"));
        // A bare 0xFF is valid percent-encoding but invalid UTF-8:
        // reject, don't replace (distinct raw names must not collide).
        assert_eq!(url_decode("%ff"), None);
        assert_eq!(url_decode("%zz"), None);
        assert_eq!(url_decode("%a"), None);
    }

    #[test]
    fn closed_connections_are_pruned_not_leaked() {
        let handle = serve(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let addr = handle.local_addr();
        let q = figure2_example().upper(2).0;
        for _ in 0..20 {
            let (status, _, _) = get(addr, &format!("/query?q={q}&alpha=1&beta=1"));
            assert_eq!(status, 200);
        }
        // Each `Connection: close` request above ended its connection;
        // the socket-clone map must drain as the threads exit (that
        // clone is the duplicated fd a long-running server would
        // otherwise leak per connection)…
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline && !handle.inner.conns.lock().unwrap().is_empty() {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            handle.inner.conns.lock().unwrap().is_empty(),
            "socket clones leaked after connections closed"
        );
        // …and subsequent accepts must reap the finished join handles
        // (each probe below adds one live entry and sweeps the dead).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (status, _, _) = get(addr, "/healthz");
            assert_eq!(status, 200);
            let n = handle.inner.conn_joins.lock().unwrap().len();
            if n <= 2 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "join handles not reaped: {n} still tracked"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.stop();
    }

    #[test]
    fn bad_requests_get_400s_not_panics() {
        let handle = serve(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let addr = handle.local_addr();
        for target in [
            "/query",
            "/query?q=abc&alpha=1&beta=1",
            "/query?q=1&alpha=1",
            "/query?q=1&alpha=1&beta=1&algo=quantum",
            "/query?q=1&alpha=1&beta=1&deadline_ms=soon",
        ] {
            let (status, _, body) = get(addr, target);
            assert_eq!(status, 400, "{target} → {body}");
        }
        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        // Admission ledger untouched by rejected requests.
        let fin = handle.stop();
        assert_eq!(fin.admitted, 0);
        assert_eq!(fin.served, 0);
    }

    #[test]
    fn tenant_quota_rejects_with_retry_after() {
        let handle = serve(ServiceConfig {
            workers: 1,
            tenant_rate: 1,
            tenant_burst: 2,
            ..ServiceConfig::default()
        });
        let addr = handle.local_addr();
        let q = figure2_example().upper(2).0;
        let mut statuses = Vec::new();
        for _ in 0..4 {
            let (status, headers, body) =
                get(addr, &format!("/query?q={q}&alpha=2&beta=2&tenant=acme"));
            if status == 429 {
                assert!(
                    headers.iter().any(|h| h.starts_with("Retry-After:")),
                    "429 without Retry-After: {headers:?}"
                );
                assert!(body.contains("retry_after_ms"), "{body}");
            }
            statuses.push(status);
        }
        assert_eq!(
            statuses.iter().filter(|&&s| s == 200).count(),
            2,
            "burst of 2 admits exactly 2 immediately: {statuses:?}"
        );
        assert_eq!(statuses.iter().filter(|&&s| s == 429).count(), 2);
        // An anonymous request is exempt from tenant quotas.
        let (status, _, _) = get(addr, &format!("/query?q={q}&alpha=2&beta=2"));
        assert_eq!(status, 200);
        let fin = handle.stop();
        assert_eq!(fin.quota_rejected, 2);
        assert_eq!(fin.admitted, 3);
    }

    #[test]
    fn metrics_and_stats_expose_admission_counters() {
        let handle = serve(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let addr = handle.local_addr();
        let q = figure2_example().upper(2).0;
        let (status, _, _) = get(addr, &format!("/query?q={q}&alpha=2&beta=2"));
        assert_eq!(status, 200);
        let (status, _, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        crate::telemetry::validate_prometheus(&metrics).expect("served metrics must validate");
        assert!(
            metrics.contains("scs_admission_admitted_total 1"),
            "{metrics}"
        );
        assert!(metrics.contains("scs_admission_shed_total 0"));
        assert!(metrics.contains("scs_admission_quota_rejected_total 0"));
        // The accept stage is recorded on the socket path.
        assert!(metrics.contains("stage=\"accept\""));
        let (status, _, table) = get(addr, "/stats");
        assert_eq!(status, 200);
        assert!(table.contains("admitted"), "{table}");
        handle.stop();
    }

    #[test]
    fn deadline_batcher_forms_multi_request_batches() {
        // A generous deadline and concurrent clients: the batcher must
        // merge compatible requests into engine batch jobs.
        let config = ServiceConfig {
            workers: 2,
            batch_deadline_ms: 50,
            batch_max: 64,
            ..ServiceConfig::default()
        };
        let handle = serve(config);
        let addr = handle.local_addr();
        let g = figure2_example();
        let n_upper = g.n_upper();
        let clients: Vec<_> = (0..8u32)
            .map(|c| {
                std::thread::spawn(move || {
                    let q = figure2_example().upper(c as usize % n_upper).0;
                    let (status, _, _) = get(addr, &format!("/query?q={q}&alpha=1&beta=1"));
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let stats = handle.stats();
        assert!(
            stats.batches > 0,
            "batcher formed no engine batches: {stats:?}"
        );
        assert!(
            stats.batched >= 2,
            "no multi-request batch formed (batched = {})",
            stats.batched
        );
        let fin = handle.stop();
        assert_eq!(fin.admitted, 8);
        assert_eq!(fin.served + fin.shed_after_admit, 8);
        assert!(fin.deadline_flushes + fin.size_flushes > 0);
    }
}
