//! Zero-allocation service telemetry: per-stage latency attribution,
//! per-algorithm × per-stage lock-free histograms, a fixed-capacity
//! slow-query ring, and machine-readable exporters (Prometheus text,
//! schema-versioned bench JSON).
//!
//! ## Design constraints
//!
//! The serving hot path proves **zero heap allocations per warm leader
//! query** (`tests/alloc_free_service.rs`), and telemetry is on by
//! default — so every recording structure is preallocated at engine
//! construction and every record operation is a handful of relaxed
//! atomic adds (histograms) or a bounded seqlock write (slow-query
//! ring). Reading — snapshots, quantiles, exporters — may allocate; it
//! happens off the hot path, in `stats()` / `render_metrics()` callers.
//!
//! ## Stage attribution
//!
//! A request's end-to-end latency (enqueue → reply handed back) is
//! split into six stages ([`Stage`]). On the per-request path the
//! worker's [`StageRecorder`] checkpoint-tiles the whole interval, so
//! stage sums reconcile with the total to within per-stage truncation
//! (≤ 1µs per recorded stage — asserted by `tests/telemetry_stress.rs`).
//! On the batched path the batch-wide phases (queue wait, snapshot
//! acquire) are measured once and attributed to every request they
//! covered, the per-key phases (cache lookup, kernel run, publish) are
//! measured per key or per unit, and unattributed gaps (e.g. waiting
//! for a sibling sub-batch) are left out — so batched stage sums are a
//! **lower bound** on the total (`Σ stages ≤ total`), never an
//! overcount of any single wall-clock interval. For coalesced
//! requests the kernel stage is the wait on the leader's computation.
//! The reply stage (handing the pooled response back to the submitter)
//! is only measurable on the per-request path; batch entries leave it
//! untouched rather than guessing.

use crate::stats::{HistSnapshot, LatencyHistogram, ServiceStats, ShardStats};
use crate::QueryRequest;
use scs::Algorithm;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of fixed stages every request's latency is split into.
pub const N_STAGES: usize = 7;

/// Number of algorithms telemetry is keyed by (the
/// [`Algorithm::ALL`] order).
pub const N_ALGOS: usize = Algorithm::ALL.len();

/// Dense rank of an algorithm in [`Algorithm::ALL`] — the index into
/// every per-algorithm telemetry array.
pub fn algo_rank(algo: Algorithm) -> usize {
    match algo {
        Algorithm::Auto => 0,
        Algorithm::Peel => 1,
        Algorithm::Expand => 2,
        Algorithm::Binary => 3,
        Algorithm::Baseline => 4,
    }
}

/// One fixed stage of a request's lifetime. Also the index into
/// per-stage arrays (`stage as usize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Enqueue to dequeue: time spent waiting for a worker.
    QueueWait = 0,
    /// Acquiring the epoch-consistent index snapshot and joining (or
    /// founding) the in-flight table entry.
    Snapshot = 1,
    /// Result-cache probe (and, for batches, the per-key dedup lookup).
    CacheLookup = 2,
    /// Kernel compute — for coalesced requests, the wait on the
    /// leader's computation; for batch members, their unit's batched
    /// kernel run.
    Kernel = 3,
    /// Publishing the result: cache insert, flight publish, response
    /// construction, counters.
    Publish = 4,
    /// Handing the response back to the submitter (per-request
    /// submissions only).
    Reply = 5,
    /// Socket accept → engine enqueue: HTTP parse, admission control
    /// and deadline-batch accumulation in [`crate::server`]. Only the
    /// network front end records it — the in-process path never touches
    /// this stage, so the zero-allocation warm-path proof is unchanged.
    Accept = 6,
}

impl Stage {
    /// Every stage, in array-index order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::QueueWait,
        Stage::Snapshot,
        Stage::CacheLookup,
        Stage::Kernel,
        Stage::Publish,
        Stage::Reply,
        Stage::Accept,
    ];

    /// Canonical machine name — used as the Prometheus `stage` label,
    /// the JSON key, and the stats-table row header.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Snapshot => "snapshot",
            Stage::CacheLookup => "cache_lookup",
            Stage::Kernel => "kernel",
            Stage::Publish => "publish",
            Stage::Reply => "reply",
            Stage::Accept => "accept",
        }
    }

    fn bit(self) -> u8 {
        1 << (self as usize)
    }
}

/// How a request reached the engine — retained in the slow-query ring
/// so a pathological latency can be traced to its submission shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Per-request submission (`submit` / `query`).
    Single = 0,
    /// Member of a batch job served inline by one worker.
    Batch = 1,
    /// Member of a batch whose leader computations were split into
    /// sub-batches across the pool.
    Split = 2,
}

impl Provenance {
    /// Human/machine name.
    pub fn name(self) -> &'static str {
        match self {
            Provenance::Single => "single",
            Provenance::Batch => "batch",
            Provenance::Split => "split",
        }
    }

    fn from_u8(v: u8) -> Provenance {
        match v {
            1 => Provenance::Batch,
            2 => Provenance::Split,
            _ => Provenance::Single,
        }
    }
}

/// Five-number latency summary derived from one histogram snapshot —
/// the building block of [`ServiceStats`]' stage and algorithm tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples summarised.
    pub count: u64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Interpolated median, µs.
    pub p50_us: u64,
    /// Interpolated 99th percentile, µs.
    pub p99_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// The all-zero summary.
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_us: 0.0,
            p50_us: 0,
            p99_us: 0,
            max_us: 0,
        }
    }
}

/// Per-algorithm latency: end-to-end summary plus the per-stage split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoStats {
    /// Which algorithm.
    pub algo: Algorithm,
    /// End-to-end latency (enqueue → recorded) of requests served with
    /// this algorithm.
    pub total: LatencySummary,
    /// Per-stage summaries, indexed by [`Stage`]. A stage's count can
    /// be below `total.count`: only stages a request actually passed
    /// through are recorded (a cache hit has no kernel stage).
    pub stages: [LatencySummary; N_STAGES],
}

impl AlgoStats {
    /// The empty stats row for `algo`.
    pub fn empty(algo: Algorithm) -> Self {
        AlgoStats {
            algo,
            total: LatencySummary::empty(),
            stages: [LatencySummary::empty(); N_STAGES],
        }
    }
}

/// One retained worst-case request, as read back from the slow-query
/// ring: the full key, provenance and stage breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowQuery {
    /// Query vertex (raw id).
    pub q: u32,
    /// α degree constraint.
    pub alpha: u32,
    /// β degree constraint.
    pub beta: u32,
    /// Second-step algorithm.
    pub algo: Algorithm,
    /// Index epoch that served it.
    pub epoch: u64,
    /// Submission shape.
    pub provenance: Provenance,
    /// Served from the result cache.
    pub cached: bool,
    /// Waited on an identical in-flight computation.
    pub coalesced: bool,
    /// End-to-end latency, µs.
    pub total_us: u64,
    /// Per-stage attribution, µs, indexed by [`Stage`]. Stages the
    /// request never entered are 0.
    pub stages_us: [u64; N_STAGES],
}

impl fmt::Display for SlowQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}µs q={} (α={},β={}) algo={} epoch={} {}",
            self.total_us,
            self.q,
            self.alpha,
            self.beta,
            self.algo.name(),
            self.epoch,
            self.provenance.name(),
        )?;
        if self.cached {
            write!(f, " cached")?;
        }
        if self.coalesced {
            write!(f, " coalesced")?;
        }
        for stage in Stage::ALL {
            write!(f, " {}={}", stage.name(), self.stages_us[stage as usize])?;
        }
        Ok(())
    }
}

/// Everything [`Telemetry::record`] needs about one completed request.
/// Built on the stack (engine hot path — no allocation) either from a
/// [`StageRecorder`] (per-request path) or a [`StageSet`] (batched
/// attribution).
#[derive(Debug, Clone, Copy)]
pub struct RequestTrace {
    /// Query vertex (raw id).
    pub q: u32,
    /// α degree constraint.
    pub alpha: u32,
    /// β degree constraint.
    pub beta: u32,
    /// Second-step algorithm.
    pub algo: Algorithm,
    /// Index epoch that served it.
    pub epoch: u64,
    /// Submission shape.
    pub provenance: Provenance,
    /// Served from the result cache.
    pub cached: bool,
    /// Waited on an identical in-flight computation.
    pub coalesced: bool,
    /// End-to-end latency, µs.
    pub total_us: u64,
    /// Per-stage attribution, µs.
    pub stages_us: [u64; N_STAGES],
    /// Bitmask of stages the request actually passed through — only
    /// these are recorded into the per-stage histograms, so a 0µs cache
    /// lookup still counts while an absent kernel stage does not.
    pub touched: u8,
}

/// Explicit stage attribution for the batched path: set the stages you
/// measured, leave the rest untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageSet {
    stages_us: [u64; N_STAGES],
    touched: u8,
}

impl StageSet {
    /// No stages attributed yet.
    pub fn new() -> Self {
        StageSet::default()
    }

    /// Attributes `us` microseconds to `stage` (marking it touched —
    /// call with 0 for a stage that ran but took under a microsecond).
    pub fn set(&mut self, stage: Stage, us: u64) -> &mut Self {
        self.stages_us[stage as usize] = us;
        self.touched |= stage.bit();
        self
    }

    /// Assembles the trace for one request.
    #[allow(clippy::too_many_arguments)]
    pub fn trace(
        &self,
        req: &QueryRequest,
        epoch: u64,
        cached: bool,
        coalesced: bool,
        provenance: Provenance,
        total_us: u64,
    ) -> RequestTrace {
        RequestTrace {
            q: req.q.0,
            alpha: req.alpha,
            beta: req.beta,
            algo: req.algo,
            epoch,
            provenance,
            cached,
            coalesced,
            total_us,
            stages_us: self.stages_us,
            touched: self.touched,
        }
    }
}

/// Per-worker stage stopwatch for the per-request path. Preallocated
/// (plain scalars, no heap) and reused across requests.
///
/// Usage: [`Self::start`] at dequeue (attributing the queue wait),
/// then [`Self::mark`] at each stage boundary — the elapsed time since
/// the previous checkpoint is attributed to the finished stage.
/// Internally nanoseconds, so the µs stage sums reconcile with
/// [`Self::total_us`] to within 1µs truncation per marked stage.
#[derive(Debug)]
pub struct StageRecorder {
    stage_ns: [u64; N_STAGES],
    touched: u8,
    queue_us: u64,
    start: Instant,
    last: Instant,
}

impl Default for StageRecorder {
    fn default() -> Self {
        let now = Instant::now();
        StageRecorder {
            stage_ns: [0; N_STAGES],
            touched: 0,
            queue_us: 0,
            start: now,
            last: now,
        }
    }
}

impl StageRecorder {
    /// Fresh recorder (equivalent to `default()`).
    pub fn new() -> Self {
        StageRecorder::default()
    }

    /// Resets and starts timing a request that was enqueued at
    /// `enqueued`; the elapsed wait becomes the queue-wait stage.
    pub fn start(&mut self, enqueued: Instant) {
        let now = Instant::now();
        self.start_with_queue_us(dur_us(now.saturating_duration_since(enqueued)));
    }

    /// Resets and starts timing with an externally measured queue wait
    /// (the batched path measures it once per batch).
    pub fn start_with_queue_us(&mut self, queue_us: u64) {
        let now = Instant::now();
        self.stage_ns = [0; N_STAGES];
        self.touched = Stage::QueueWait.bit();
        self.queue_us = queue_us;
        self.start = now;
        self.last = now;
    }

    /// Attributes the time since the previous checkpoint to `stage`
    /// and advances the checkpoint.
    pub fn mark(&mut self, stage: Stage) {
        let now = Instant::now();
        self.stage_ns[stage as usize] += dur_ns(now.saturating_duration_since(self.last));
        self.touched |= stage.bit();
        self.last = now;
    }

    /// Total attributed time: queue wait plus everything up to the
    /// last checkpoint, µs.
    pub fn total_us(&self) -> u64 {
        self.queue_us + dur_us(self.last.saturating_duration_since(self.start))
    }

    /// Assembles the trace for the request just recorded.
    pub fn trace(
        &self,
        req: &QueryRequest,
        epoch: u64,
        cached: bool,
        coalesced: bool,
        provenance: Provenance,
    ) -> RequestTrace {
        let mut stages_us = [0u64; N_STAGES];
        for (i, ns) in self.stage_ns.iter().enumerate() {
            stages_us[i] = ns / 1_000;
        }
        stages_us[Stage::QueueWait as usize] = self.queue_us;
        RequestTrace {
            q: req.q.0,
            alpha: req.alpha,
            beta: req.beta,
            algo: req.algo,
            epoch,
            provenance,
            cached,
            coalesced,
            total_us: self.total_us(),
            stages_us,
            touched: self.touched,
        }
    }
}

fn dur_us(d: std::time::Duration) -> u64 {
    d.as_micros() as u64
}

fn dur_ns(d: std::time::Duration) -> u64 {
    d.as_nanos() as u64
}

/// The engine's preallocated telemetry plane: per-algorithm end-to-end
/// and per-stage histograms, the slow-query ring, and event counters.
/// Recording ([`Self::record`]) is lock-free and allocation-free;
/// reading allocates and belongs in stats/exporter paths.
#[derive(Debug)]
pub struct Telemetry {
    stage_hists: [[LatencyHistogram; N_STAGES]; N_ALGOS],
    total_hists: [LatencyHistogram; N_ALGOS],
    ring: SlowRing,
    installs: AtomicU64,
    stale_publishes: AtomicU64,
}

impl Telemetry {
    /// Allocates every recording structure up front. `slow_ring_capacity`
    /// is the number of worst-case requests retained (0 disables the
    /// ring; recording then skips it entirely).
    pub fn new(slow_ring_capacity: usize) -> Self {
        Telemetry {
            stage_hists: std::array::from_fn(|_| {
                std::array::from_fn(|_| LatencyHistogram::default())
            }),
            total_hists: std::array::from_fn(|_| LatencyHistogram::default()),
            ring: SlowRing::new(slow_ring_capacity),
            installs: AtomicU64::new(0),
            stale_publishes: AtomicU64::new(0),
        }
    }

    /// Records one completed request: its end-to-end latency into the
    /// per-algorithm histogram, each touched stage into the
    /// per-algorithm × per-stage histogram, and an offer to the
    /// slow-query ring. Atomic adds and a bounded seqlock write — no
    /// locks, no allocation.
    // scs-contract: no-alloc, no-block — recording sits on every
    // request's exit path: atomic adds and a bounded seqlock write only.
    pub fn record(&self, t: &RequestTrace) {
        let a = algo_rank(t.algo);
        self.total_hists[a].record(t.total_us);
        for stage in Stage::ALL {
            if t.touched & stage.bit() != 0 {
                self.stage_hists[a][stage as usize].record(t.stages_us[stage as usize]);
            }
        }
        self.ring.offer(t);
    }

    /// Counts one index install (epoch retirement).
    // scs-contract: no-alloc, no-block
    pub fn note_install(&self) {
        // ordering: Relaxed — independent statistic; pairs with nothing,
        // snapshot tolerates being a few counts behind.
        self.installs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one leader result whose epoch was retired before it could
    /// be cached.
    // scs-contract: no-alloc, no-block
    pub fn note_stale_publish(&self) {
        // ordering: Relaxed — independent statistic; see `note_install`.
        self.stale_publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every histogram and counter (not the ring
    /// — see [`Self::slow_queries`]).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stage: std::array::from_fn(|a| {
                std::array::from_fn(|s| self.stage_hists[a][s].snapshot())
            }),
            total: std::array::from_fn(|a| self.total_hists[a].snapshot()),
            // ordering: Relaxed — statistics reads; each counter is
            // independent, no cross-field consistency is promised.
            installs: self.installs.load(Ordering::Relaxed),
            stale_publishes: self.stale_publishes.load(Ordering::Relaxed),
        }
    }

    /// The retained worst requests, worst-first. Allocates the output
    /// vector — reading belongs off the hot path.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        let mut out = Vec::with_capacity(self.ring.capacity());
        self.ring.snapshot_into(&mut out);
        out
    }

    /// Records one network-front-end accept window (socket accept →
    /// engine enqueue) into the per-algorithm [`Stage::Accept`]
    /// histogram. The end-to-end total histogram is untouched — the
    /// engine records that when the request completes, and double
    /// counting would skew every quantile. Only [`crate::server`] calls
    /// this; the in-process path never records the stage, so the warm
    /// leader path's zero-allocation proof is unaffected.
    pub fn record_accept(&self, algo: Algorithm, accept_us: u64) {
        self.stage_hists[algo_rank(algo)][Stage::Accept as usize].record(accept_us);
    }

    /// Starts a fresh slow-query window: clears every ring slot and
    /// re-arms the reject threshold (see [`SlowRing::reset_window`]).
    /// Called by the engine's windowed stats rollover so a fast window
    /// after a slow warmup still captures its own spikes.
    pub fn reset_slow_window(&self) {
        self.ring.reset_window();
    }

    /// `(count, sum_us)` over every kernel-stage sample recorded so
    /// far, across all algorithms. Two relaxed loads per algorithm —
    /// cheap enough for the batch path to read per submission when
    /// sizing sub-batches from the observed per-leader kernel cost.
    pub fn kernel_cost_us(&self) -> (u64, u64) {
        let mut count = 0u64;
        let mut sum = 0u64;
        for a in 0..N_ALGOS {
            let h = &self.stage_hists[a][Stage::Kernel as usize];
            count += h.count();
            sum += h.sum_us();
        }
        (count, sum)
    }
}

/// Plain-value copy of a [`Telemetry`]'s histograms and counters:
/// subtractable for windowed stats, and the input of the exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// `stage[algo_rank][stage]` histograms.
    pub stage: [[HistSnapshot; N_STAGES]; N_ALGOS],
    /// Per-algorithm end-to-end latency histograms.
    pub total: [HistSnapshot; N_ALGOS],
    /// Index installs so far.
    pub installs: u64,
    /// Stale publishes so far.
    pub stale_publishes: u64,
}

impl TelemetrySnapshot {
    /// The all-zero snapshot (the baseline of the first window).
    pub fn empty() -> Self {
        TelemetrySnapshot {
            stage: [[HistSnapshot::empty(); N_STAGES]; N_ALGOS],
            total: [HistSnapshot::empty(); N_ALGOS],
            installs: 0,
            stale_publishes: 0,
        }
    }

    /// `self − prev`: the telemetry recorded between two snapshots.
    pub fn delta(&self, prev: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stage: std::array::from_fn(|a| {
                std::array::from_fn(|s| self.stage[a][s].delta(&prev.stage[a][s]))
            }),
            total: std::array::from_fn(|a| self.total[a].delta(&prev.total[a])),
            installs: self.installs.saturating_sub(prev.installs),
            stale_publishes: self.stale_publishes.saturating_sub(prev.stale_publishes),
        }
    }

    /// True when `self` cannot be a later observation of the same
    /// monotone counters as `baseline`: some histogram bucket, count or
    /// sum, or a plain counter, went backwards. See
    /// [`HistSnapshot::regressed_from`] — the windowed-stats rollover
    /// uses this to resnapshot instead of computing a nonsense
    /// saturated delta.
    pub fn regressed_from(&self, baseline: &TelemetrySnapshot) -> bool {
        for a in 0..N_ALGOS {
            if self.total[a].regressed_from(&baseline.total[a]) {
                return true;
            }
            for s in 0..N_STAGES {
                if self.stage[a][s].regressed_from(&baseline.stage[a][s]) {
                    return true;
                }
            }
        }
        self.installs < baseline.installs || self.stale_publishes < baseline.stale_publishes
    }

    /// Element-wise union of two snapshots: histograms merge
    /// bucket-wise and `stale_publishes` adds, but `installs` takes the
    /// max — an install fans out to every shard of a sharded engine, so
    /// summing per-shard planes would multiply-count each install by
    /// the shard count.
    pub fn merge(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stage: std::array::from_fn(|a| {
                std::array::from_fn(|s| self.stage[a][s].merge(&other.stage[a][s]))
            }),
            total: std::array::from_fn(|a| self.total[a].merge(&other.total[a])),
            installs: self.installs.max(other.installs),
            stale_publishes: self.stale_publishes + other.stale_publishes,
        }
    }

    /// Per-stage summaries aggregated over every algorithm (the stats
    /// table's stage-breakdown section).
    pub fn stage_summaries(&self) -> [LatencySummary; N_STAGES] {
        std::array::from_fn(|s| {
            let mut merged = HistSnapshot::empty();
            for a in 0..N_ALGOS {
                merged = merged.merge(&self.stage[a][s]);
            }
            merged.summary()
        })
    }

    /// Per-algorithm stats rows, in [`Algorithm::ALL`] order.
    pub fn algo_stats(&self) -> [AlgoStats; N_ALGOS] {
        std::array::from_fn(|a| AlgoStats {
            algo: Algorithm::ALL[a],
            total: self.total[a].summary(),
            stages: std::array::from_fn(|s| self.stage[a][s].summary()),
        })
    }
}

/// One slow-query ring slot: a seqlock (even `seq` = stable, odd =
/// being written) around relaxed plain-value fields. `total_us == 0`
/// means the slot has never been filled.
#[derive(Debug)]
struct RingSlot {
    seq: AtomicU64,
    total_us: AtomicU64,
    /// `q << 32 | alpha`.
    lo: AtomicU64,
    /// `beta << 32 | algo << 16 | provenance << 8 | flags`
    /// (bit 0 cached, bit 1 coalesced).
    mid: AtomicU64,
    epoch: AtomicU64,
    stages: [AtomicU64; N_STAGES],
}

impl RingSlot {
    fn new() -> Self {
        RingSlot {
            seq: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            lo: AtomicU64::new(0),
            mid: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            stages: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Fixed-capacity lock-free "keep the K worst" ring. Writers replace
/// the current minimum when they beat it; a cached copy of that
/// minimum makes the common case (request not slow enough) one relaxed
/// load. Insertion is best-effort under contention: a writer that
/// loses its CAS race a few times drops its offer rather than spin —
/// the ring is diagnostics, not accounting, and under a race the slot
/// was just taken by a comparably slow request.
#[derive(Debug)]
struct SlowRing {
    slots: Box<[RingSlot]>,
    /// Lower bound on the smallest retained `total_us` (0 while any
    /// slot is empty or a write is in flight) — the reject fast path.
    threshold: AtomicU64,
}

impl SlowRing {
    fn new(capacity: usize) -> Self {
        SlowRing {
            slots: (0..capacity).map(|_| RingSlot::new()).collect(),
            threshold: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    // scs-contract: no-alloc, no-block — the writer side of the seqlock
    // ring runs on every request's exit path; only `snapshot_into` (not
    // under contract) may allocate.
    fn offer(&self, t: &RequestTrace) {
        if self.slots.is_empty() || t.total_us == 0 {
            return;
        }
        // ordering: Relaxed — `threshold` is a monotone hint, not a gate;
        // a stale read only costs a redundant scan below.
        if t.total_us <= self.threshold.load(Ordering::Relaxed) {
            return;
        }
        let flags = u64::from(t.cached) | (u64::from(t.coalesced) << 1);
        let lo = (u64::from(t.q) << 32) | u64::from(t.alpha);
        let mid = (u64::from(t.beta) << 32)
            | ((algo_rank(t.algo) as u64) << 16)
            | ((t.provenance as u64) << 8)
            | flags;
        for _attempt in 0..4 {
            // Victim: the stable slot holding the smallest total.
            let mut min_i = usize::MAX;
            let mut min_total = u64::MAX;
            for (i, s) in self.slots.iter().enumerate() {
                // ordering: Acquire on `seq` pairs with the Release
                // publish in `offer`; an even value makes the writer's
                // stores below visible to this scan.
                if s.seq.load(Ordering::Acquire) & 1 == 1 {
                    continue;
                }
                // ordering: Relaxed — ordered by the Acquire `seq` load
                // above; the CAS re-validates the victim anyway.
                let st = s.total_us.load(Ordering::Relaxed);
                if st < min_total {
                    min_total = st;
                    min_i = i;
                }
            }
            if min_i == usize::MAX {
                return; // every slot mid-write; drop the offer
            }
            if t.total_us <= min_total {
                // The ring already retains K requests at least this
                // slow; remember that so future offers reject in one
                // load.
                // ordering: Relaxed — hint store; see the fast-path load.
                self.threshold.store(min_total, Ordering::Relaxed);
                return;
            }
            let s = &self.slots[min_i];
            // ordering: Acquire pairs with the Release publish so the
            // stability re-check below sees the victim's settled fields.
            let seq = s.seq.load(Ordering::Acquire);
            // ordering: Relaxed re-check — ordered by the Acquire above.
            if seq & 1 == 1 || s.total_us.load(Ordering::Relaxed) != min_total {
                continue; // raced; re-scan
            }
            // ordering: Acquire on success pairs with the previous
            // writer's Release publish of `seq`; Relaxed on failure —
            // a lost race just re-scans.
            if s.seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // Regression note: without the fence below the data stores
            // could be reordered ahead of the odd-sequence announcement
            // on weakly-ordered hardware, letting a concurrent reader
            // pass its seq1 == seq2 check while observing a half-written
            // slot — exactly the torn read the seqlock exists to prevent
            // (modelled by `Seqlock::buggy()` in scs-interleave, caught
            // by TSan on the nightly job).
            //
            // ordering: Release fence pairs with the readers' Acquire
            // loads of `seq` (in `read_slot` and the victim scan): the
            // odd `seq` from the CAS above must become visible before
            // any of the Relaxed data stores below.
            std::sync::atomic::fence(Ordering::Release);
            // ordering: Relaxed data stores — fenced off from the odd
            // `seq` above and published by the Release store below.
            s.total_us.store(t.total_us, Ordering::Relaxed);
            s.lo.store(lo, Ordering::Relaxed);
            s.mid.store(mid, Ordering::Relaxed);
            s.epoch.store(t.epoch, Ordering::Relaxed);
            for (slot, &us) in s.stages.iter().zip(t.stages_us.iter()) {
                // ordering: Relaxed — same data-store batch as above.
                slot.store(us, Ordering::Relaxed);
            }
            // ordering: Release publish pairs with readers' Acquire
            // loads of `seq`, sealing the data stores above.
            s.seq.store(seq + 2, Ordering::Release);
            self.refresh_threshold();
            return;
        }
    }

    // scs-contract: no-alloc, no-block — runs inside `offer`.
    fn refresh_threshold(&self) {
        let mut min = u64::MAX;
        for s in &self.slots {
            // ordering: Acquire on `seq` pairs with the Release publish
            // in `offer`, ordering the `total_us` load below.
            if s.seq.load(Ordering::Acquire) & 1 == 1 {
                // A write is in flight; its final total is unknown, so
                // publish the conservative "accept everything" bound.
                // ordering: Relaxed — hint store; see the fast path.
                self.threshold.store(0, Ordering::Relaxed);
                return;
            }
            // ordering: Relaxed — ordered by the Acquire `seq` load.
            min = min.min(s.total_us.load(Ordering::Relaxed));
        }
        if min != u64::MAX {
            // ordering: Relaxed — `threshold` is only a reject hint.
            self.threshold.store(min, Ordering::Relaxed);
        }
    }

    /// Window rollover: clears every slot through the regular seqlock
    /// writer protocol and drops the reject threshold back to 0.
    ///
    /// Without this the threshold is a one-way ratchet: `offer` only
    /// ever raises it (to the ring's current minimum), so after a slow
    /// warmup fills the ring with multi-millisecond entries, a
    /// subsequent fast window — whose worst requests are genuinely slow
    /// *for that window* but under the stale bound — records nothing,
    /// forever. Resetting the threshold alone would not fix it: the
    /// first post-reset `offer` re-scans the (still slow) slots and
    /// re-raises the bound, so the slots must be cleared too. A slot
    /// mid-write is skipped — its writer's entry legitimately belongs
    /// to the closing window's tail and will age out on the next reset.
    fn reset_window(&self) {
        for s in &self.slots {
            // ordering: Acquire pairs with the writers' Release publish;
            // an even `seq` means the slot is stable and claimable.
            let seq = s.seq.load(Ordering::Acquire);
            if seq & 1 == 1 {
                continue;
            }
            // Claim the slot exactly like `offer` does so concurrent
            // writers/readers observe a normal write cycle.
            // ordering: Acquire on success pairs with the prior writer's
            // Release publish; Relaxed on failure — a lost race means a
            // concurrent writer owns the slot, skip it.
            if s.seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // ordering: Release fence before the data stores, exactly as
            // in `offer` — the odd `seq` must be visible before the
            // cleared fields.
            std::sync::atomic::fence(Ordering::Release);
            // ordering: Relaxed data stores — sealed by the Release
            // publish below. `total_us == 0` marks the slot empty.
            s.total_us.store(0, Ordering::Relaxed);
            s.lo.store(0, Ordering::Relaxed);
            s.mid.store(0, Ordering::Relaxed);
            s.epoch.store(0, Ordering::Relaxed);
            for slot in &s.stages {
                // ordering: Relaxed — same data-store batch as above.
                slot.store(0, Ordering::Relaxed);
            }
            // ordering: Release publish pairs with readers' Acquire
            // loads of `seq`.
            s.seq.store(seq + 2, Ordering::Release);
        }
        // ordering: Relaxed — `threshold` is only a reject hint; 0
        // accepts everything until the ring refills.
        self.threshold.store(0, Ordering::Relaxed);
    }

    // scs-contract: no-alloc, no-block — the reader side of the seqlock:
    // bounded retries, no locks, plain loads into stack storage.
    fn read_slot(s: &RingSlot) -> Option<SlowQuery> {
        for _ in 0..8 {
            // ordering: Acquire `seq` pairs with the writer's Release
            // publish in `offer`; the data loads below happen-after.
            let seq = s.seq.load(Ordering::Acquire);
            if seq & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // ordering: Relaxed data loads — bracketed by the Acquire
            // `seq` load above and the Acquire fence + re-check below.
            let total_us = s.total_us.load(Ordering::Relaxed);
            let lo = s.lo.load(Ordering::Relaxed);
            let mid = s.mid.load(Ordering::Relaxed);
            let epoch = s.epoch.load(Ordering::Relaxed);
            let mut stages_us = [0u64; N_STAGES];
            for (out, slot) in stages_us.iter_mut().zip(s.stages.iter()) {
                // ordering: Relaxed — same data-load batch as above.
                *out = slot.load(Ordering::Relaxed);
            }
            // ordering: Acquire fence pairs with the writer's Release
            // fence after its odd CAS — the `seq` re-check below may be
            // Relaxed because the fence orders it after the data loads.
            std::sync::atomic::fence(Ordering::Acquire);
            if s.seq.load(Ordering::Relaxed) != seq {
                continue; // torn read; retry
            }
            if total_us == 0 {
                return None; // never filled
            }
            return Some(SlowQuery {
                q: (lo >> 32) as u32,
                alpha: lo as u32,
                beta: (mid >> 32) as u32,
                algo: Algorithm::ALL[((mid >> 16) & 0xff) as usize % N_ALGOS],
                epoch,
                provenance: Provenance::from_u8((mid >> 8) as u8),
                cached: mid & 1 != 0,
                coalesced: mid & 2 != 0,
                total_us,
                stages_us,
            });
        }
        None
    }

    fn snapshot_into(&self, out: &mut Vec<SlowQuery>) {
        for s in self.slots.iter() {
            if let Some(q) = Self::read_slot(s) {
                out.push(q);
            }
        }
        out.sort_by_key(|q| std::cmp::Reverse(q.total_us));
    }
}

// ─── Prometheus text exposition ──────────────────────────────────────

/// Renders the engine's metrics in Prometheus text exposition format
/// (version 0.0.4): every counter in the stats table, the residency
/// gauges, and the per-algorithm / per-algorithm×stage latency
/// histograms with cumulative `le` buckets ending in `+Inf`. Bucket
/// lists are trimmed to the highest occupied bucket (plus `+Inf`), so
/// quiet series stay small; differing `le` sets across series of one
/// family are valid exposition.
pub fn render_prometheus(stats: &ServiceStats, telem: &TelemetrySnapshot) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let mut counter = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter(
        "scs_requests_total",
        "Requests completed since engine start.",
        stats.completed,
    );
    counter(
        "scs_coalesced_total",
        "Requests that waited on an identical in-flight computation.",
        stats.coalesced,
    );
    counter("scs_batches_total", "Batch jobs served.", stats.batches);
    counter(
        "scs_batched_requests_total",
        "Requests that arrived inside a batch job.",
        stats.batched,
    );
    counter(
        "scs_batch_splits_total",
        "Batch jobs split across the worker pool.",
        stats.splits,
    );
    counter(
        "scs_sub_batches_total",
        "Sub-batches carved out of split batch jobs.",
        stats.sub_batches,
    );
    counter(
        "scs_cache_hits_total",
        "Result-cache hits.",
        stats.cache.hits,
    );
    counter(
        "scs_cache_misses_total",
        "Result-cache misses.",
        stats.cache.misses,
    );
    counter(
        "scs_cache_evictions_total",
        "Result-cache LRU evictions (capacity pressure).",
        stats.cache.evictions,
    );
    counter(
        "scs_cache_invalidated_total",
        "Result-cache entries dropped by index installs.",
        stats.cache.invalidated,
    );
    counter(
        "scs_installs_total",
        "Index installs (epoch retirements).",
        telem.installs,
    );
    counter(
        "scs_stale_publishes_total",
        "Leader results retired by an install before caching.",
        telem.stale_publishes,
    );
    counter(
        "scs_allocs_avoided_total",
        "Scratch-buffer acquisitions served from resident workspace memory.",
        stats.allocs_avoided,
    );
    counter(
        "scs_arena_recycles_total",
        "Result-arena slab recycles.",
        stats.arena_recycled,
    );
    counter(
        "scs_admission_admitted_total",
        "Requests admitted past the network front end's pending budget and quotas.",
        stats.admission.admitted,
    );
    counter(
        "scs_admission_served_total",
        "Admitted requests whose reply was written back to the client.",
        stats.admission.served,
    );
    counter(
        "scs_admission_shed_total",
        "Requests shed with 429 because the pending budget was exhausted.",
        stats.admission.shed,
    );
    counter(
        "scs_admission_quota_rejected_total",
        "Requests rejected with 429 by a per-tenant token-bucket quota.",
        stats.admission.quota_rejected,
    );
    counter(
        "scs_admission_shed_after_admit_total",
        "Admitted requests whose reply was never delivered (shutdown drain or dead socket).",
        stats.admission.shed_after_admit,
    );
    counter(
        "scs_admission_deadline_flushes_total",
        "Accumulation buckets flushed into submit_batch by deadline expiry.",
        stats.admission.deadline_flushes,
    );
    counter(
        "scs_admission_size_flushes_total",
        "Accumulation buckets flushed into submit_batch by reaching batch_max.",
        stats.admission.size_flushes,
    );
    let mut gauge = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
        ));
    };
    gauge(
        "scs_workers",
        "Worker threads serving the queue.",
        stats.workers as u64,
    );
    gauge("scs_index_epoch", "Current index epoch.", stats.epoch);
    gauge(
        "scs_cache_entries",
        "Resident result-cache entries.",
        stats.cache.entries as u64,
    );
    gauge(
        "scs_cache_capacity",
        "Configured result-cache entry budget.",
        stats.cache.capacity as u64,
    );
    gauge(
        "scs_scratch_resident_bytes",
        "Resident bytes of reusable query workspaces.",
        stats.scratch_bytes as u64,
    );
    gauge(
        "scs_arena_resident_bytes",
        "Resident bytes of result-arena slabs.",
        stats.arena_bytes as u64,
    );

    // Per-shard families: one series per shard, labeled `shard="N"`.
    // Emitted even for a single shard so dashboards keep a stable
    // query shape across `--shards` values.
    let mut shard_counter = |name: &str, help: &str, pick: &dyn Fn(&ShardStats) -> u64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for row in &stats.per_shard {
            out.push_str(&format!(
                "{name}{{shard=\"{}\"}} {}\n",
                row.shard,
                pick(row)
            ));
        }
    };
    shard_counter(
        "scs_shard_requests_total",
        "Requests completed, by engine shard.",
        &|r| r.completed,
    );
    shard_counter(
        "scs_shard_cache_hits_total",
        "Result-cache hits, by engine shard.",
        &|r| r.cache_hits,
    );
    shard_counter(
        "scs_shard_cache_misses_total",
        "Result-cache misses, by engine shard.",
        &|r| r.cache_misses,
    );
    let mut shard_gauge = |name: &str, help: &str, pick: &dyn Fn(&ShardStats) -> u64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        for row in &stats.per_shard {
            out.push_str(&format!(
                "{name}{{shard=\"{}\"}} {}\n",
                row.shard,
                pick(row)
            ));
        }
    };
    shard_gauge(
        "scs_shard_workers",
        "Worker threads owned by each engine shard.",
        &|r| r.workers as u64,
    );
    shard_gauge(
        "scs_shard_min_sub_batch_effective",
        "Effective sub-batch floor after kernel-cost feedback, by shard.",
        &|r| r.min_sub_batch_effective as u64,
    );

    out.push_str(
        "# HELP scs_request_duration_us End-to-end request latency (enqueue to reply), microseconds.\n\
         # TYPE scs_request_duration_us histogram\n",
    );
    for (a, algo) in Algorithm::ALL.iter().enumerate() {
        let labels = format!("algo=\"{}\"", algo.name());
        render_histogram(
            &mut out,
            "scs_request_duration_us",
            &labels,
            &telem.total[a],
        );
    }
    out.push_str(
        "# HELP scs_stage_duration_us Per-stage request latency attribution, microseconds.\n\
         # TYPE scs_stage_duration_us histogram\n",
    );
    for (a, algo) in Algorithm::ALL.iter().enumerate() {
        for stage in Stage::ALL {
            let labels = format!("algo=\"{}\",stage=\"{}\"", algo.name(), stage.name());
            render_histogram(
                &mut out,
                "scs_stage_duration_us",
                &labels,
                &telem.stage[a][stage as usize],
            );
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &HistSnapshot) {
    let top = (0..HistSnapshot::N_BUCKETS)
        .rev()
        .find(|&i| h.bucket_count(i) > 0);
    let mut cum = 0u64;
    if let Some(top) = top {
        for i in 0..=top {
            cum += h.bucket_count(i);
            match HistSnapshot::bucket_upper_edge(i) {
                Some(le) => out.push_str(&format!("{name}_bucket{{{labels},le=\"{le}\"}} {cum}\n")),
                None => break, // top bucket folds into +Inf below
            }
        }
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels},le=\"+Inf\"}} {}\n{name}_sum{{{labels}}} {}\n{name}_count{{{labels}}} {}\n",
        h.count(),
        h.sum_us(),
        h.count()
    ));
}

/// Validates Prometheus text exposition: parseable lines, legal metric
/// and label names, no unnamed or duplicate series, a `# TYPE` for
/// every sample's family, and well-formed histograms (ascending `le`,
/// non-decreasing cumulative counts, a `+Inf` bucket equal to
/// `_count`). Used by the CLI before writing `--metrics-out` and by CI.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::{HashMap, HashSet};
    let mut types: HashMap<String, String> = HashMap::new();
    let mut seen: HashSet<String> = HashSet::new();
    // (family, labels-minus-le) → ascending (le, cumulative) pairs.
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: &str| Err(format!("line {}: {msg}: {raw}", ln + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(ty)) = (it.next(), it.next()) else {
                return err("malformed TYPE comment");
            };
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                return err("unknown metric type");
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return err("duplicate TYPE for family");
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name, labels, value) =
            parse_sample(line).map_err(|m| format!("line {}: {m}: {raw}", ln + 1))?;
        if value.is_nan() {
            return err("NaN sample value");
        }
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(&name)
            .to_string();
        if !types.contains_key(&family) {
            return err("sample without a # TYPE for its family");
        }
        let mut sorted = labels.clone();
        sorted.sort();
        let series_id = format!("{name}{{{}}}", sorted.join(","));
        if !seen.insert(series_id) {
            return err("duplicate series");
        }
        let le = labels.iter().find_map(|l| l.strip_prefix("le=\""));
        let others: Vec<&String> = labels.iter().filter(|l| !l.starts_with("le=\"")).collect();
        let key = (
            family.clone(),
            others
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(","),
        );
        if name.ends_with("_bucket") && types.get(&family).map(String::as_str) == Some("histogram")
        {
            let Some(le) = le else {
                return err("histogram bucket without an le label");
            };
            let le = le.trim_end_matches('"');
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {}: unparseable le value: {raw}", ln + 1))?
            };
            buckets.entry(key).or_default().push((le, value));
        } else if name.ends_with("_count")
            && types.get(&family).map(String::as_str) == Some("histogram")
        {
            counts.insert(key, value);
        }
    }
    for ((family, labels), series) in &buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_v = 0.0f64;
        for &(le, v) in series {
            if le <= prev_le {
                return Err(format!(
                    "histogram {family}{{{labels}}}: le values not ascending"
                ));
            }
            if v < prev_v {
                return Err(format!(
                    "histogram {family}{{{labels}}}: cumulative counts decrease"
                ));
            }
            prev_le = le;
            prev_v = v;
        }
        let Some(&(last_le, last_v)) = series.last() else {
            continue;
        };
        if last_le != f64::INFINITY {
            return Err(format!(
                "histogram {family}{{{labels}}}: missing +Inf bucket"
            ));
        }
        match counts.get(&(family.clone(), labels.clone())) {
            Some(&c) if c == last_v => {}
            Some(_) => {
                return Err(format!(
                    "histogram {family}{{{labels}}}: +Inf bucket != _count"
                ))
            }
            None => return Err(format!("histogram {family}{{{labels}}}: missing _count")),
        }
    }
    Ok(())
}

/// Parses one sample line into `(name, labels, value)`. Labels are
/// returned as raw `key="value"` strings.
fn parse_sample(line: &str) -> Result<(String, Vec<String>, f64), String> {
    fn is_name_char(c: char, first: bool) -> bool {
        c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
    }
    let mut chars = line.char_indices().peekable();
    let mut name_end = 0;
    for (i, c) in chars.by_ref() {
        if is_name_char(c, i == 0) {
            name_end = i + c.len_utf8();
        } else {
            break;
        }
    }
    if name_end == 0 {
        return Err("unnamed series (sample without a metric name)".into());
    }
    let name = &line[..name_end];
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(inner) = rest.strip_prefix('{') {
        let close = inner.find('}').ok_or("unterminated label set")?;
        let body = &inner[..close];
        let mut labels = Vec::new();
        for part in body.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = part.split_once('=').ok_or("label without =")?;
            if k.is_empty() || !k.chars().enumerate().all(|(i, c)| is_name_char(c, i == 0)) {
                return Err("illegal label name".into());
            }
            if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                return Err("unquoted label value".into());
            }
            labels.push(part.to_string());
        }
        (labels, &inner[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let mut fields = rest.split_whitespace();
    let value = fields.next().ok_or("sample without a value")?;
    let value = if value == "+Inf" {
        f64::INFINITY
    } else if value == "-Inf" {
        f64::NEG_INFINITY
    } else {
        value
            .parse::<f64>()
            .map_err(|_| "unparseable sample value")?
    };
    if fields.next().is_some() {
        return Err("unexpected trailing token (timestamps not emitted)".into());
    }
    Ok((name.to_string(), labels, value))
}

// ─── Bench JSON (schema-versioned perf trajectory) ───────────────────

/// Schema identifier stamped into every `BENCH_service.json`.
pub const BENCH_SCHEMA: &str = "scs-bench-service/v1";

/// Workload and run parameters recorded alongside the measured stats
/// in `BENCH_service.json`, so a trajectory of artifacts is
/// self-describing.
#[derive(Debug, Clone)]
pub struct BenchMeta<'a> {
    /// Dataset path or name the workload was built from.
    pub dataset: &'a str,
    /// Worker threads.
    pub threads: usize,
    /// Engine shards the workers were partitioned across.
    pub shards: usize,
    /// Measured queries (excluding warmup).
    pub queries: usize,
    /// Warmup queries replayed before the measured window.
    pub warmup: usize,
    /// Client threads replaying.
    pub clients: usize,
    /// Batch size (0 = per-request submission).
    pub batch_size: usize,
    /// α degree constraint.
    pub alpha: usize,
    /// β degree constraint.
    pub beta: usize,
    /// Second-step algorithm.
    pub algo: Algorithm,
    /// Fraction of repeated keys in the workload.
    pub repeat_fraction: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Zipf exponent of the key distribution (0 = uniform).
    pub zipf: f64,
    /// Whether adaptive batch splitting was enabled.
    pub split_batches: bool,
    /// Wall-clock seconds of the measured replay.
    pub wall_secs: f64,
}

fn j_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn j_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    format!("{v:.3}")
}

fn j_summary(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        s.count,
        j_f64(s.mean_us),
        s.p50_us,
        s.p99_us,
        s.max_us
    )
}

fn j_stages(stages: &[LatencySummary; N_STAGES]) -> String {
    let body: Vec<String> = Stage::ALL
        .iter()
        .map(|&st| format!("\"{}\":{}", st.name(), j_summary(&stages[st as usize])))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn j_stats(stats: &ServiceStats) -> String {
    let algos: Vec<String> = stats
        .algos
        .iter()
        .map(|a| {
            format!(
                "\"{}\":{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{},\"stages\":{}}}",
                a.algo.name(),
                a.total.count,
                j_f64(a.total.mean_us),
                a.total.p50_us,
                a.total.p99_us,
                a.total.max_us,
                j_stages(&a.stages)
            )
        })
        .collect();
    let slow: Vec<String> = stats
        .slow
        .iter()
        .map(|s| {
            let stages: Vec<String> = Stage::ALL
                .iter()
                .map(|&st| format!("\"{}\":{}", st.name(), s.stages_us[st as usize]))
                .collect();
            format!(
                "{{\"q\":{},\"alpha\":{},\"beta\":{},\"algo\":{},\"epoch\":{},\"provenance\":{},\
                 \"cached\":{},\"coalesced\":{},\"total_us\":{},\"stages_us\":{{{}}}}}",
                s.q,
                s.alpha,
                s.beta,
                j_escape(s.algo.name()),
                s.epoch,
                j_escape(s.provenance.name()),
                s.cached,
                s.coalesced,
                s.total_us,
                stages.join(",")
            )
        })
        .collect();
    format!(
        "{{\"workers\":{},\"completed\":{},\"qps\":{},\
         \"latency_us\":{{\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},\
         \"stages\":{},\"algorithms\":{{{}}},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"capacity\":{},\"evictions\":{},\"invalidated\":{}}},\
         \"events\":{{\"installs\":{},\"stale_publishes\":{},\"epoch\":{}}},\
         \"batching\":{{\"batches\":{},\"batched\":{},\"splits\":{},\"sub_batches\":{},\"coalesced\":{}}},\
         \"memory\":{{\"scratch_bytes\":{},\"arena_bytes\":{},\"allocs_avoided\":{},\"arena_recycled\":{}}},\
         \"slow_queries\":[{}]}}",
        stats.workers,
        stats.completed,
        j_f64(stats.qps),
        j_f64(stats.mean_us),
        stats.p50_us,
        stats.p90_us,
        stats.p99_us,
        stats.max_us,
        j_stages(&stats.stages),
        algos.join(","),
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.entries,
        stats.cache.capacity,
        stats.cache.evictions,
        stats.cache.invalidated,
        stats.installs,
        stats.stale_publishes,
        stats.epoch,
        stats.batches,
        stats.batched,
        stats.splits,
        stats.sub_batches,
        stats.coalesced,
        stats.scratch_bytes,
        stats.arena_bytes,
        stats.allocs_avoided,
        stats.arena_recycled,
        slow.join(",")
    )
}

/// Renders the schema-versioned `BENCH_service.json` artifact:
/// workload parameters, the cumulative run stats, and the steady-state
/// window ([`crate::QueryEngine::stats_window`] deltas excluding
/// warmup). Pretty-printed for reviewable diffs across PRs.
pub fn render_bench_json(
    meta: &BenchMeta<'_>,
    cumulative: &ServiceStats,
    steady: &ServiceStats,
) -> String {
    let compact = format!(
        "{{\"schema\":{},\"bench\":\"serve-bench\",\
         \"workload\":{{\"dataset\":{},\"threads\":{},\"shards\":{},\"queries\":{},\
         \"warmup\":{},\"clients\":{},\"batch_size\":{},\"alpha\":{},\"beta\":{},\
         \"algo\":{},\"repeat_fraction\":{},\"seed\":{},\"zipf\":{},\
         \"split_batches\":{}}},\
         \"wall_secs\":{},\"cumulative\":{},\"steady\":{}}}",
        j_escape(BENCH_SCHEMA),
        j_escape(meta.dataset),
        meta.threads,
        meta.shards,
        meta.queries,
        meta.warmup,
        meta.clients,
        meta.batch_size,
        meta.alpha,
        meta.beta,
        j_escape(meta.algo.name()),
        j_f64(meta.repeat_fraction),
        meta.seed,
        j_f64(meta.zipf),
        meta.split_batches,
        j_f64(meta.wall_secs),
        j_stats(cumulative),
        j_stats(steady)
    );
    let value = json_parse(&compact).expect("render_bench_json must emit valid JSON");
    let mut out = String::with_capacity(compact.len() * 2);
    render_pretty(&value, 0, &mut out);
    out.push('\n');
    out
}

fn render_pretty(v: &JsonValue, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => out.push_str(&fmt_num(*n)),
        JsonValue::Str(s) => out.push_str(&j_escape(s)),
        JsonValue::Arr(items) if items.is_empty() => out.push_str("[]"),
        JsonValue::Arr(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                render_pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        JsonValue::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
        JsonValue::Obj(pairs) => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad_in);
                out.push_str(&j_escape(k));
                out.push_str(": ");
                render_pretty(val, indent + 1, out);
                out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

// ─── Minimal JSON parser (std-only; validation of our own artifacts) ──

/// A parsed JSON value. The repo is std-only (no serde), so the bench
/// artifact is validated with this minimal recursive-descent parser —
/// objects keep insertion order, numbers are f64.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses a JSON document (strict: one value, no trailing garbage).
pub fn json_parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number bytes")?;
            s.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("unparseable number {s:?} at byte {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected {lit} at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape \\{}", esc as char)),
                }
            }
            _ => {
                // Re-sync to the char boundary for multi-byte UTF-8.
                let start = *pos - 1;
                let width = utf8_width(c);
                let end = start + width;
                let s = b.get(start..end).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(s).map_err(|_| "invalid UTF-8")?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Validates a `BENCH_service.json` document against
/// [`BENCH_SCHEMA`]: schema tag, workload parameters, and — for both
/// the cumulative and steady sections — latency quantiles, all six
/// stage summaries, per-algorithm p50/p99 with stage breakdowns, and
/// the cache/event/batching/memory counter blocks.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = json_parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("schema {schema:?} != {BENCH_SCHEMA:?}"));
    }
    let workload = doc.get("workload").ok_or("missing workload")?;
    workload
        .get("dataset")
        .and_then(JsonValue::as_str)
        .ok_or("workload.dataset missing")?;
    for key in [
        "threads",
        "shards",
        "queries",
        "warmup",
        "clients",
        "batch_size",
        "alpha",
        "beta",
        "repeat_fraction",
        "seed",
        "zipf",
    ] {
        workload
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("workload.{key} missing or not a number"))?;
    }
    doc.get("wall_secs")
        .and_then(JsonValue::as_f64)
        .ok_or("wall_secs missing")?;
    for section in ["cumulative", "steady"] {
        let s = doc
            .get(section)
            .ok_or_else(|| format!("missing {section} section"))?;
        validate_stats_obj(s).map_err(|e| format!("{section}: {e}"))?;
    }
    Ok(())
}

fn validate_summary_obj(v: &JsonValue) -> Result<(), String> {
    for key in ["count", "mean_us", "p50_us", "p99_us", "max_us"] {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("summary field {key} missing or not a number"))?;
    }
    Ok(())
}

fn validate_stages_obj(v: &JsonValue) -> Result<(), String> {
    for stage in Stage::ALL {
        let s = v
            .get(stage.name())
            .ok_or_else(|| format!("stage {} missing", stage.name()))?;
        validate_summary_obj(s).map_err(|e| format!("stage {}: {e}", stage.name()))?;
    }
    Ok(())
}

fn validate_stats_obj(v: &JsonValue) -> Result<(), String> {
    for key in ["workers", "completed", "qps"] {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{key} missing or not a number"))?;
    }
    let lat = v.get("latency_us").ok_or("latency_us missing")?;
    for key in ["mean", "p50", "p90", "p99", "max"] {
        lat.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("latency_us.{key} missing"))?;
    }
    validate_stages_obj(v.get("stages").ok_or("stages missing")?)?;
    let algos = v
        .get("algorithms")
        .and_then(JsonValue::as_obj)
        .ok_or("algorithms missing or not an object")?;
    if algos.is_empty() {
        return Err("algorithms object is empty".into());
    }
    for (name, a) in algos {
        validate_summary_obj(a).map_err(|e| format!("algorithm {name}: {e}"))?;
        validate_stages_obj(
            a.get("stages")
                .ok_or_else(|| format!("algorithm {name}: stages missing"))?,
        )
        .map_err(|e| format!("algorithm {name}: {e}"))?;
    }
    for (block, keys) in [
        (
            "cache",
            &[
                "hits",
                "misses",
                "entries",
                "capacity",
                "evictions",
                "invalidated",
            ][..],
        ),
        ("events", &["installs", "stale_publishes", "epoch"][..]),
        (
            "batching",
            &["batches", "batched", "splits", "sub_batches", "coalesced"][..],
        ),
        (
            "memory",
            &[
                "scratch_bytes",
                "arena_bytes",
                "allocs_avoided",
                "arena_recycled",
            ][..],
        ),
    ] {
        let o = v.get(block).ok_or_else(|| format!("{block} missing"))?;
        for key in keys {
            o.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{block}.{key} missing or not a number"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use bigraph::Vertex;

    fn req(q: u32, algo: Algorithm) -> QueryRequest {
        QueryRequest {
            q: Vertex(q),
            alpha: 2,
            beta: 3,
            algo,
        }
    }

    fn trace(q: u32, algo: Algorithm, total_us: u64, kernel_us: u64) -> RequestTrace {
        let mut s = StageSet::new();
        s.set(Stage::QueueWait, 1)
            .set(Stage::CacheLookup, 0)
            .set(Stage::Kernel, kernel_us);
        s.trace(&req(q, algo), 7, false, false, Provenance::Single, total_us)
    }

    fn stats_for(telem: &Telemetry) -> ServiceStats {
        let snap = telem.snapshot();
        let total = snap
            .total
            .iter()
            .fold(HistSnapshot::empty(), |acc, h| acc.merge(h));
        ServiceStats {
            workers: 2,
            completed: total.count(),
            coalesced: 0,
            batches: 1,
            batched: 2,
            splits: 0,
            sub_batches: 0,
            cache: CacheStats {
                hits: 1,
                misses: 2,
                entries: 1,
                capacity: 64,
                shards: 4,
                evictions: 0,
                invalidated: 1,
            },
            epoch: 7,
            installs: snap.installs,
            stale_publishes: snap.stale_publishes,
            qps: 1000.0,
            mean_us: total.mean_us(),
            p50_us: total.quantile_us(0.5),
            p90_us: total.quantile_us(0.9),
            p99_us: total.quantile_us(0.99),
            max_us: total.max_us(),
            scratch_bytes: 4096,
            arena_bytes: 8192,
            allocs_avoided: 10,
            arena_recycled: 1,
            admission: crate::stats::AdmissionStats::default(),
            stages: snap.stage_summaries(),
            algos: snap.algo_stats(),
            slow: telem.slow_queries(),
            per_shard: vec![ShardStats {
                shard: 0,
                workers: 2,
                completed: total.count(),
                coalesced: 0,
                cache_hits: 1,
                cache_misses: 2,
                splits: 0,
                p50_us: total.quantile_us(0.5),
                p99_us: total.quantile_us(0.99),
                min_sub_batch_effective: 8,
            }],
        }
    }

    #[test]
    fn recorder_tiles_the_request_interval() {
        let mut rec = StageRecorder::new();
        rec.start_with_queue_us(5);
        rec.mark(Stage::CacheLookup);
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.mark(Stage::Kernel);
        rec.mark(Stage::Publish);
        let t = rec.trace(
            &req(3, Algorithm::Peel),
            1,
            false,
            false,
            Provenance::Single,
        );
        assert_eq!(t.q, 3);
        assert_eq!(t.alpha, 2);
        assert_eq!(t.beta, 3);
        assert_eq!(t.stages_us[Stage::QueueWait as usize], 5);
        assert!(t.stages_us[Stage::Kernel as usize] >= 2_000);
        assert_eq!(t.touched & Stage::Reply.bit(), 0);
        assert_ne!(t.touched & Stage::CacheLookup.bit(), 0);
        // Stage sums reconcile with the total to ≤1µs truncation per
        // marked stage.
        let sum: u64 = t.stages_us.iter().sum();
        let marked = 4; // queue + cache + kernel + publish
        assert!(sum <= t.total_us, "sum {sum} > total {}", t.total_us);
        assert!(
            sum + marked >= t.total_us,
            "sum {sum} + {marked} < total {}",
            t.total_us
        );
        // Restarting fully resets.
        rec.start_with_queue_us(0);
        let t2 = rec.trace(&req(3, Algorithm::Peel), 1, true, false, Provenance::Single);
        assert_eq!(t2.stages_us[Stage::Kernel as usize], 0);
        assert_eq!(t2.touched, Stage::QueueWait.bit());
    }

    #[test]
    fn record_fills_per_algo_and_per_stage_histograms() {
        let telem = Telemetry::new(4);
        telem.record(&trace(1, Algorithm::Peel, 100, 90));
        telem.record(&trace(2, Algorithm::Peel, 200, 180));
        telem.record(&trace(3, Algorithm::Expand, 50, 40));
        telem.note_install();
        telem.note_stale_publish();
        let snap = telem.snapshot();
        assert_eq!(snap.total[algo_rank(Algorithm::Peel)].count(), 2);
        assert_eq!(snap.total[algo_rank(Algorithm::Expand)].count(), 1);
        assert_eq!(snap.total[algo_rank(Algorithm::Auto)].count(), 0);
        assert_eq!(snap.installs, 1);
        assert_eq!(snap.stale_publishes, 1);
        // Touched stages (even 0µs ones) are histogrammed; untouched
        // stages are not.
        let peel = &snap.stage[algo_rank(Algorithm::Peel)];
        assert_eq!(peel[Stage::CacheLookup as usize].count(), 2);
        assert_eq!(peel[Stage::Kernel as usize].count(), 2);
        assert_eq!(peel[Stage::Reply as usize].count(), 0);
        // Aggregation across algorithms.
        let stages = snap.stage_summaries();
        assert_eq!(stages[Stage::Kernel as usize].count, 3);
        let algos = snap.algo_stats();
        assert_eq!(algos[algo_rank(Algorithm::Peel)].total.count, 2);
        assert_eq!(algos[algo_rank(Algorithm::Peel)].total.max_us, 200);
        // Windowed delta.
        telem.record(&trace(4, Algorithm::Peel, 400, 390));
        let d = telem.snapshot().delta(&snap);
        assert_eq!(d.total[algo_rank(Algorithm::Peel)].count(), 1);
        assert_eq!(d.total[algo_rank(Algorithm::Expand)].count(), 0);
        assert_eq!(d.installs, 0);
    }

    #[test]
    fn ring_retains_the_k_worst() {
        let telem = Telemetry::new(3);
        for (q, us) in [
            (1u32, 50u64),
            (2, 500),
            (3, 10),
            (4, 300),
            (5, 40),
            (6, 900),
        ] {
            telem.record(&trace(q, Algorithm::Auto, us, us));
        }
        let slow = telem.slow_queries();
        assert_eq!(slow.len(), 3);
        let totals: Vec<u64> = slow.iter().map(|s| s.total_us).collect();
        assert_eq!(totals, vec![900, 500, 300]);
        assert_eq!(slow[0].q, 6);
        assert_eq!(slow[0].algo, Algorithm::Auto);
        assert_eq!(slow[0].epoch, 7);
        assert_eq!(slow[0].provenance, Provenance::Single);
        assert_eq!(slow[0].stages_us[Stage::Kernel as usize], 900);
        // A faster request than the retained minimum is rejected (and
        // exercises the cached-threshold fast path).
        telem.record(&trace(7, Algorithm::Auto, 100, 100));
        assert_eq!(telem.slow_queries().len(), 3);
        assert_eq!(telem.slow_queries()[2].total_us, 300);
        // Capacity 0 disables retention but never panics.
        let off = Telemetry::new(0);
        off.record(&trace(1, Algorithm::Auto, 1000, 900));
        assert!(off.slow_queries().is_empty());
    }

    #[test]
    fn window_reset_rearms_the_ring_for_post_warmup_spikes() {
        // Regression (ISSUE 10, satellite 2): the reject threshold was
        // a one-way ratchet — after a slow warmup filled the ring, a
        // fast window's genuinely-notable spikes fell under the stale
        // bound and were never recorded again.
        let telem = Telemetry::new(3);
        for (q, us) in [(1u32, 10_000u64), (2, 12_000), (3, 14_000)] {
            telem.record(&trace(q, Algorithm::Auto, us, us));
        }
        assert_eq!(telem.slow_queries().len(), 3);
        // Window rollover (stats_window does this per shard).
        telem.reset_slow_window();
        assert!(
            telem.slow_queries().is_empty(),
            "reset must clear the warmup entries"
        );
        // A post-warmup spike far below the warmup latencies must be
        // captured — before the fix the stale threshold rejected it.
        telem.record(&trace(9, Algorithm::Peel, 500, 480));
        let slow = telem.slow_queries();
        assert_eq!(slow.len(), 1, "post-warmup spike lost: {slow:?}");
        assert_eq!(slow[0].q, 9);
        assert_eq!(slow[0].total_us, 500);
        // The ring keeps ranking within the new window.
        telem.record(&trace(10, Algorithm::Peel, 200, 180));
        telem.record(&trace(11, Algorithm::Peel, 900, 880));
        let totals: Vec<u64> = telem.slow_queries().iter().map(|s| s.total_us).collect();
        assert_eq!(totals, vec![900, 500, 200]);
        // Resetting an empty or capacity-0 ring is a no-op.
        telem.reset_slow_window();
        Telemetry::new(0).reset_slow_window();
    }

    #[test]
    fn seqlock_slots_never_tear_under_concurrent_offers() {
        use std::sync::Arc;
        // Every offered trace is self-consistent — `q`, `total_us` and
        // the kernel stage all encode the same value — so a torn read
        // (fields mixed from two different writes) breaks the
        // equations the reader checks. Bounds are small on purpose:
        // the nightly CI job replays this test under Miri, which
        // emulates weak memory but runs orders of magnitude slower
        // than native.
        let ring = Arc::new(SlowRing::new(2));
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 1..=12u64 {
                        let total = i * 100 + w;
                        ring.offer(&trace(total as u32, Algorithm::Peel, total, total));
                    }
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..64 {
                    seen.clear();
                    ring.snapshot_into(&mut seen);
                    for s in &seen {
                        assert_eq!(u64::from(s.q), s.total_us, "torn slot: {s:?}");
                        assert_eq!(
                            s.stages_us[Stage::Kernel as usize],
                            s.total_us,
                            "torn slot: {s:?}"
                        );
                    }
                    std::thread::yield_now();
                }
            })
        };
        for t in writers {
            t.join().unwrap();
        }
        reader.join().unwrap();
        // With the contention over, one more offer from this thread
        // must land deterministically (writes are only best-effort
        // while a race is in flight), and everything retained is
        // self-consistent.
        ring.offer(&trace(9999, Algorithm::Peel, 9999, 9999));
        let mut fin = Vec::new();
        ring.snapshot_into(&mut fin);
        assert_eq!(fin.len(), 2);
        assert_eq!(fin[0].total_us, 9999);
        for s in &fin {
            assert_eq!(u64::from(s.q), s.total_us);
            assert_eq!(s.stages_us[Stage::Kernel as usize], s.total_us);
        }
    }

    #[test]
    fn slow_query_display_is_greppable() {
        let telem = Telemetry::new(1);
        telem.record(&trace(17, Algorithm::Peel, 900, 880));
        let s = telem.slow_queries()[0].to_string();
        assert!(s.contains("q=17"), "{s}");
        assert!(s.contains("algo=peel"), "{s}");
        assert!(s.contains("kernel=880"), "{s}");
        assert!(s.contains("single"), "{s}");
    }

    #[test]
    fn prometheus_render_passes_its_own_validator() {
        let telem = Telemetry::new(4);
        for i in 0..50u32 {
            telem.record(&trace(
                i,
                Algorithm::ALL[i as usize % 5],
                10 + 7 * i as u64,
                5,
            ));
        }
        let stats = stats_for(&telem);
        let text = render_prometheus(&stats, &telem.snapshot());
        validate_prometheus(&text).expect("rendered metrics must validate");
        assert!(text.contains("# TYPE scs_requests_total counter"));
        assert!(text.contains("scs_requests_total 50"));
        assert!(text.contains("# TYPE scs_request_duration_us histogram"));
        assert!(text.contains("scs_request_duration_us_bucket{algo=\"peel\",le=\"+Inf\"} 10"));
        assert!(text.contains(
            "scs_stage_duration_us_bucket{algo=\"auto\",stage=\"kernel\",le=\"+Inf\"} 10"
        ));
        assert!(text.contains("scs_stage_duration_us_count{algo=\"auto\",stage=\"queue_wait\"} 10"));
        assert!(text.contains("scs_cache_evictions_total"));
        assert!(text.contains("scs_scratch_resident_bytes 4096"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_text() {
        // Valid skeleton.
        let ok = "# TYPE a counter\na 1\n";
        assert!(validate_prometheus(ok).is_ok());
        // Duplicate series.
        let dup = "# TYPE a counter\na 1\na 2\n";
        assert!(validate_prometheus(dup).unwrap_err().contains("duplicate"));
        // Sample without a TYPE.
        let untyped = "b 1\n";
        assert!(validate_prometheus(untyped).is_err());
        // Unnamed sample.
        assert!(validate_prometheus("# TYPE a counter\n{x=\"1\"} 2\n").is_err());
        // Histogram without +Inf.
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_prometheus(no_inf).unwrap_err().contains("+Inf"));
        // Histogram with decreasing cumulative counts.
        let dec = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_prometheus(dec).unwrap_err().contains("decrease"));
        // +Inf bucket disagreeing with _count.
        let bad_count = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n";
        assert!(validate_prometheus(bad_count)
            .unwrap_err()
            .contains("_count"));
        // NaN values.
        assert!(validate_prometheus("# TYPE a gauge\na NaN\n").is_err());
    }

    #[test]
    fn bench_json_round_trips_and_validates() {
        let telem = Telemetry::new(4);
        for i in 0..20u32 {
            telem.record(&trace(i, Algorithm::ALL[i as usize % 5], 10 + i as u64, 5));
        }
        let stats = stats_for(&telem);
        let meta = BenchMeta {
            dataset: "/tmp/ds/ml.tsv",
            threads: 4,
            shards: 2,
            queries: 200,
            warmup: 20,
            clients: 2,
            batch_size: 25,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat_fraction: 0.5,
            seed: 42,
            zipf: 0.0,
            split_batches: true,
            wall_secs: 0.125,
        };
        let text = render_bench_json(&meta, &stats, &stats);
        validate_bench_json(&text).expect("rendered bench JSON must validate");
        let doc = json_parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(
            doc.get("workload")
                .and_then(|w| w.get("dataset"))
                .and_then(JsonValue::as_str),
            Some("/tmp/ds/ml.tsv")
        );
        let peel = doc
            .get("steady")
            .and_then(|s| s.get("algorithms"))
            .and_then(|a| a.get("peel"))
            .expect("per-algorithm block");
        assert!(peel.get("p99_us").and_then(JsonValue::as_f64).is_some());
        assert!(peel
            .get("stages")
            .and_then(|s| s.get("kernel"))
            .and_then(|k| k.get("p50_us"))
            .is_some());
        // Tampering breaks validation.
        let broken = text.replace("\"kernel\"", "\"kernle\"");
        assert!(validate_bench_json(&broken).is_err());
        let wrong_schema = text.replace(BENCH_SCHEMA, "something-else/v9");
        assert!(validate_bench_json(&wrong_schema).is_err());
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(json_parse("{").is_err());
        assert!(json_parse("{}x").is_err());
        assert!(json_parse("{\"a\":}").is_err());
        assert!(json_parse("[1,]").is_err());
        assert!(json_parse("\"\\q\"").is_err());
        assert_eq!(
            json_parse("[1, 2]").unwrap(),
            JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)])
        );
        let v = json_parse("{\"a\": {\"b\": [true, null, \"x\\n\"]}}").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("b")),
            Some(&JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Null,
                JsonValue::Str("x\n".into())
            ]))
        );
    }
}
