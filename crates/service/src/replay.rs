//! Workload construction and replay.
//!
//! The paper's efficiency experiments replay batches of random queries
//! against the index; this module scales that up to a serving workload:
//! [`build_workload`] draws query vertices from the (α,β)-core via
//! `datasets::workload` (so answers are nonempty) and mixes in repeats —
//! real query streams are heavily skewed, and the repeats are what
//! exercise the result cache and the in-flight deduplication.
//! [`replay`] then hammers a running [`QueryEngine`] from a configurable
//! number of client threads and reports the engine's stats plus replay
//! wall time.

use crate::engine::QueryEngine;
use crate::stats::ServiceStats;
use crate::{QueryRequest, QueryResponse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch};
use std::sync::Arc;
use std::time::Instant;

/// Shape of a generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Total queries to generate.
    pub n_queries: usize,
    /// Degree constraints applied to every query.
    pub alpha: usize,
    /// See `alpha`.
    pub beta: usize,
    /// Second-step algorithm for every query.
    pub algo: Algorithm,
    /// Fraction in `[0, 1]` of queries that repeat an earlier query
    /// (drawn uniformly from the history), producing cache hits and
    /// concurrent duplicates.
    pub repeat_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_queries: 1000,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat_fraction: 0.5,
            seed: 42,
        }
    }
}

/// Generates a replayable request stream for `search`.
///
/// Fresh queries sample vertices uniformly from the (α,β)-core
/// ([`datasets::workload::random_core_queries`]); with probability
/// `repeat_fraction` a query instead repeats a uniformly chosen earlier
/// one. Returns an empty vec when the core is empty (nothing sensible to
/// serve).
pub fn build_workload(search: &CommunitySearch, spec: &WorkloadSpec) -> Vec<QueryRequest> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let fresh = datasets::workload::random_core_queries(
        search.graph(),
        spec.alpha,
        spec.beta,
        spec.n_queries,
        &mut rng,
    );
    if fresh.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<QueryRequest> = Vec::with_capacity(spec.n_queries);
    for q in fresh {
        let req = if !out.is_empty() && rng.gen_bool(spec.repeat_fraction) {
            out[rng.gen_range(0..out.len())]
        } else {
            QueryRequest::new(q, spec.alpha, spec.beta, spec.algo)
        };
        out.push(req);
    }
    out
}

/// Outcome of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Engine metrics at the end of the run.
    pub stats: ServiceStats,
    /// Requests actually replayed.
    pub n_queries: usize,
    /// Client threads used.
    pub clients: usize,
    /// Wall-clock duration of the replay itself, seconds.
    pub wall_secs: f64,
    /// `n_queries / wall_secs` — throughput of this replay (the engine's
    /// own `stats.qps` averages over the engine's whole lifetime).
    pub replay_qps: f64,
}

/// Replays `workload` against `engine` from `clients` threads, round-robin
/// partitioned, collecting every response. Responses are returned in
/// workload order so callers can compare them one-to-one against an
/// oracle.
pub fn replay(
    engine: &QueryEngine,
    workload: &[QueryRequest],
    clients: usize,
) -> (ReplayReport, Vec<Arc<QueryResponse>>) {
    let clients = clients.max(1);
    let t0 = Instant::now();
    let mut responses: Vec<Option<Arc<QueryResponse>>> = vec![None; workload.len()];
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(clients);
        for c in 0..clients {
            joins.push(scope.spawn(move || {
                let mut got = Vec::new();
                for (i, req) in workload.iter().enumerate() {
                    if i % clients == c {
                        // submit+wait per request: each client models one
                        // synchronous caller, so concurrency = clients.
                        got.push((i, engine.query(*req)));
                    }
                }
                got
            }));
        }
        for j in joins {
            for (i, resp) in j.join().expect("client thread panicked") {
                responses[i] = Some(resp);
            }
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let report = ReplayReport {
        stats: engine.stats(),
        n_queries: workload.len(),
        clients,
        wall_secs,
        replay_qps: workload.len() as f64 / wall_secs,
    };
    let responses = responses
        .into_iter()
        .map(|r| r.expect("every slot answered"))
        .collect();
    (report, responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use bigraph::generators::random_bipartite;

    fn small_search() -> Arc<CommunitySearch> {
        let mut rng = StdRng::seed_from_u64(9);
        CommunitySearch::shared(random_bipartite(30, 30, 220, &mut rng))
    }

    #[test]
    fn workload_has_requested_shape() {
        let search = small_search();
        let spec = WorkloadSpec {
            n_queries: 200,
            repeat_fraction: 0.6,
            ..WorkloadSpec::default()
        };
        let w = build_workload(&search, &spec);
        assert_eq!(w.len(), 200);
        // With 60% repeats the distinct count must be well below 200.
        let mut distinct: Vec<_> = w.clone();
        distinct.sort_by_key(|r| (r.q, r.alpha, r.beta));
        distinct.dedup();
        assert!(distinct.len() < 150, "distinct={}", distinct.len());
        // Determinism: same seed, same stream.
        assert_eq!(w, build_workload(&search, &spec));
    }

    #[test]
    fn workload_empty_when_core_empty() {
        let search = small_search();
        let spec = WorkloadSpec {
            alpha: 50,
            beta: 50,
            ..WorkloadSpec::default()
        };
        assert!(build_workload(&search, &spec).is_empty());
    }

    #[test]
    fn replay_answers_everything_in_order() {
        let search = small_search();
        let spec = WorkloadSpec {
            n_queries: 120,
            ..WorkloadSpec::default()
        };
        let w = build_workload(&search, &spec);
        let engine = QueryEngine::start(
            search,
            ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        let (report, responses) = replay(&engine, &w, 3);
        assert_eq!(report.n_queries, 120);
        assert_eq!(responses.len(), 120);
        for (req, resp) in w.iter().zip(&responses) {
            assert_eq!(resp.request, *req);
        }
        assert!(report.stats.cache.hits > 0, "repeats must hit the cache");
        engine.shutdown();
    }
}
