//! Workload construction and replay.
//!
//! The paper's efficiency experiments replay batches of random queries
//! against the index; this module scales that up to a serving workload:
//! [`build_workload`] draws query vertices from the (α,β)-core via
//! `datasets::workload` (so answers are nonempty) and mixes in repeats —
//! real query streams are heavily skewed, and the repeats are what
//! exercise the result cache and the in-flight deduplication.
//! [`replay`] then hammers a running [`QueryEngine`] from a configurable
//! number of client threads and reports the engine's stats plus replay
//! wall time.

use crate::engine::QueryEngine;
use crate::stats::ServiceStats;
use crate::{QueryRequest, QueryResponse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch};
use std::fmt;
use std::time::Instant;

/// Shape of a generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Total queries to generate.
    pub n_queries: usize,
    /// Degree constraints applied to every query.
    pub alpha: usize,
    /// See `alpha`.
    pub beta: usize,
    /// Second-step algorithm for every query.
    pub algo: Algorithm,
    /// Fraction in `[0, 1]` of queries that repeat an earlier query
    /// (drawn uniformly from the history), producing cache hits and
    /// concurrent duplicates. Out-of-range or NaN values are clamped
    /// into `[0, 1]` (NaN counts as 0) by [`build_workload`].
    pub repeat_fraction: f64,
    /// Zipf exponent `s` for fresh-vertex popularity. `0.0` (the
    /// default) keeps the historical uniform draw bit-for-bit; `s > 0`
    /// weights the (α,β)-core members by `1/(rank+1)^s` in their
    /// deterministic population order, so a few vertices dominate the
    /// stream — the skew that concentrates traffic on a handful of
    /// engine shards and cache slices. NaN or negative values are
    /// rejected ([`WorkloadError::InvalidZipf`]), not clamped: a bad
    /// skew silently becoming uniform would invalidate a benchmark.
    pub zipf: f64,
    /// Generator seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// `repeat_fraction` clamped into `[0, 1]`, with NaN as 0 — the
    /// value the generator actually uses, so a slightly out-of-range
    /// computed fraction degrades gracefully instead of panicking.
    pub fn effective_repeat_fraction(&self) -> f64 {
        if self.repeat_fraction.is_nan() {
            0.0
        } else {
            self.repeat_fraction.clamp(0.0, 1.0)
        }
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_queries: 1000,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Auto,
            repeat_fraction: 0.5,
            zipf: 0.0,
            seed: 42,
        }
    }
}

/// Why [`try_build_workload`] could not produce a workload.
// PartialEq without Eq: `InvalidZipf` carries the offending f64.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The (α,β)-core of the graph has no vertices, so there is no
    /// query vertex to draw. Distinct from asking for zero queries,
    /// which is `Ok(vec![])` — an earlier version conflated the two,
    /// and the CLI diagnosed a perfectly populated core as empty
    /// whenever the request count was zero.
    EmptyCore {
        /// The α the core was computed for.
        alpha: usize,
        /// The β the core was computed for.
        beta: usize,
    },
    /// [`WorkloadSpec::zipf`] is NaN or negative. Unlike
    /// `repeat_fraction` (clamped — a ULP of drift is harmless), a bad
    /// Zipf exponent means the caller asked for a skew that does not
    /// exist; serving a uniform stream instead would silently change
    /// what a benchmark measures.
    InvalidZipf {
        /// The rejected exponent.
        zipf: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EmptyCore { alpha, beta } => write!(
                f,
                "the ({alpha},{beta})-core is empty — no query vertices to draw"
            ),
            WorkloadError::InvalidZipf { zipf } => write!(
                f,
                "zipf exponent {zipf} is invalid — must be a finite value ≥ 0 \
                 (0 = uniform, larger = more skewed)"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Generates a replayable request stream for `search`, distinguishing
/// "nothing requested" from "nothing to serve".
///
/// Fresh queries sample vertices from the (α,β)-core — uniformly
/// ([`datasets::workload::random_core_queries`]) when
/// [`WorkloadSpec::zipf`] is 0, Zipf-weighted over the core population
/// otherwise; with probability `repeat_fraction` a query instead
/// repeats a uniformly chosen earlier one. Exactly as many core
/// vertices are drawn as fresh slots exist — the distinct-query pool
/// matches `(1 − repeat_fraction)·n_queries` in expectation (an earlier
/// version drew `n_queries` and silently threw one away per repeat).
/// `n_queries == 0` yields `Ok(vec![])`; an empty (α,β)-core yields
/// [`WorkloadError::EmptyCore`]; a NaN, negative or non-finite `zipf`
/// yields [`WorkloadError::InvalidZipf`].
pub fn try_build_workload(
    search: &CommunitySearch,
    spec: &WorkloadSpec,
) -> Result<Vec<QueryRequest>, WorkloadError> {
    if !spec.zipf.is_finite() || spec.zipf < 0.0 {
        return Err(WorkloadError::InvalidZipf { zipf: spec.zipf });
    }
    let repeat = spec.effective_repeat_fraction();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Decide the repeat/fresh pattern first (the first query has no
    // history, so it is always fresh), then draw exactly the fresh
    // vertices the pattern consumes. With n_queries ≥ 1 the pattern
    // always has ≥ 1 fresh slot, so an empty draw can only mean an
    // empty core.
    let is_repeat: Vec<bool> = (0..spec.n_queries)
        .map(|i| i > 0 && rng.gen_bool(repeat))
        .collect();
    if is_repeat.is_empty() {
        return Ok(Vec::new());
    }
    let n_fresh = is_repeat.iter().filter(|r| !**r).count();
    let fresh = if spec.zipf > 0.0 {
        zipf_core_queries(search, spec, n_fresh, &mut rng)
    } else {
        // zipf == 0.0 takes the historical uniform path verbatim, so
        // existing seeds reproduce their exact pre-zipf streams.
        datasets::workload::random_core_queries(
            search.graph(),
            spec.alpha,
            spec.beta,
            n_fresh,
            &mut rng,
        )
    };
    if fresh.is_empty() {
        return Err(WorkloadError::EmptyCore {
            alpha: spec.alpha,
            beta: spec.beta,
        });
    }
    let mut fresh = fresh.into_iter();
    let mut out: Vec<QueryRequest> = Vec::with_capacity(spec.n_queries);
    for repeat_slot in is_repeat {
        let req = if repeat_slot {
            out[rng.gen_range(0..out.len())]
        } else {
            let q = fresh.next().expect("one draw per fresh slot");
            QueryRequest::new(q, spec.alpha, spec.beta, spec.algo)
        };
        out.push(req);
    }
    Ok(out)
}

/// Draws `n` query vertices from the (α,β)-core with Zipf popularity:
/// member at population rank `r` (the deterministic order of
/// [`datasets::workload::core_members`]) has weight `1/(r+1)^s`.
/// Sampling inverts the cumulative weight with a binary search, so a
/// draw costs O(log |core|). Empty core ⇒ empty vec (the caller turns
/// that into [`WorkloadError::EmptyCore`]).
fn zipf_core_queries(
    search: &CommunitySearch,
    spec: &WorkloadSpec,
    n: usize,
    rng: &mut StdRng,
) -> Vec<bigraph::Vertex> {
    let members = datasets::workload::core_members(search.graph(), spec.alpha, spec.beta);
    if members.is_empty() {
        return Vec::new();
    }
    let mut cumulative = Vec::with_capacity(members.len());
    let mut total = 0.0f64;
    for rank in 0..members.len() {
        total += ((rank + 1) as f64).powf(-spec.zipf);
        cumulative.push(total);
    }
    (0..n)
        .map(|_| {
            let u = rng.gen::<f64>() * total; // in [0, total)
            let i = cumulative.partition_point(|&c| c <= u);
            members[i.min(members.len() - 1)]
        })
        .collect()
}

/// [`try_build_workload`] flattened to the historical signature: an
/// empty vec for *both* an empty core and a zero request count. Callers
/// that report diagnostics should use [`try_build_workload`] and tell
/// the user which one happened.
pub fn build_workload(search: &CommunitySearch, spec: &WorkloadSpec) -> Vec<QueryRequest> {
    try_build_workload(search, spec).unwrap_or_default()
}

/// Outcome of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Engine metrics at the end of the run.
    pub stats: ServiceStats,
    /// Requests actually replayed.
    pub n_queries: usize,
    /// Client threads used.
    pub clients: usize,
    /// Requests per [`QueryEngine::submit_batch`] job (1 = per-request
    /// submission via [`QueryEngine::query`]).
    pub batch_size: usize,
    /// Wall-clock duration of the replay itself, seconds.
    pub wall_secs: f64,
    /// `n_queries / wall_secs` — throughput of this replay (the engine's
    /// own `stats.qps` averages over the engine's whole lifetime).
    pub replay_qps: f64,
}

/// Replays `workload` against `engine` from `clients` threads, round-robin
/// partitioned, collecting every response. Responses are returned in
/// workload order so callers can compare them one-to-one against an
/// oracle. Per-request submission; see [`replay_batched`] for the
/// amortized mode.
pub fn replay(
    engine: &QueryEngine,
    workload: &[QueryRequest],
    clients: usize,
) -> (ReplayReport, Vec<QueryResponse>) {
    replay_batched(engine, workload, clients, 1)
}

/// [`replay`] with batched submission: each client slices its round-robin
/// share into chunks of `batch_size` and submits every chunk as one
/// [`QueryEngine::submit_batch`] job, paying the queue round-trip, the
/// index-snapshot read and the cache handshake once per chunk instead of
/// once per request. `batch_size ≤ 1` degrades to per-request
/// submit+wait ([`QueryEngine::query`]), which is how [`replay`] is
/// implemented. Responses are identical to per-request submission and
/// returned in workload order.
pub fn replay_batched(
    engine: &QueryEngine,
    workload: &[QueryRequest],
    clients: usize,
    batch_size: usize,
) -> (ReplayReport, Vec<QueryResponse>) {
    let clients = clients.max(1);
    let batch_size = batch_size.max(1);
    let t0 = Instant::now();
    let mut responses: Vec<Option<QueryResponse>> = vec![None; workload.len()];
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(clients);
        for c in 0..clients {
            joins.push(scope.spawn(move || {
                // Each client models one synchronous caller submitting
                // its next request (or next batch) only after the
                // previous answer arrives, so concurrency = clients.
                let mut got = Vec::new();
                let mine: Vec<usize> = (0..workload.len()).skip(c).step_by(clients).collect();
                if batch_size == 1 {
                    for &i in &mine {
                        got.push((i, engine.query(workload[i])));
                    }
                } else {
                    for chunk in mine.chunks(batch_size) {
                        let reqs: Vec<QueryRequest> = chunk.iter().map(|&i| workload[i]).collect();
                        for (&i, resp) in chunk.iter().zip(engine.query_batch(&reqs)) {
                            got.push((i, resp));
                        }
                    }
                }
                got
            }));
        }
        for j in joins {
            for (i, resp) in j.join().expect("client thread panicked") {
                responses[i] = Some(resp);
            }
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let report = ReplayReport {
        stats: engine.stats(),
        n_queries: workload.len(),
        clients,
        batch_size,
        wall_secs,
        replay_qps: workload.len() as f64 / wall_secs,
    };
    let responses = responses
        .into_iter()
        .map(|r| r.expect("every slot answered"))
        .collect();
    (report, responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use bigraph::generators::random_bipartite;
    use std::sync::Arc;

    fn small_search() -> Arc<CommunitySearch> {
        let mut rng = StdRng::seed_from_u64(9);
        CommunitySearch::shared(random_bipartite(30, 30, 220, &mut rng))
    }

    #[test]
    fn workload_has_requested_shape() {
        let search = small_search();
        let spec = WorkloadSpec {
            n_queries: 200,
            repeat_fraction: 0.6,
            ..WorkloadSpec::default()
        };
        let w = build_workload(&search, &spec);
        assert_eq!(w.len(), 200);
        // With 60% repeats the distinct count must be well below 200.
        let mut distinct: Vec<_> = w.clone();
        distinct.sort_by_key(|r| (r.q, r.alpha, r.beta));
        distinct.dedup();
        assert!(distinct.len() < 150, "distinct={}", distinct.len());
        // Determinism: same seed, same stream.
        assert_eq!(w, build_workload(&search, &spec));
    }

    #[test]
    fn workload_distinct_pool_matches_repeat_fraction() {
        // A graph whose (1,1)-core is huge relative to the fresh-draw
        // count, so sampling-with-replacement collisions stay small and
        // the distinct pool ≈ the number of fresh draws, which must be
        // (1 − repeat_fraction)·n_queries in expectation. (The pre-fix
        // generator drew n_queries core vertices and discarded one per
        // repeat slot, wasting draws the documentation promised as
        // distinct queries.)
        let mut rng = StdRng::seed_from_u64(17);
        let search = CommunitySearch::shared(bigraph::generators::random_bipartite(
            3000, 3000, 9000, &mut rng,
        ));
        let spec = WorkloadSpec {
            n_queries: 400,
            alpha: 1,
            beta: 1,
            repeat_fraction: 0.5,
            ..WorkloadSpec::default()
        };
        let w = build_workload(&search, &spec);
        assert_eq!(w.len(), 400);
        let mut distinct: Vec<_> = w.iter().map(|r| r.q).collect();
        distinct.sort();
        distinct.dedup();
        let expect = (1.0 - spec.repeat_fraction) * spec.n_queries as f64;
        assert!(
            (distinct.len() as f64 - expect).abs() < 30.0,
            "distinct pool {} far from (1−{})·{} = {expect}",
            distinct.len(),
            spec.repeat_fraction,
            spec.n_queries
        );
    }

    #[test]
    fn workload_repeat_fraction_extremes_and_out_of_range() {
        let search = small_search();
        // 0.0: every query fresh; 1.0: one fresh query repeated — both
        // must generate without panicking.
        for (rf, max_distinct) in [(0.0, usize::MAX), (1.0, 1)] {
            let w = build_workload(
                &search,
                &WorkloadSpec {
                    n_queries: 50,
                    repeat_fraction: rf,
                    ..WorkloadSpec::default()
                },
            );
            assert_eq!(w.len(), 50, "repeat_fraction={rf}");
            let mut distinct: Vec<_> = w.clone();
            distinct.sort_by_key(|r| r.q);
            distinct.dedup();
            assert!(distinct.len() <= max_distinct, "repeat_fraction={rf}");
        }
        // Out-of-range and NaN specs clamp instead of panicking.
        for rf in [-0.5, 1.5, f64::NAN] {
            let spec = WorkloadSpec {
                n_queries: 40,
                repeat_fraction: rf,
                ..WorkloadSpec::default()
            };
            assert_eq!(build_workload(&search, &spec).len(), 40, "rf={rf}");
        }
        let nan = WorkloadSpec {
            repeat_fraction: f64::NAN,
            ..WorkloadSpec::default()
        };
        assert_eq!(nan.effective_repeat_fraction(), 0.0);
        let hot = WorkloadSpec {
            repeat_fraction: 1.5,
            ..WorkloadSpec::default()
        };
        assert_eq!(hot.effective_repeat_fraction(), 1.0);
    }

    #[test]
    fn zipf_workload_is_deterministic_and_skewed() {
        // Big core so skew is visible: rank the draw counts and compare
        // the head's share under uniform vs. heavy Zipf.
        let mut rng = StdRng::seed_from_u64(23);
        let search = CommunitySearch::shared(bigraph::generators::random_bipartite(
            500, 500, 2500, &mut rng,
        ));
        let spec = WorkloadSpec {
            n_queries: 2000,
            alpha: 1,
            beta: 1,
            repeat_fraction: 0.0,
            zipf: 1.5,
            ..WorkloadSpec::default()
        };
        let w = build_workload(&search, &spec);
        assert_eq!(w.len(), 2000);
        // Same seed, same stream.
        assert_eq!(w, build_workload(&search, &spec));
        let top_share = |w: &[QueryRequest]| {
            let mut counts = std::collections::HashMap::new();
            for r in w {
                *counts.entry(r.q).or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap() as f64 / w.len() as f64
        };
        let skewed = top_share(&w);
        let uniform = top_share(&build_workload(
            &search,
            &WorkloadSpec { zipf: 0.0, ..spec },
        ));
        // s = 1.5 puts ≳30% of the mass on rank 0 (1/ζ(1.5) ≈ 0.38);
        // uniform over a core of hundreds puts well under 5% anywhere.
        assert!(
            skewed > 0.2 && skewed > 4.0 * uniform,
            "zipf head share {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn zipf_zero_reproduces_the_uniform_stream() {
        let search = small_search();
        let spec = WorkloadSpec {
            n_queries: 100,
            ..WorkloadSpec::default()
        };
        assert_eq!(spec.zipf, 0.0, "uniform must be the default");
        // zipf: 0.0 is spelled out vs. defaulted — same stream either
        // way, so adding the knob changed no existing workload.
        let explicit = WorkloadSpec {
            zipf: 0.0,
            ..spec.clone()
        };
        assert_eq!(
            build_workload(&search, &spec),
            build_workload(&search, &explicit)
        );
    }

    #[test]
    fn invalid_zipf_is_rejected_loudly() {
        let search = small_search();
        for bad in [f64::NAN, -0.1, -3.0, f64::INFINITY, f64::NEG_INFINITY] {
            let spec = WorkloadSpec {
                zipf: bad,
                ..WorkloadSpec::default()
            };
            let err = try_build_workload(&search, &spec).unwrap_err();
            assert!(
                matches!(err, WorkloadError::InvalidZipf { .. }),
                "zipf={bad} accepted"
            );
            let msg = err.to_string();
            assert!(msg.contains("zipf") && msg.contains("invalid"), "{msg}");
        }
    }

    #[test]
    fn workload_empty_when_core_empty() {
        let search = small_search();
        let spec = WorkloadSpec {
            alpha: 50,
            beta: 50,
            ..WorkloadSpec::default()
        };
        assert!(build_workload(&search, &spec).is_empty());
        // The checked variant names the reason.
        assert_eq!(
            try_build_workload(&search, &spec),
            Err(WorkloadError::EmptyCore {
                alpha: 50,
                beta: 50
            })
        );
        let msg = try_build_workload(&search, &spec).unwrap_err().to_string();
        assert!(msg.contains("(50,50)-core is empty"), "{msg}");
    }

    #[test]
    fn zero_queries_is_not_an_empty_core() {
        // Regression: n_queries == 0 used to fall through the
        // empty-draw check and masquerade as an empty core, so the CLI
        // told users to lower --alpha/--beta on a populated graph.
        let search = small_search();
        let spec = WorkloadSpec {
            n_queries: 0,
            alpha: 1,
            beta: 1,
            ..WorkloadSpec::default()
        };
        assert_eq!(try_build_workload(&search, &spec), Ok(Vec::new()));
        assert!(build_workload(&search, &spec).is_empty());
        // …while the same spec against an actually empty core still
        // reports the core, not the count.
        let starved = WorkloadSpec {
            n_queries: 10,
            alpha: 50,
            beta: 50,
            ..WorkloadSpec::default()
        };
        assert!(matches!(
            try_build_workload(&search, &starved),
            Err(WorkloadError::EmptyCore { .. })
        ));
    }

    #[test]
    fn replay_answers_everything_in_order() {
        let search = small_search();
        let spec = WorkloadSpec {
            n_queries: 120,
            ..WorkloadSpec::default()
        };
        let w = build_workload(&search, &spec);
        let engine = QueryEngine::start(
            search,
            ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        let (report, responses) = replay(&engine, &w, 3);
        assert_eq!(report.n_queries, 120);
        assert_eq!(responses.len(), 120);
        for (req, resp) in w.iter().zip(&responses) {
            assert_eq!(resp.request, *req);
        }
        assert!(report.stats.cache.hits > 0, "repeats must hit the cache");
        engine.shutdown();
    }

    #[test]
    fn batched_replay_matches_per_request() {
        let search = small_search();
        let spec = WorkloadSpec {
            n_queries: 150,
            repeat_fraction: 0.4,
            ..WorkloadSpec::default()
        };
        let w = build_workload(&search, &spec);
        let config = ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        };
        let per_request = QueryEngine::start(search.clone(), config.clone());
        let (_, base) = replay(&per_request, &w, 3);
        per_request.shutdown();

        let batched = QueryEngine::start(search, config);
        let (report, got) = replay_batched(&batched, &w, 3, 16);
        batched.shutdown();

        assert_eq!(report.batch_size, 16);
        assert!(report.stats.batches > 0, "no batch jobs recorded");
        assert_eq!(report.stats.batched, 150);
        assert_eq!(got.len(), base.len());
        for (i, (a, b)) in base.iter().zip(&got).enumerate() {
            assert_eq!(a.request, b.request, "slot {i} out of order");
            assert_eq!(a.summary, b.summary, "slot {i} diverged");
        }
    }
}
