//! The concurrent query engine: a fixed worker pool over an immutable,
//! epoch-swappable [`CommunitySearch`].
//!
//! Life of a request:
//!
//! 1. [`QueryEngine::submit`] pushes a job onto the mpsc queue and
//!    returns a [`ResponseHandle`]; [`QueryEngine::query`] is the
//!    blocking convenience.
//! 2. A worker dequeues, checks the sharded LRU cache, and on a hit
//!    responds immediately (`cached = true`).
//! 3. On a miss it joins the in-flight table. The first thread for a key
//!    becomes the *leader* and computes `significant_community` on the
//!    current index snapshot; threads that arrive while the leader runs
//!    become *followers* and block on the flight's condvar instead of
//!    duplicating work (`coalesced = true`).
//! 4. The leader publishes the response, installs it in the cache and
//!    wakes the followers.
//!
//! Batches ([`QueryEngine::submit_batch`]) ride the same machinery with
//! the per-request overheads paid once: one job carries the whole batch
//! through the queue, the serving worker reads **one** index snapshot,
//! looks every *unique* key up in the cache once, partitions the misses
//! into leaders / followers up front, and answers every leader through
//! one batched kernel call per algorithm
//! ([`scs::CommunitySearch::significant_communities_in`]) on its single
//! reused workspace. Responses come back in submission order; duplicate
//! keys inside a batch are computed once and answered as coalesced.
//!
//! [`QueryEngine::install`] atomically replaces the index (one
//! write-lock), bumps the epoch and clears the cache, so a rebuilt index
//! — e.g. [`scs::DynamicIndex::snapshot`] after edge updates — goes live
//! without stopping the workers. In-flight leaders that started on the
//! old snapshot finish on it (their Arc keeps it alive) and their
//! responses carry the old epoch; the cache only ever holds entries
//! inserted under the epoch read together with the snapshot, and is
//! cleared on install, so a hit never serves a community computed
//! against an index older than the last install. The in-flight table is
//! fenced the same way: a request only coalesces onto a flight whose
//! epoch matches the one it observed as current, so a post-install
//! request never receives a pre-install result.

use crate::cache::ShardedCache;
use crate::stats::{LatencyHistogram, ServiceStats};
use crate::{CommunitySummary, QueryRequest, QueryResponse};
use bigraph::Vertex;
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Total result-cache entries across all shards.
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_capacity: 4096,
            cache_shards: 16,
        }
    }
}

/// What a flight's followers eventually observe.
enum FlightState {
    /// Leader still computing.
    Pending,
    /// Leader published.
    Done(Arc<QueryResponse>),
    /// Leader unwound without publishing (panic in the query code).
    Poisoned,
}

/// One in-flight computation; followers sleep on `cv` until the leader
/// fills `slot`. `epoch` is the index epoch the leader computes on —
/// followers only join flights of the epoch they themselves observed as
/// current, so a post-install request can never coalesce onto a
/// pre-install computation.
struct Flight {
    epoch: u64,
    slot: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> Option<Arc<QueryResponse>> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            match &*slot {
                FlightState::Pending => slot = self.cv.wait(slot).unwrap(),
                FlightState::Done(resp) => return Some(resp.clone()),
                FlightState::Poisoned => return None,
            }
        }
    }

    fn publish(&self, state: FlightState) {
        *self.slot.lock().unwrap() = state;
        self.cv.notify_all();
    }
}

enum Role {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
    /// The caller's epoch snapshot is older than the resident flight's:
    /// an install raced in; re-read the snapshot and rejoin.
    StaleSnapshot,
}

/// Cleans a leader's flight out of the in-flight table even if the
/// query code panics: on unwind the flight is poisoned (waking every
/// follower, who re-panic with context instead of blocking forever)
/// and removed so the key is not permanently wedged.
struct FlightGuard<'a> {
    inner: &'a Inner,
    key: QueryRequest,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard<'_> {
    fn publish(&mut self, resp: Arc<QueryResponse>) {
        self.flight.publish(FlightState::Done(resp));
        self.published = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.flight.publish(FlightState::Poisoned);
        }
        // Remove only our own flight — a newer-epoch leader may have
        // replaced the entry under this key.
        let mut map = self.inner.inflight.lock().unwrap();
        if map
            .get(&self.key)
            .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
        {
            map.remove(&self.key);
        }
    }
}

/// Per-worker scratch accounting, published after every served request
/// so [`QueryEngine::stats`] can aggregate without touching the
/// workspaces themselves (they are owned by the worker threads).
#[derive(Default)]
struct ScratchSlot {
    /// Resident bytes of the worker's [`QueryWorkspace`].
    bytes: AtomicUsize,
    /// Cumulative scratch acquisitions served without allocating.
    allocs_avoided: AtomicU64,
}

/// Shared state between the engine handle and its workers.
struct Inner {
    search: RwLock<(Arc<CommunitySearch>, u64)>,
    cache: ShardedCache<QueryRequest, Arc<QueryResponse>>,
    inflight: Mutex<HashMap<QueryRequest, Arc<Flight>>>,
    hist: LatencyHistogram,
    completed: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    scratch: Vec<ScratchSlot>,
    started: Instant,
    workers: usize,
}

impl Inner {
    /// The current `(index snapshot, epoch)` pair, read consistently.
    fn snapshot(&self) -> (Arc<CommunitySearch>, u64) {
        let guard = self.search.read().unwrap();
        (guard.0.clone(), guard.1)
    }

    /// Joins (or opens) the flight for `key` at `epoch`. A resident
    /// flight from an *older* epoch is replaced — its leader still
    /// answers its own followers, but nobody new coalesces onto a
    /// retired index. A resident flight from a *newer* epoch means the
    /// caller's snapshot is stale (an install won the race); it must
    /// re-read and retry rather than evict current-epoch work.
    fn join_flight(&self, key: QueryRequest, epoch: u64) -> Role {
        let mut map = self.inflight.lock().unwrap();
        if let Some(flight) = map.get(&key) {
            if flight.epoch == epoch {
                return Role::Follower(flight.clone());
            }
            if flight.epoch > epoch {
                return Role::StaleSnapshot;
            }
        }
        let flight = Arc::new(Flight {
            epoch,
            slot: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        map.insert(key, flight.clone());
        Role::Leader(flight)
    }

    fn serve(&self, req: QueryRequest, ws: &mut QueryWorkspace) -> Arc<QueryResponse> {
        let t0 = Instant::now();
        if let Some(hit) = self.cache.get(&req) {
            let resp = Arc::new(QueryResponse {
                cached: true,
                coalesced: false,
                service_us: t0.elapsed().as_micros() as u64,
                ..(*hit).clone()
            });
            self.finish(&resp);
            return resp;
        }
        // Epochs are monotonic, so the retry loop terminates: it only
        // loops when an install landed between our snapshot and the
        // join, and each retry re-reads the newer snapshot.
        let (search, epoch, role) = loop {
            let (search, epoch) = self.snapshot();
            match self.join_flight(req, epoch) {
                Role::StaleSnapshot => continue,
                role => break (search, epoch, role),
            }
        };
        match role {
            Role::StaleSnapshot => unreachable!("retried above"),
            Role::Leader(flight) => {
                let mut guard = FlightGuard {
                    inner: self,
                    key: req,
                    flight,
                    published: false,
                };
                let summary = if Self::servable(&req, &search) {
                    // The worker's workspace provides every scratch
                    // buffer; only the result itself is allocated.
                    let sub = search.significant_community_in(
                        req.q,
                        req.alpha as usize,
                        req.beta as usize,
                        req.algo,
                        ws,
                    );
                    Arc::new(CommunitySummary::from_subgraph(&sub))
                } else {
                    Arc::new(CommunitySummary::empty())
                };
                let resp = Arc::new(QueryResponse {
                    request: req,
                    summary,
                    cached: false,
                    coalesced: false,
                    epoch,
                    service_us: t0.elapsed().as_micros() as u64,
                });
                self.cache_if_current(req, &resp, epoch);
                // Publish, then let the guard's Drop clear the table
                // entry: a thread that found this flight always gets an
                // answer; threads arriving after the removal start a
                // fresh flight (and typically hit the cache first).
                guard.publish(resp.clone());
                drop(guard);
                self.finish(&resp);
                resp
            }
            Role::Follower(flight) => {
                let shared = flight.wait().unwrap_or_else(|| {
                    panic!("in-flight leader for {req:?} panicked before publishing")
                });
                let resp = Arc::new(QueryResponse {
                    cached: false,
                    coalesced: true,
                    service_us: t0.elapsed().as_micros() as u64,
                    ..(*shared).clone()
                });
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.finish(&resp);
                resp
            }
        }
    }

    fn finish(&self, resp: &QueryResponse) {
        self.hist.record(resp.service_us);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the engine can compute an answer for `req` on `search`.
    /// An unservable request (vertex outside the installed graph, zero
    /// constraint) gets the empty community rather than panicking a
    /// worker: the graph can shrink across installs, so clients cannot
    /// validate upfront. Shared by the single and batch paths so the
    /// two can never drift apart.
    fn servable(req: &QueryRequest, search: &CommunitySearch) -> bool {
        req.q.index() < search.graph().n_vertices() && req.alpha >= 1 && req.beta >= 1
    }

    /// Caches `resp` only if no install retired the index it was
    /// computed on. Holding the read lock makes the epoch-check +
    /// insert atomic w.r.t. `install`, which clears the cache under the
    /// write lock — so a stale entry can never land after the clear.
    fn cache_if_current(&self, req: QueryRequest, resp: &Arc<QueryResponse>, epoch: u64) {
        let lock = self.search.read().unwrap();
        if lock.1 == epoch {
            self.cache.insert(req, resp.clone());
        }
    }

    /// Serves a whole batch on this worker, amortizing the per-request
    /// costs: one cache lookup per *unique* key, one index-snapshot
    /// read, one workspace for every leader computation (one batched
    /// kernel call per algorithm present), and one response vector in
    /// submission order.
    fn serve_batch(
        &self,
        reqs: &[QueryRequest],
        ws: &mut QueryWorkspace,
    ) -> Vec<Arc<QueryResponse>> {
        let t0 = Instant::now();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched.fetch_add(reqs.len() as u64, Ordering::Relaxed);
        let mut out: Vec<Option<Arc<QueryResponse>>> = reqs.iter().map(|_| None).collect();
        let us = |t0: &Instant| t0.elapsed().as_micros() as u64;

        // Unique keys in first-occurrence order, each with every
        // submission slot it answers. Duplicates inside the batch are
        // computed once; the extra slots are answered as coalesced.
        let mut order: Vec<(QueryRequest, Vec<usize>)> = Vec::new();
        let mut first: HashMap<QueryRequest, usize> = HashMap::new();
        for (i, req) in reqs.iter().enumerate() {
            match first.entry(*req) {
                std::collections::hash_map::Entry::Occupied(e) => order[*e.get()].1.push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(order.len());
                    order.push((*req, vec![i]));
                }
            }
        }

        // Pass 1: one cache lookup per unique key.
        let mut misses: Vec<(QueryRequest, Vec<usize>)> = Vec::new();
        for (req, slots) in order {
            if let Some(hit) = self.cache.get(&req) {
                for &slot in &slots {
                    let resp = Arc::new(QueryResponse {
                        cached: true,
                        coalesced: false,
                        service_us: us(&t0),
                        ..(*hit).clone()
                    });
                    self.finish(&resp);
                    out[slot] = Some(resp);
                }
            } else {
                misses.push((req, slots));
            }
        }

        if !misses.is_empty() {
            // One snapshot read for every miss in the batch.
            let (search, epoch) = self.snapshot();
            let mut leaders: Vec<(FlightGuard<'_>, Vec<usize>)> = Vec::new();
            let mut followers: Vec<(Arc<Flight>, QueryRequest, Vec<usize>)> = Vec::new();
            let mut stale: Vec<(QueryRequest, Vec<usize>)> = Vec::new();
            for (req, slots) in misses {
                match self.join_flight(req, epoch) {
                    Role::Leader(flight) => leaders.push((
                        FlightGuard {
                            inner: self,
                            key: req,
                            flight,
                            published: false,
                        },
                        slots,
                    )),
                    Role::Follower(flight) => followers.push((flight, req, slots)),
                    // An install raced between our snapshot and this
                    // join; the per-request path re-reads and retries.
                    Role::StaleSnapshot => stale.push((req, slots)),
                }
            }

            // Resolve every leader on the one snapshot: unservable
            // requests get the empty community immediately, the rest go
            // through one batched kernel call per algorithm present.
            // Each leader is published (cache + flight) the moment its
            // summary exists — before the next group computes — so an
            // external follower of one key never waits on the rest of
            // the batch, only on its own group.
            let publish_leader =
                |(mut guard, slots): (FlightGuard<'_>, Vec<usize>),
                 summary: Arc<CommunitySummary>,
                 out: &mut Vec<Option<Arc<QueryResponse>>>| {
                    let req = guard.key;
                    let resp = Arc::new(QueryResponse {
                        request: req,
                        summary,
                        cached: false,
                        coalesced: false,
                        epoch,
                        service_us: us(&t0),
                    });
                    self.cache_if_current(req, &resp, epoch);
                    guard.publish(resp.clone());
                    drop(guard);
                    for (k, &slot) in slots.iter().enumerate() {
                        let r = if k == 0 {
                            resp.clone()
                        } else {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            Arc::new(QueryResponse {
                                coalesced: true,
                                service_us: us(&t0),
                                ..(*resp).clone()
                            })
                        };
                        self.finish(&r);
                        out[slot] = Some(r);
                    }
                };
            let mut groups: Vec<(Algorithm, Vec<usize>)> = Vec::new();
            let mut pending: Vec<Option<(FlightGuard<'_>, Vec<usize>)>> =
                Vec::with_capacity(leaders.len());
            for (guard, slots) in leaders {
                if !Self::servable(&guard.key, &search) {
                    publish_leader(
                        (guard, slots),
                        Arc::new(CommunitySummary::empty()),
                        &mut out,
                    );
                    continue;
                }
                let idx = pending.len();
                match groups.iter_mut().find(|(a, _)| *a == guard.key.algo) {
                    Some((_, g)) => g.push(idx),
                    None => groups.push((guard.key.algo, vec![idx])),
                }
                pending.push(Some((guard, slots)));
            }
            for (algo, lis) in groups {
                let queries: Vec<(Vertex, usize, usize)> = lis
                    .iter()
                    .map(|&li| {
                        let r = pending[li]
                            .as_ref()
                            .expect("pending until its group runs")
                            .0
                            .key;
                        (r.q, r.alpha as usize, r.beta as usize)
                    })
                    .collect();
                // A panic inside the kernel unwinds through the
                // FlightGuards, poisoning every unpublished flight.
                let subs = search.significant_communities_in(&queries, algo, ws);
                for (li, sub) in lis.into_iter().zip(&subs) {
                    let leader = pending[li].take().expect("each leader published once");
                    publish_leader(
                        leader,
                        Arc::new(CommunitySummary::from_subgraph(sub)),
                        &mut out,
                    );
                }
            }
            debug_assert!(
                pending.iter().all(Option::is_none),
                "leader left unpublished"
            );

            // Every leader above is published before we wait on anyone
            // else's flight (the stale retries and followers below), so
            // two workers batching each other's keys can never deadlock
            // on one another.
            // Rare install race: the per-request path re-reads the
            // snapshot and retries. Runs after our own leaders are
            // published (it may block as a follower elsewhere).
            for (req, slots) in stale {
                let resp = self.serve(req, ws);
                for (k, &slot) in slots.iter().enumerate() {
                    let r = if k == 0 {
                        resp.clone()
                    } else {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        let r = Arc::new(QueryResponse {
                            coalesced: true,
                            service_us: us(&t0),
                            ..(*resp).clone()
                        });
                        self.finish(&r);
                        r
                    };
                    out[slot] = Some(r);
                }
            }

            for (flight, req, slots) in followers {
                let shared = flight.wait().unwrap_or_else(|| {
                    panic!("in-flight leader for {req:?} panicked before publishing")
                });
                for &slot in &slots {
                    let resp = Arc::new(QueryResponse {
                        cached: false,
                        coalesced: true,
                        service_us: us(&t0),
                        ..(*shared).clone()
                    });
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    self.finish(&resp);
                    out[slot] = Some(resp);
                }
            }
        }

        out.into_iter()
            .map(|r| r.expect("every batch slot answered"))
            .collect()
    }
}

enum Job {
    /// One request, one response.
    Single(QueryRequest, Sender<Arc<QueryResponse>>),
    /// N requests served by one worker with amortized snapshot, cache
    /// and workspace handling; answered as one vector in request order.
    Batch(Vec<QueryRequest>, Sender<Vec<Arc<QueryResponse>>>),
}

/// A pending response; produced by [`QueryEngine::submit`].
pub struct ResponseHandle {
    rx: Receiver<Arc<QueryResponse>>,
}

impl ResponseHandle {
    /// Blocks until the engine answers.
    ///
    /// # Panics
    /// Panics if the query panicked inside the engine or the engine
    /// shut down before answering.
    pub fn wait(self) -> Arc<QueryResponse> {
        self.rx
            .recv()
            .expect("query panicked in the engine or engine shut down before responding")
    }
}

/// A pending batch of responses; produced by
/// [`QueryEngine::submit_batch`]. Responses arrive together, in the
/// order the requests were submitted.
pub struct BatchHandle {
    rx: Receiver<Vec<Arc<QueryResponse>>>,
}

impl BatchHandle {
    /// Blocks until the engine answers the whole batch.
    ///
    /// # Panics
    /// Panics if a query panicked inside the engine or the engine shut
    /// down before answering.
    pub fn wait(self) -> Vec<Arc<QueryResponse>> {
        self.rx
            .recv()
            .expect("batch panicked in the engine or engine shut down before responding")
    }
}

/// The concurrent query-serving engine. See the [module docs](self).
pub struct QueryEngine {
    inner: Arc<Inner>,
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Spawns the worker pool and returns the serving handle.
    pub fn start(search: Arc<CommunitySearch>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            search: RwLock::new((search, 0)),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            inflight: Mutex::new(HashMap::new()),
            hist: LatencyHistogram::default(),
            completed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            scratch: (0..workers).map(|_| ScratchSlot::default()).collect(),
            started: Instant::now(),
            workers,
        });
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("scs-worker-{i}"))
                    .spawn(move || {
                        // The worker's scratch arena: reused across every
                        // query it serves and across index epoch swaps
                        // (it simply grows on the first query against a
                        // larger installed graph). After warm-up the
                        // steady-state compute path stops allocating.
                        let mut ws = QueryWorkspace::new();
                        loop {
                            // Hold the queue lock only across the dequeue so
                            // workers pull jobs concurrently with compute.
                            let job = rx.lock().unwrap().recv();
                            let Ok(job) = job else {
                                break; // all senders gone: shutdown
                            };
                            // Backstop: a panic in query code must not
                            // shrink the pool. The flight guards have
                            // already poisoned their keys' followers;
                            // dropping `reply` unanswered makes the
                            // submitter's wait() fail loudly. A submitter
                            // that dropped its handle just doesn't
                            // collect the result.
                            match job {
                                Job::Single(req, reply) => {
                                    let resp = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| inner.serve(req, &mut ws)),
                                    );
                                    if let Ok(resp) = resp {
                                        let _ = reply.send(resp);
                                    }
                                }
                                Job::Batch(reqs, reply) => {
                                    let resp =
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                            || inner.serve_batch(&reqs, &mut ws),
                                        ));
                                    if let Ok(resp) = resp {
                                        let _ = reply.send(resp);
                                    }
                                }
                            }
                            let slot = &inner.scratch[i];
                            slot.bytes.store(ws.heap_bytes(), Ordering::Relaxed);
                            slot.allocs_avoided
                                .store(ws.allocations_avoided(), Ordering::Relaxed);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        QueryEngine {
            inner,
            tx: Some(tx),
            handles,
        }
    }

    /// Enqueues a request; the returned handle yields the response.
    pub fn submit(&self, req: QueryRequest) -> ResponseHandle {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .as_ref()
            .expect("engine already shut down")
            .send(Job::Single(req, reply_tx))
            .expect("worker pool hung up");
        ResponseHandle { rx: reply_rx }
    }

    /// Enqueues a whole batch as **one** job: one queue round-trip, one
    /// index-snapshot read, one cache lookup per unique key and one
    /// worker workspace for every computation in the batch (see
    /// [`scs::CommunitySearch::significant_communities_in`]). The
    /// handle yields every response in submission order; results are
    /// identical to submitting each request on its own.
    ///
    /// Batching trades intra-batch parallelism for lower per-request
    /// overhead: the whole batch is served by one worker, so it pays
    /// off when requests are individually cheap (amortizing the queue
    /// and snapshot handshakes) or when the submitter is itself one of
    /// many concurrent clients keeping the pool busy.
    pub fn submit_batch(&self, reqs: &[QueryRequest]) -> BatchHandle {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .as_ref()
            .expect("engine already shut down")
            .send(Job::Batch(reqs.to_vec(), reply_tx))
            .expect("worker pool hung up");
        BatchHandle { rx: reply_rx }
    }

    /// Submits and waits: one blocking round-trip through the pool.
    pub fn query(&self, req: QueryRequest) -> Arc<QueryResponse> {
        self.submit(req).wait()
    }

    /// [`Self::submit_batch`] and wait: one blocking round-trip for the
    /// whole batch.
    pub fn query_batch(&self, reqs: &[QueryRequest]) -> Vec<Arc<QueryResponse>> {
        self.submit_batch(reqs).wait()
    }

    /// Installs a new index snapshot without stopping the workers: bumps
    /// the epoch and invalidates the result cache. Queries already
    /// computing finish on the snapshot they started with (tagged with
    /// the prior epoch).
    pub fn install(&self, search: Arc<CommunitySearch>) -> u64 {
        let mut guard = self.inner.search.write().unwrap();
        guard.0 = search;
        guard.1 += 1;
        let epoch = guard.1;
        // Clear under the write lock: leaders re-check the epoch before
        // caching, so no stale entry can be inserted after this clear.
        self.inner.cache.clear();
        epoch
    }

    /// The current `(index snapshot, epoch)` pair.
    pub fn current_index(&self) -> (Arc<CommunitySearch>, u64) {
        self.inner.snapshot()
    }

    /// Metrics snapshot since engine start.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let completed = inner.completed.load(Ordering::Relaxed);
        let elapsed = inner.started.elapsed().as_secs_f64().max(1e-9);
        ServiceStats {
            workers: inner.workers,
            completed,
            coalesced: inner.coalesced.load(Ordering::Relaxed),
            batches: inner.batches.load(Ordering::Relaxed),
            batched: inner.batched.load(Ordering::Relaxed),
            cache: inner.cache.stats(),
            epoch: inner.snapshot().1,
            qps: completed as f64 / elapsed,
            mean_us: inner.hist.mean_us(),
            p50_us: inner.hist.quantile_us(0.50),
            p90_us: inner.hist.quantile_us(0.90),
            p99_us: inner.hist.quantile_us(0.99),
            max_us: inner.hist.max_us(),
            scratch_bytes: inner
                .scratch
                .iter()
                .map(|s| s.bytes.load(Ordering::Relaxed))
                .sum(),
            allocs_avoided: inner
                .scratch
                .iter()
                .map(|s| s.allocs_avoided.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Stops accepting work, drains the queue and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::figure2_example;
    use scs::Algorithm;

    fn engine(workers: usize) -> QueryEngine {
        QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers,
                cache_capacity: 64,
                cache_shards: 4,
            },
        )
    }

    #[test]
    fn serves_and_caches() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Peel);
        let first = e.query(req);
        assert!(!first.cached);
        assert_eq!(first.summary.size(), 4);
        assert_eq!(first.summary.min_weight, Some(13.0));
        let second = e.query(req);
        assert!(second.cached);
        assert_eq!(second.summary, first.summary);
        let st = e.stats();
        assert_eq!(st.completed, 2);
        assert_eq!(st.cache.hits, 1);
        assert!(st.scratch_bytes > 0, "worker workspace must be resident");
        e.shutdown();
    }

    #[test]
    fn distinct_algorithms_get_distinct_cache_slots() {
        let e = engine(1);
        let q = e.current_index().0.graph().upper(2);
        let a = e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        let b = e.query(QueryRequest::new(q, 2, 2, Algorithm::Expand));
        assert!(!a.cached && !b.cached);
        assert_eq!(a.summary, b.summary); // algorithms agree on the answer
        e.shutdown();
    }

    #[test]
    fn install_bumps_epoch_and_invalidates() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Auto);
        let before = e.query(req);
        assert_eq!(before.epoch, 0);
        let epoch = e.install(CommunitySearch::shared(figure2_example()));
        assert_eq!(epoch, 1);
        let after = e.query(req);
        assert!(!after.cached, "install must invalidate the cache");
        assert_eq!(after.epoch, 1);
        assert_eq!(after.summary, before.summary);
        e.shutdown();
    }

    #[test]
    fn unservable_requests_get_empty_answers_and_pool_survives() {
        let e = engine(2);
        let g_vertices = e.current_index().0.graph().n_vertices();
        // Query vertex outside the graph: empty community, no panic.
        let bad = e.query(QueryRequest::new(
            bigraph::Vertex(g_vertices as u32 + 10),
            2,
            2,
            Algorithm::Auto,
        ));
        assert_eq!(*bad.summary, crate::CommunitySummary::empty());
        // Zero degree constraint (the index asserts ≥ 1): also empty.
        let q = e.current_index().0.graph().upper(2);
        let zero = e.query(QueryRequest::new(q, 0, 2, Algorithm::Peel));
        assert_eq!(*zero.summary, crate::CommunitySummary::empty());
        // The pool is still alive and serving real queries.
        let good = e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        assert_eq!(good.summary.size(), 4);
        e.shutdown();
    }

    #[test]
    fn batch_answers_in_submission_order_and_dedups() {
        let e = engine(2);
        let g = e.current_index().0.graph().clone();
        let q = g.upper(2);
        let other = g.upper(0);
        let reqs = vec![
            QueryRequest::new(q, 2, 2, Algorithm::Peel),
            QueryRequest::new(other, 1, 1, Algorithm::Peel),
            QueryRequest::new(q, 2, 2, Algorithm::Peel), // in-batch duplicate
            QueryRequest::new(q, 2, 2, Algorithm::Expand), // distinct key
        ];
        let resps = e.query_batch(&reqs);
        assert_eq!(resps.len(), 4);
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.request, *req, "answers must keep submission order");
        }
        assert_eq!(resps[0].summary.size(), 4);
        assert_eq!(resps[0].summary, resps[2].summary);
        assert!(!resps[0].cached && !resps[0].coalesced);
        assert!(
            resps[2].coalesced,
            "duplicate key inside a batch shares the leader's computation"
        );
        let st = e.stats();
        assert_eq!(st.completed, 4);
        assert_eq!(st.batches, 1);
        assert_eq!(st.batched, 4);
        assert_eq!(st.coalesced, 1);
        // 3 unique keys looked up once each, all misses.
        assert_eq!(st.cache.misses, 3);

        // A second identical batch is all cache hits — again one lookup
        // per unique key.
        let again = e.query_batch(&reqs);
        for (a, b) in resps.iter().zip(&again) {
            assert!(b.cached);
            assert_eq!(a.summary, b.summary);
        }
        let st = e.stats();
        assert_eq!(st.cache.hits, 3);
        assert_eq!(st.completed, 8);
        e.shutdown();
    }

    #[test]
    fn batch_matches_per_request_submission() {
        let e = engine(2);
        let g = e.current_index().0.graph().clone();
        let reqs: Vec<QueryRequest> = (0..g.n_upper())
            .flat_map(|i| {
                [
                    QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel),
                    QueryRequest::new(g.upper(i), 1, 2, Algorithm::Expand),
                ]
            })
            .collect();
        let batched = e.query_batch(&reqs);
        let e2 = engine(2);
        for (req, b) in reqs.iter().zip(&batched) {
            assert_eq!(e2.query(*req).summary, b.summary, "{req:?}");
        }
        e.shutdown();
        e2.shutdown();
    }

    #[test]
    fn batch_handles_empty_and_unservable_requests() {
        let e = engine(2);
        assert!(e.query_batch(&[]).is_empty());
        let g_vertices = e.current_index().0.graph().n_vertices();
        let q = e.current_index().0.graph().upper(2);
        let reqs = vec![
            QueryRequest::new(
                bigraph::Vertex(g_vertices as u32 + 3),
                2,
                2,
                Algorithm::Auto,
            ),
            QueryRequest::new(q, 0, 2, Algorithm::Peel),
            QueryRequest::new(q, 2, 2, Algorithm::Peel),
        ];
        let resps = e.query_batch(&reqs);
        assert_eq!(*resps[0].summary, crate::CommunitySummary::empty());
        assert_eq!(*resps[1].summary, crate::CommunitySummary::empty());
        assert_eq!(resps[2].summary.size(), 4);
        e.shutdown();
    }

    #[test]
    fn batch_sees_installs_like_single_requests() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Auto);
        let before = e.query_batch(&[req]);
        assert_eq!(before[0].epoch, 0);
        e.install(CommunitySearch::shared(figure2_example()));
        let after = e.query_batch(&[req]);
        assert!(!after[0].cached, "install must invalidate the cache");
        assert_eq!(after[0].epoch, 1);
        assert_eq!(after[0].summary, before[0].summary);
        e.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let e = engine(3);
        let q = e.current_index().0.graph().upper(0);
        e.query(QueryRequest::new(q, 1, 1, Algorithm::Auto));
        drop(e); // must not hang or leak panicking threads
    }
}
