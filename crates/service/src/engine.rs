//! The concurrent query engine: a fixed worker pool over an immutable,
//! epoch-swappable [`CommunitySearch`].
//!
//! Life of a request:
//!
//! 1. [`QueryEngine::submit`] pushes a job onto the mpsc queue and
//!    returns a [`ResponseHandle`]; [`QueryEngine::query`] is the
//!    blocking convenience.
//! 2. A worker dequeues, checks the sharded LRU cache, and on a hit
//!    responds immediately (`cached = true`).
//! 3. On a miss it joins the in-flight table. The first thread for a key
//!    becomes the *leader* and computes `significant_community` on the
//!    current index snapshot; threads that arrive while the leader runs
//!    become *followers* and block on the flight's condvar instead of
//!    duplicating work (`coalesced = true`).
//! 4. The leader publishes the response, installs it in the cache and
//!    wakes the followers.
//!
//! Batches ([`QueryEngine::submit_batch`]) ride the same machinery with
//! the per-request overheads paid once: one job carries the whole batch
//! through the queue, the serving worker reads **one** index snapshot,
//! looks every *unique* key up in the cache once, partitions the misses
//! into leaders / followers / stale up front, and answers the leaders
//! through batched kernel calls
//! ([`scs::CommunitySearch::significant_communities_in`]). Responses
//! come back in submission order; duplicate keys inside a batch are
//! computed once and the extra slots answered exactly as a serial
//! resubmission would be, so [`ServiceStats`] cannot drift between
//! submission modes.
//!
//! When the pool has idle capacity, a batch is additionally **split**:
//! after the hit/coalesce/leader partition, the leader computations are
//! carved into per-worker sub-batches and the number of workers woken
//! to help is bounded by `min(idle workers, ceil(leaders /
//! min_sub_batch) - 1)` — chunk boundaries respect per-algorithm runs
//! (each chunk is one batched kernel call), so a many-algorithm batch
//! may carve more chunks than that, but never runs them any wider.
//! Chunks are parked in a claimable queue shared with the pool and
//! advertised with [`Job::Sub`] wake-up hints. Any worker —
//! the batch owner included — claims and runs sub-batches; each one is
//! pure compute-and-publish (one batched kernel call, each leader's
//! flight and cache entry published the moment its summary exists), so
//! a sub-batch can never wait on another flight and the owner's join
//! can never deadlock. The owner drains whatever the pool does not
//! claim, waits for the stragglers, and only then — with every one of
//! its leaders published — blocks on stale retries and followers,
//! preserving the no-deadlock ordering argument of the unsplit path.
//! Results are bit-identical to the unsplit (and per-request) path; the
//! split only changes which thread runs which leader.
//!
//! [`QueryEngine::install`] atomically replaces the index (one
//! write-lock), bumps the epoch and clears the cache, so a rebuilt index
//! — e.g. [`scs::DynamicIndex::snapshot`] after edge updates — goes live
//! without stopping the workers. In-flight leaders that started on the
//! old snapshot finish on it (their Arc keeps it alive) and their
//! responses carry the old epoch; the cache only ever holds entries
//! inserted under the epoch read together with the snapshot, and is
//! cleared on install, so a hit never serves a community computed
//! against an index older than the last install. The in-flight table is
//! fenced the same way: a request only coalesces onto a flight whose
//! epoch matches the one it observed as current, so a post-install
//! request never receives a pre-install result.

use crate::cache::ShardedCache;
use crate::stats::{LatencyHistogram, ServiceStats};
use crate::{CommunitySummary, QueryRequest, QueryResponse};
use bigraph::Vertex;
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Total result-cache entries across all shards.
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Batch-splitting granularity: a split batch wakes at most one
    /// helper per `min_sub_batch` leader computations (and never more
    /// than the pool's idle capacity), so tiny batches are served
    /// inline instead of being scattered. Chunks themselves follow
    /// per-algorithm runs and can be smaller or more numerous than
    /// this fan-out; they queue behind it. Clamped to ≥ 1.
    pub min_sub_batch: usize,
    /// Adaptive batch splitting on/off. Off, every batch is served in
    /// full by the worker that dequeued it (the pre-split behaviour and
    /// the `scs serve-bench --no-split` escape hatch); results are
    /// identical either way.
    pub split_batches: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_capacity: 4096,
            cache_shards: 16,
            min_sub_batch: 8,
            split_batches: true,
        }
    }
}

/// What a flight's followers eventually observe.
enum FlightState {
    /// Leader still computing.
    Pending,
    /// Leader published.
    Done(Arc<QueryResponse>),
    /// Leader unwound without publishing (panic in the query code).
    Poisoned,
}

/// One in-flight computation; followers sleep on `cv` until the leader
/// fills `slot`. `epoch` is the index epoch the leader computes on —
/// followers only join flights of the epoch they themselves observed as
/// current, so a post-install request can never coalesce onto a
/// pre-install computation.
struct Flight {
    epoch: u64,
    slot: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> Option<Arc<QueryResponse>> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            match &*slot {
                FlightState::Pending => slot = self.cv.wait(slot).unwrap(),
                FlightState::Done(resp) => return Some(resp.clone()),
                FlightState::Poisoned => return None,
            }
        }
    }

    fn publish(&self, state: FlightState) {
        *self.slot.lock().unwrap() = state;
        self.cv.notify_all();
    }
}

enum Role {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
    /// The caller's epoch snapshot is older than the resident flight's:
    /// an install raced in; re-read the snapshot and rejoin.
    StaleSnapshot,
}

/// Cleans a leader's flight out of the in-flight table even if the
/// query code panics: on unwind the flight is poisoned (waking every
/// follower, who re-panic with context instead of blocking forever)
/// and removed so the key is not permanently wedged.
///
/// Owns an `Arc` to the engine state (not a borrow) so a guard can ride
/// a split batch's sub-batch to another worker thread.
struct FlightGuard {
    inner: Arc<Inner>,
    key: QueryRequest,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard {
    fn publish(&mut self, resp: Arc<QueryResponse>) {
        self.flight.publish(FlightState::Done(resp));
        self.published = true;
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.published {
            self.flight.publish(FlightState::Poisoned);
        }
        // Remove only our own flight — a newer-epoch leader may have
        // replaced the entry under this key.
        let mut map = self.inner.inflight.lock().unwrap();
        if map
            .get(&self.key)
            .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
        {
            map.remove(&self.key);
        }
    }
}

/// One leader computation of a batch: the flight to publish plus every
/// submission slot its key answers (first slot = the leader's own).
type Unit = (FlightGuard, Vec<usize>);

/// One fanned-out share of a split batch: a same-algorithm run of
/// leader units that one worker answers through one batched kernel
/// call. A popped chunk is owned by its executor, so its flight guards
/// poison-and-clean on a panic exactly like an inline leader's.
struct SubChunk {
    algo: Algorithm,
    units: Vec<Unit>,
}

/// Join state shared between a splitting batch owner and the workers
/// that claim its sub-batches.
struct BatchShared {
    /// The owner's index snapshot: every sub-batch computes on it, so a
    /// split batch is as epoch-consistent as an unsplit one.
    search: Arc<CommunitySearch>,
    epoch: u64,
    /// The batch's dequeue time — response `service_us` is measured
    /// from it on every worker, as in the unsplit path.
    t0: Instant,
    /// Unclaimed sub-batches. Any worker (the owner included) pops and
    /// executes; a [`Job::Sub`] hint that finds this empty is a no-op.
    queue: Mutex<Vec<SubChunk>>,
    /// Chunks carved; the owner waits until `done` reaches it.
    total: usize,
    done: Mutex<usize>,
    cv: Condvar,
    /// `(submission slot, response)` pairs from executed chunks.
    results: Mutex<Vec<(usize, Arc<QueryResponse>)>>,
}

/// The slice of batch context every leader-publishing site needs.
#[derive(Clone, Copy)]
struct BatchCtx<'a> {
    search: &'a CommunitySearch,
    epoch: u64,
    t0: Instant,
}

/// Per-worker scratch accounting, published after every served request
/// so [`QueryEngine::stats`] can aggregate without touching the
/// workspaces themselves (they are owned by the worker threads).
#[derive(Default)]
struct ScratchSlot {
    /// Resident bytes of the worker's [`QueryWorkspace`].
    bytes: AtomicUsize,
    /// Cumulative scratch acquisitions served without allocating.
    allocs_avoided: AtomicU64,
}

/// Shared state between the engine handle and its workers.
struct Inner {
    search: RwLock<(Arc<CommunitySearch>, u64)>,
    cache: ShardedCache<QueryRequest, Arc<QueryResponse>>,
    inflight: Mutex<HashMap<QueryRequest, Arc<Flight>>>,
    hist: LatencyHistogram,
    completed: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    splits: AtomicU64,
    sub_batches: AtomicU64,
    /// Workers currently blocked on (or about to block on) the job
    /// queue — the idle capacity the split heuristic consults. Reads
    /// are advisory: a stale count only mis-sizes a split, never
    /// mis-answers one.
    idle_workers: AtomicUsize,
    /// Queue sender the batch path uses to post [`Job::Sub`] wake-up
    /// hints. Taken (to `None`) on shutdown so the channel can
    /// disconnect; a missing sender only costs parallelism — the batch
    /// owner runs every sub-batch itself.
    sub_tx: Mutex<Option<Sender<Job>>>,
    min_sub_batch: usize,
    split_batches: bool,
    scratch: Vec<ScratchSlot>,
    started: Instant,
    workers: usize,
}

impl Inner {
    /// The current `(index snapshot, epoch)` pair, read consistently.
    fn snapshot(&self) -> (Arc<CommunitySearch>, u64) {
        let guard = self.search.read().unwrap();
        (guard.0.clone(), guard.1)
    }

    /// Joins (or opens) the flight for `key` at `epoch`. A resident
    /// flight from an *older* epoch is replaced — its leader still
    /// answers its own followers, but nobody new coalesces onto a
    /// retired index. A resident flight from a *newer* epoch means the
    /// caller's snapshot is stale (an install won the race); it must
    /// re-read and retry rather than evict current-epoch work.
    fn join_flight(&self, key: QueryRequest, epoch: u64) -> Role {
        let mut map = self.inflight.lock().unwrap();
        if let Some(flight) = map.get(&key) {
            if flight.epoch == epoch {
                return Role::Follower(flight.clone());
            }
            if flight.epoch > epoch {
                return Role::StaleSnapshot;
            }
        }
        let flight = Arc::new(Flight {
            epoch,
            slot: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        map.insert(key, flight.clone());
        Role::Leader(flight)
    }

    fn finish(&self, resp: &QueryResponse) {
        self.hist.record(resp.service_us);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the engine can compute an answer for `req` on `search`.
    /// An unservable request (vertex outside the installed graph, zero
    /// constraint) gets the empty community rather than panicking a
    /// worker: the graph can shrink across installs, so clients cannot
    /// validate upfront. Shared by the single and batch paths so the
    /// two can never drift apart.
    fn servable(req: &QueryRequest, search: &CommunitySearch) -> bool {
        req.q.index() < search.graph().n_vertices() && req.alpha >= 1 && req.beta >= 1
    }

    /// Caches `resp` only if no install retired the index it was
    /// computed on, and reports whether it did. Holding the read lock
    /// makes the epoch-check + insert atomic w.r.t. `install`, which
    /// clears the cache under the write lock — so a stale entry can
    /// never land after the clear.
    fn cache_if_current(&self, req: QueryRequest, resp: &Arc<QueryResponse>, epoch: u64) -> bool {
        let lock = self.search.read().unwrap();
        if lock.1 == epoch {
            self.cache.insert(req, resp.clone());
            true
        } else {
            false
        }
    }

    /// How many sub-batches to carve `n_units` leader computations
    /// into: 1 (serve inline) unless splitting is enabled, and
    /// otherwise capped both by the pool's idle capacity (idle workers
    /// plus the serving worker itself) and by the one-sub-batch-per-
    /// `min_sub_batch`-leaders floor, so small batches stay whole.
    fn split_factor(&self, n_units: usize) -> usize {
        if !self.split_batches || n_units < 2 {
            return 1;
        }
        let idle = self.idle_workers.load(Ordering::Relaxed);
        (idle + 1).min(n_units.div_ceil(self.min_sub_batch.max(1)))
    }
}

/// Serves one request with full per-request accounting: one cache
/// lookup, then — on a miss — the flight protocol of [`serve_miss`].
fn serve(inner: &Arc<Inner>, req: QueryRequest, ws: &mut QueryWorkspace) -> Arc<QueryResponse> {
    let t0 = Instant::now();
    if let Some(hit) = inner.cache.get(&req) {
        let resp = Arc::new(QueryResponse {
            cached: true,
            coalesced: false,
            service_us: t0.elapsed().as_micros() as u64,
            ..(*hit).clone()
        });
        inner.finish(&resp);
        return resp;
    }
    serve_miss(inner, req, ws, t0)
}

/// The miss path of [`serve`]: joins (or opens) the flight for `req`
/// and computes or waits. Factored out of [`serve`] so the batch path
/// can resolve a stale-snapshot key without a second cache lookup being
/// counted — its pass-1 lookup already recorded the miss, exactly the
/// one lookup a per-request submission performs.
fn serve_miss(
    inner: &Arc<Inner>,
    req: QueryRequest,
    ws: &mut QueryWorkspace,
    t0: Instant,
) -> Arc<QueryResponse> {
    // Epochs are monotonic, so the retry loop terminates: it only
    // loops when an install landed between our snapshot and the
    // join, and each retry re-reads the newer snapshot.
    let (search, epoch, role) = loop {
        let (search, epoch) = inner.snapshot();
        match inner.join_flight(req, epoch) {
            Role::StaleSnapshot => continue,
            role => break (search, epoch, role),
        }
    };
    match role {
        Role::StaleSnapshot => unreachable!("retried above"),
        Role::Leader(flight) => {
            let mut guard = FlightGuard {
                inner: inner.clone(),
                key: req,
                flight,
                published: false,
            };
            let summary = if Inner::servable(&req, &search) {
                // The worker's workspace provides every scratch
                // buffer; only the result itself is allocated.
                let sub = search.significant_community_in(
                    req.q,
                    req.alpha as usize,
                    req.beta as usize,
                    req.algo,
                    ws,
                );
                Arc::new(CommunitySummary::from_subgraph(&sub))
            } else {
                Arc::new(CommunitySummary::empty())
            };
            let resp = Arc::new(QueryResponse {
                request: req,
                summary,
                cached: false,
                coalesced: false,
                epoch,
                service_us: t0.elapsed().as_micros() as u64,
            });
            inner.cache_if_current(req, &resp, epoch);
            // Publish, then let the guard's Drop clear the table
            // entry: a thread that found this flight always gets an
            // answer; threads arriving after the removal start a
            // fresh flight (and typically hit the cache first).
            guard.publish(resp.clone());
            drop(guard);
            inner.finish(&resp);
            resp
        }
        Role::Follower(flight) => {
            let shared = flight.wait().unwrap_or_else(|| {
                panic!("in-flight leader for {req:?} panicked before publishing")
            });
            let resp = Arc::new(QueryResponse {
                cached: false,
                coalesced: true,
                service_us: t0.elapsed().as_micros() as u64,
                ..(*shared).clone()
            });
            inner.coalesced.fetch_add(1, Ordering::Relaxed);
            inner.finish(&resp);
            resp
        }
    }
}

/// Builds and publishes one leader's response (cache + flight), then
/// answers every submission slot of its key into `sink`. Slot 0 is the
/// leader's own computed response. Duplicate slots are answered the way
/// a serial per-request resubmission would be: as cache hits when the
/// leader's result went into the cache, otherwise (an install retired
/// the epoch before the insert) as misses coalesced onto this
/// computation — so the cache and coalescing counters cannot drift
/// between submission modes, provided the cache is large enough to
/// retain the batch's unique keys (with a cache smaller than one
/// batch's key set, a duplicate counts as the hit its entry was at
/// insert time even if eviction would have forced a per-request
/// resubmission to recompute; deliberately so — re-probing, let alone
/// recomputing, could block, and sub-batch execution must never wait).
fn publish_unit(
    inner: &Arc<Inner>,
    ctx: BatchCtx<'_>,
    mut guard: FlightGuard,
    slots: &[usize],
    summary: Arc<CommunitySummary>,
    sink: &mut Vec<(usize, Arc<QueryResponse>)>,
) {
    let us = |t0: &Instant| t0.elapsed().as_micros() as u64;
    let req = guard.key;
    let resp = Arc::new(QueryResponse {
        request: req,
        summary,
        cached: false,
        coalesced: false,
        epoch: ctx.epoch,
        service_us: us(&ctx.t0),
    });
    let resident = inner.cache_if_current(req, &resp, ctx.epoch);
    guard.publish(resp.clone());
    drop(guard);
    inner.finish(&resp);
    sink.push((slots[0], resp.clone()));
    for &slot in &slots[1..] {
        let r = if resident {
            inner.cache.record_extra_hit();
            Arc::new(QueryResponse {
                cached: true,
                service_us: us(&ctx.t0),
                ..(*resp).clone()
            })
        } else {
            inner.cache.record_extra_miss();
            inner.coalesced.fetch_add(1, Ordering::Relaxed);
            Arc::new(QueryResponse {
                coalesced: true,
                service_us: us(&ctx.t0),
                ..(*resp).clone()
            })
        };
        inner.finish(&r);
        sink.push((slot, r));
    }
}

/// Answers a same-algorithm run of leader units through **one** batched
/// kernel call on `ws`, publishing each leader the moment its summary
/// exists and appending `(slot, response)` pairs to `sink`. A panic
/// inside the kernel unwinds through the guards in `units`, poisoning
/// every unpublished flight.
fn run_units(
    inner: &Arc<Inner>,
    ctx: BatchCtx<'_>,
    algo: Algorithm,
    units: Vec<Unit>,
    ws: &mut QueryWorkspace,
    sink: &mut Vec<(usize, Arc<QueryResponse>)>,
) {
    let queries: Vec<(Vertex, usize, usize)> = units
        .iter()
        .map(|(g, _)| (g.key.q, g.key.alpha as usize, g.key.beta as usize))
        .collect();
    let subs = ctx.search.significant_communities_in(&queries, algo, ws);
    for ((guard, slots), sub) in units.into_iter().zip(&subs) {
        publish_unit(
            inner,
            ctx,
            guard,
            &slots,
            Arc::new(CommunitySummary::from_subgraph(sub)),
            sink,
        );
    }
}

/// Drains and executes a split batch's unclaimed sub-batches; called by
/// the batch owner (who runs whatever the pool does not claim) and by
/// any worker that dequeued a [`Job::Sub`] hint. Chunk execution is
/// pure compute-and-publish — it never waits on another flight — which
/// is what keeps the split path deadlock-free: every chunk is either
/// unclaimed (the owner will run it) or actively computing, so the
/// owner's join always makes progress.
fn run_split_chunks(inner: &Arc<Inner>, shared: &BatchShared, ws: &mut QueryWorkspace) {
    loop {
        let Some(chunk) = shared.queue.lock().unwrap().pop() else {
            return;
        };
        // Count the chunk done even if the kernel panics (its guards
        // poison the flights), so the owner's join never hangs — the
        // missing results make the owner fail loudly instead.
        struct DoneGuard<'a>(&'a BatchShared);
        impl Drop for DoneGuard<'_> {
            fn drop(&mut self) {
                *self.0.done.lock().unwrap() += 1;
                self.0.cv.notify_all();
            }
        }
        let _done = DoneGuard(shared);
        let ctx = BatchCtx {
            search: &shared.search,
            epoch: shared.epoch,
            t0: shared.t0,
        };
        let mut sink = Vec::new();
        run_units(inner, ctx, chunk.algo, chunk.units, ws, &mut sink);
        shared.results.lock().unwrap().extend(sink);
    }
}

/// Serves a whole batch, amortizing the per-request costs: one cache
/// lookup per *unique* key, one index-snapshot read, batched kernel
/// calls for the leaders — fanned out across idle workers when the
/// split heuristic (see [`Inner::split_factor`]) says the pool has
/// capacity — and one response vector in submission order.
fn serve_batch(
    inner: &Arc<Inner>,
    reqs: &[QueryRequest],
    ws: &mut QueryWorkspace,
) -> Vec<Arc<QueryResponse>> {
    let t0 = Instant::now();
    inner.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .batched
        .fetch_add(reqs.len() as u64, Ordering::Relaxed);
    let mut out: Vec<Option<Arc<QueryResponse>>> = reqs.iter().map(|_| None).collect();
    let us = |t0: &Instant| t0.elapsed().as_micros() as u64;

    // Unique keys in first-occurrence order, each with every
    // submission slot it answers. Duplicates inside the batch are
    // computed (or looked up) once; the extra slots are answered as a
    // serial resubmission would be.
    let mut order: Vec<(QueryRequest, Vec<usize>)> = Vec::new();
    let mut first: HashMap<QueryRequest, usize> = HashMap::new();
    for (i, req) in reqs.iter().enumerate() {
        match first.entry(*req) {
            std::collections::hash_map::Entry::Occupied(e) => order[*e.get()].1.push(i),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(order.len());
                order.push((*req, vec![i]));
            }
        }
    }

    // Pass 1: one physical cache lookup per unique key, with duplicate
    // slots of a hit counted as the hits they are — per-request
    // submission performs one lookup per request, and the stats must
    // not depend on how requests were submitted.
    let mut misses: Vec<(QueryRequest, Vec<usize>)> = Vec::new();
    for (req, slots) in order {
        if let Some(hit) = inner.cache.get(&req) {
            for (k, &slot) in slots.iter().enumerate() {
                if k > 0 {
                    inner.cache.record_extra_hit();
                }
                let resp = Arc::new(QueryResponse {
                    cached: true,
                    coalesced: false,
                    service_us: us(&t0),
                    ..(*hit).clone()
                });
                inner.finish(&resp);
                out[slot] = Some(resp);
            }
        } else {
            misses.push((req, slots));
        }
    }

    if !misses.is_empty() {
        // One snapshot read for every miss in the batch.
        let (search, epoch) = inner.snapshot();
        let mut leaders: Vec<Unit> = Vec::new();
        let mut followers: Vec<(Arc<Flight>, QueryRequest, Vec<usize>)> = Vec::new();
        let mut stale: Vec<(QueryRequest, Vec<usize>)> = Vec::new();
        for (req, slots) in misses {
            match inner.join_flight(req, epoch) {
                Role::Leader(flight) => leaders.push((
                    FlightGuard {
                        inner: inner.clone(),
                        key: req,
                        flight,
                        published: false,
                    },
                    slots,
                )),
                Role::Follower(flight) => followers.push((flight, req, slots)),
                // An install raced between our snapshot and this
                // join; resolved below via the per-request miss path.
                Role::StaleSnapshot => stale.push((req, slots)),
            }
        }

        // Partition the servable leaders into per-algorithm runs; the
        // unservable get the empty community immediately.
        let ctx = BatchCtx {
            search: &search,
            epoch,
            t0,
        };
        let mut sink: Vec<(usize, Arc<QueryResponse>)> = Vec::new();
        let mut algo_units: Vec<(Algorithm, Vec<Unit>)> = Vec::new();
        let mut n_units = 0usize;
        for (guard, slots) in leaders {
            if !Inner::servable(&guard.key, &search) {
                publish_unit(
                    inner,
                    ctx,
                    guard,
                    &slots,
                    Arc::new(CommunitySummary::empty()),
                    &mut sink,
                );
                continue;
            }
            n_units += 1;
            let algo = guard.key.algo;
            match algo_units.iter_mut().find(|(a, _)| *a == algo) {
                Some((_, g)) => g.push((guard, slots)),
                None => algo_units.push((algo, vec![(guard, slots)])),
            }
        }

        let fanout = inner.split_factor(n_units);
        if fanout <= 1 {
            // Inline: this worker answers every leader itself, one
            // batched kernel call per algorithm present.
            for (algo, units) in algo_units {
                run_units(inner, ctx, algo, units, ws, &mut sink);
            }
        } else {
            // Split: carve the leader runs into `fanout`-ish chunks
            // (chunk boundaries respect algorithm runs, so each chunk
            // is still one kernel call — which also means a batch with
            // more algorithms than `fanout` carves more, smaller
            // chunks than `fanout`; the concurrency bound is enforced
            // on executors below, not on chunk count), park them in a
            // claimable queue and wake idle workers with hints. We
            // claim and run whatever the pool does not, then wait for
            // stragglers.
            let chunk_size = n_units.div_ceil(fanout);
            let mut chunks: Vec<SubChunk> = Vec::new();
            for (algo, mut units) in algo_units {
                while !units.is_empty() {
                    let tail = if units.len() > chunk_size {
                        units.split_off(chunk_size)
                    } else {
                        Vec::new()
                    };
                    chunks.push(SubChunk { algo, units });
                    units = tail;
                }
            }
            inner.splits.fetch_add(1, Ordering::Relaxed);
            inner
                .sub_batches
                .fetch_add(chunks.len() as u64, Ordering::Relaxed);
            let shared = Arc::new(BatchShared {
                search: search.clone(),
                epoch,
                t0,
                total: chunks.len(),
                queue: Mutex::new(chunks),
                done: Mutex::new(0),
                cv: Condvar::new(),
                results: Mutex::new(Vec::new()),
            });
            // A hint is only a wake-up: whoever pops a chunk runs it,
            // and a hinted worker drains chunks in a loop — so the
            // hint count, not the chunk count, is what bounds the
            // fan-out width. Cap it at `fanout - 1` helpers (idle
            // capacity), or a many-algorithm batch would wake more
            // workers than the pool has idle. A missing sender
            // (shutdown in progress) just means we run every chunk
            // ourselves.
            if let Some(tx) = inner.sub_tx.lock().unwrap().as_ref() {
                for _ in 1..shared.total.min(fanout) {
                    let _ = tx.send(Job::Sub(shared.clone()));
                }
            }
            run_split_chunks(inner, &shared, ws);
            let mut done = shared.done.lock().unwrap();
            while *done < shared.total {
                done = shared.cv.wait(done).unwrap();
            }
            drop(done);
            sink.extend(shared.results.lock().unwrap().drain(..));
        }
        for (slot, resp) in sink {
            out[slot] = Some(resp);
        }

        // Every leader above is published before we wait on anyone
        // else's flight (the stale retries and followers below), so
        // two workers batching each other's keys can never deadlock
        // on one another.
        // Rare install race: resolve each slot through the per-request
        // path — the first without a second cache lookup (pass 1
        // already counted this key's miss), duplicates with their own
        // lookup, exactly as if resubmitted.
        for (req, slots) in stale {
            for (k, &slot) in slots.iter().enumerate() {
                let resp = if k == 0 {
                    serve_miss(inner, req, ws, t0)
                } else {
                    serve(inner, req, ws)
                };
                out[slot] = Some(resp);
            }
        }

        for (flight, req, slots) in followers {
            let shared = flight.wait().unwrap_or_else(|| {
                panic!("in-flight leader for {req:?} panicked before publishing")
            });
            for (k, &slot) in slots.iter().enumerate() {
                if k > 0 {
                    // Pass 1 counted one miss for this key; its
                    // duplicates waited on the same flight and are
                    // accounted like the extra followers they are.
                    inner.cache.record_extra_miss();
                }
                let resp = Arc::new(QueryResponse {
                    cached: false,
                    coalesced: true,
                    service_us: us(&t0),
                    ..(*shared).clone()
                });
                inner.coalesced.fetch_add(1, Ordering::Relaxed);
                inner.finish(&resp);
                out[slot] = Some(resp);
            }
        }
    }

    out.into_iter()
        .map(|r| r.expect("every batch slot answered"))
        .collect()
}

enum Job {
    /// One request, one response.
    Single(QueryRequest, Sender<Arc<QueryResponse>>),
    /// N requests served by one worker with amortized snapshot, cache
    /// and workspace handling; answered as one vector in request order.
    Batch(Vec<QueryRequest>, Sender<Vec<Arc<QueryResponse>>>),
    /// Wake-up hint that a split batch has unclaimed sub-batches; the
    /// receiving worker drains [`BatchShared::queue`] (possibly finding
    /// nothing — the owner and other workers race for chunks).
    Sub(Arc<BatchShared>),
}

/// A pending response; produced by [`QueryEngine::submit`].
pub struct ResponseHandle {
    rx: Receiver<Arc<QueryResponse>>,
}

impl ResponseHandle {
    /// Blocks until the engine answers.
    ///
    /// # Panics
    /// Panics if the query panicked inside the engine or the engine
    /// shut down before answering.
    pub fn wait(self) -> Arc<QueryResponse> {
        self.rx
            .recv()
            .expect("query panicked in the engine or engine shut down before responding")
    }
}

/// A pending batch of responses; produced by
/// [`QueryEngine::submit_batch`]. Responses arrive together, in the
/// order the requests were submitted.
pub struct BatchHandle {
    rx: Receiver<Vec<Arc<QueryResponse>>>,
}

impl BatchHandle {
    /// Blocks until the engine answers the whole batch.
    ///
    /// # Panics
    /// Panics if a query panicked inside the engine or the engine shut
    /// down before answering.
    pub fn wait(self) -> Vec<Arc<QueryResponse>> {
        self.rx
            .recv()
            .expect("batch panicked in the engine or engine shut down before responding")
    }
}

/// The concurrent query-serving engine. See the [module docs](self).
pub struct QueryEngine {
    inner: Arc<Inner>,
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Spawns the worker pool and returns the serving handle.
    pub fn start(search: Arc<CommunitySearch>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            search: RwLock::new((search, 0)),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            inflight: Mutex::new(HashMap::new()),
            hist: LatencyHistogram::default(),
            completed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            sub_batches: AtomicU64::new(0),
            idle_workers: AtomicUsize::new(0),
            sub_tx: Mutex::new(None),
            min_sub_batch: config.min_sub_batch.max(1),
            split_batches: config.split_batches,
            scratch: (0..workers).map(|_| ScratchSlot::default()).collect(),
            started: Instant::now(),
            workers,
        });
        let (tx, rx) = channel::<Job>();
        *inner.sub_tx.lock().unwrap() = Some(tx.clone());
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("scs-worker-{i}"))
                    .spawn(move || {
                        // The worker's scratch arena: reused across every
                        // query it serves and across index epoch swaps
                        // (it simply grows on the first query against a
                        // larger installed graph). After warm-up the
                        // steady-state compute path stops allocating.
                        let mut ws = QueryWorkspace::new();
                        loop {
                            // Advertise idleness while blocked on the
                            // queue — the split heuristic reads this.
                            // Hold the queue lock only across the
                            // dequeue so workers pull jobs concurrently
                            // with compute.
                            inner.idle_workers.fetch_add(1, Ordering::Relaxed);
                            let job = rx.lock().unwrap().recv();
                            inner.idle_workers.fetch_sub(1, Ordering::Relaxed);
                            let Ok(job) = job else {
                                break; // all senders gone: shutdown
                            };
                            // Backstop: a panic in query code must not
                            // shrink the pool. The flight guards have
                            // already poisoned their keys' followers;
                            // dropping `reply` unanswered makes the
                            // submitter's wait() fail loudly. A submitter
                            // that dropped its handle just doesn't
                            // collect the result.
                            //
                            // Scratch accounting is published *before*
                            // the reply: a submitter that reads stats()
                            // the moment its blocking query returns must
                            // see this worker's workspace.
                            let publish_scratch = |ws: &QueryWorkspace| {
                                let slot = &inner.scratch[i];
                                slot.bytes.store(ws.heap_bytes(), Ordering::Relaxed);
                                slot.allocs_avoided
                                    .store(ws.allocations_avoided(), Ordering::Relaxed);
                            };
                            match job {
                                Job::Single(req, reply) => {
                                    let resp =
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                            || serve(&inner, req, &mut ws),
                                        ));
                                    publish_scratch(&ws);
                                    if let Ok(resp) = resp {
                                        let _ = reply.send(resp);
                                    }
                                }
                                Job::Batch(reqs, reply) => {
                                    let resp =
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                            || serve_batch(&inner, &reqs, &mut ws),
                                        ));
                                    publish_scratch(&ws);
                                    if let Ok(resp) = resp {
                                        let _ = reply.send(resp);
                                    }
                                }
                                Job::Sub(shared) => {
                                    // A panicking chunk already poisoned
                                    // its flights and bumped the owner's
                                    // done-count; the pool survives it.
                                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                        || run_split_chunks(&inner, &shared, &mut ws),
                                    ));
                                    publish_scratch(&ws);
                                }
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        QueryEngine {
            inner,
            tx: Some(tx),
            handles,
        }
    }

    /// Enqueues a request; the returned handle yields the response.
    pub fn submit(&self, req: QueryRequest) -> ResponseHandle {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .as_ref()
            .expect("engine already shut down")
            .send(Job::Single(req, reply_tx))
            .expect("worker pool hung up");
        ResponseHandle { rx: reply_rx }
    }

    /// Enqueues a whole batch as **one** job: one queue round-trip, one
    /// index-snapshot read, one cache lookup per unique key, and
    /// batched kernel calls for the leaders (see
    /// [`scs::CommunitySearch::significant_communities_in`]). The
    /// handle yields every response in submission order; results are
    /// identical to submitting each request on its own.
    ///
    /// Batching amortizes the per-request fixed costs; when the pool
    /// has idle workers the engine additionally **splits** a large
    /// batch's leader computations into per-worker sub-batches (see the
    /// [module docs](self) and [`ServiceConfig::min_sub_batch`]), so a
    /// single big submitter saturates the pool instead of one thread.
    /// With splitting disabled the whole batch is served by one worker,
    /// which still pays off when requests are individually cheap or the
    /// submitter is one of many concurrent clients keeping the pool
    /// busy.
    pub fn submit_batch(&self, reqs: &[QueryRequest]) -> BatchHandle {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .as_ref()
            .expect("engine already shut down")
            .send(Job::Batch(reqs.to_vec(), reply_tx))
            .expect("worker pool hung up");
        BatchHandle { rx: reply_rx }
    }

    /// Submits and waits: one blocking round-trip through the pool.
    pub fn query(&self, req: QueryRequest) -> Arc<QueryResponse> {
        self.submit(req).wait()
    }

    /// [`Self::submit_batch`] and wait: one blocking round-trip for the
    /// whole batch.
    pub fn query_batch(&self, reqs: &[QueryRequest]) -> Vec<Arc<QueryResponse>> {
        self.submit_batch(reqs).wait()
    }

    /// Installs a new index snapshot without stopping the workers: bumps
    /// the epoch and invalidates the result cache. Queries already
    /// computing finish on the snapshot they started with (tagged with
    /// the prior epoch).
    pub fn install(&self, search: Arc<CommunitySearch>) -> u64 {
        let mut guard = self.inner.search.write().unwrap();
        guard.0 = search;
        guard.1 += 1;
        let epoch = guard.1;
        // Clear under the write lock: leaders re-check the epoch before
        // caching, so no stale entry can be inserted after this clear.
        self.inner.cache.clear();
        epoch
    }

    /// The current `(index snapshot, epoch)` pair.
    pub fn current_index(&self) -> (Arc<CommunitySearch>, u64) {
        self.inner.snapshot()
    }

    /// Number of leader computations currently registered in the
    /// in-flight table — a diagnostic for tests and monitoring: at
    /// quiescence (no request outstanding anywhere) this must be 0, or
    /// a flight leaked.
    pub fn inflight_len(&self) -> usize {
        self.inner.inflight.lock().unwrap().len()
    }

    /// Metrics snapshot since engine start.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let completed = inner.completed.load(Ordering::Relaxed);
        let elapsed = inner.started.elapsed().as_secs_f64().max(1e-9);
        ServiceStats {
            workers: inner.workers,
            completed,
            coalesced: inner.coalesced.load(Ordering::Relaxed),
            batches: inner.batches.load(Ordering::Relaxed),
            batched: inner.batched.load(Ordering::Relaxed),
            splits: inner.splits.load(Ordering::Relaxed),
            sub_batches: inner.sub_batches.load(Ordering::Relaxed),
            cache: inner.cache.stats(),
            epoch: inner.snapshot().1,
            qps: completed as f64 / elapsed,
            mean_us: inner.hist.mean_us(),
            p50_us: inner.hist.quantile_us(0.50),
            p90_us: inner.hist.quantile_us(0.90),
            p99_us: inner.hist.quantile_us(0.99),
            max_us: inner.hist.max_us(),
            scratch_bytes: inner
                .scratch
                .iter()
                .map(|s| s.bytes.load(Ordering::Relaxed))
                .sum(),
            allocs_avoided: inner
                .scratch
                .iter()
                .map(|s| s.allocs_avoided.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Stops accepting work, drains the queue and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.tx.take());
        // Drop the workers' hint sender too, or the channel never
        // disconnects. A batch mid-split just runs its own chunks.
        self.inner.sub_tx.lock().unwrap().take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::figure2_example;
    use scs::Algorithm;

    fn engine(workers: usize) -> QueryEngine {
        QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers,
                cache_capacity: 64,
                cache_shards: 4,
                ..ServiceConfig::default()
            },
        )
    }

    /// Workers advertise idleness once they reach the queue; give a
    /// freshly spawned pool a beat to park so split-engagement
    /// assertions don't race thread startup.
    fn settle() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    #[test]
    fn serves_and_caches() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Peel);
        let first = e.query(req);
        assert!(!first.cached);
        assert_eq!(first.summary.size(), 4);
        assert_eq!(first.summary.min_weight, Some(13.0));
        let second = e.query(req);
        assert!(second.cached);
        assert_eq!(second.summary, first.summary);
        let st = e.stats();
        assert_eq!(st.completed, 2);
        assert_eq!(st.cache.hits, 1);
        assert!(st.scratch_bytes > 0, "worker workspace must be resident");
        e.shutdown();
    }

    #[test]
    fn distinct_algorithms_get_distinct_cache_slots() {
        let e = engine(1);
        let q = e.current_index().0.graph().upper(2);
        let a = e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        let b = e.query(QueryRequest::new(q, 2, 2, Algorithm::Expand));
        assert!(!a.cached && !b.cached);
        assert_eq!(a.summary, b.summary); // algorithms agree on the answer
        e.shutdown();
    }

    #[test]
    fn install_bumps_epoch_and_invalidates() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Auto);
        let before = e.query(req);
        assert_eq!(before.epoch, 0);
        let epoch = e.install(CommunitySearch::shared(figure2_example()));
        assert_eq!(epoch, 1);
        let after = e.query(req);
        assert!(!after.cached, "install must invalidate the cache");
        assert_eq!(after.epoch, 1);
        assert_eq!(after.summary, before.summary);
        e.shutdown();
    }

    #[test]
    fn unservable_requests_get_empty_answers_and_pool_survives() {
        let e = engine(2);
        let g_vertices = e.current_index().0.graph().n_vertices();
        // Query vertex outside the graph: empty community, no panic.
        let bad = e.query(QueryRequest::new(
            bigraph::Vertex(g_vertices as u32 + 10),
            2,
            2,
            Algorithm::Auto,
        ));
        assert_eq!(*bad.summary, crate::CommunitySummary::empty());
        // Zero degree constraint (the index asserts ≥ 1): also empty.
        let q = e.current_index().0.graph().upper(2);
        let zero = e.query(QueryRequest::new(q, 0, 2, Algorithm::Peel));
        assert_eq!(*zero.summary, crate::CommunitySummary::empty());
        // The pool is still alive and serving real queries.
        let good = e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        assert_eq!(good.summary.size(), 4);
        e.shutdown();
    }

    #[test]
    fn batch_answers_in_submission_order_and_dedups() {
        let e = engine(2);
        let g = e.current_index().0.graph().clone();
        let q = g.upper(2);
        let other = g.upper(0);
        let reqs = vec![
            QueryRequest::new(q, 2, 2, Algorithm::Peel),
            QueryRequest::new(other, 1, 1, Algorithm::Peel),
            QueryRequest::new(q, 2, 2, Algorithm::Peel), // in-batch duplicate
            QueryRequest::new(q, 2, 2, Algorithm::Expand), // distinct key
        ];
        let resps = e.query_batch(&reqs);
        assert_eq!(resps.len(), 4);
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.request, *req, "answers must keep submission order");
        }
        assert_eq!(resps[0].summary.size(), 4);
        assert_eq!(resps[0].summary, resps[2].summary);
        assert!(!resps[0].cached && !resps[0].coalesced);
        assert!(
            resps[2].cached && !resps[2].coalesced,
            "duplicate key inside a batch is answered like a serial \
             resubmission: a cache hit on the leader's fresh result"
        );
        let st = e.stats();
        assert_eq!(st.completed, 4);
        assert_eq!(st.batches, 1);
        assert_eq!(st.batched, 4);
        assert_eq!(st.coalesced, 0);
        // 3 unique keys miss; the duplicate slot counts as the hit a
        // per-request resubmission would have been.
        assert_eq!(st.cache.misses, 3);
        assert_eq!(st.cache.hits, 1);
        assert_eq!(
            st.cache.hits + st.cache.misses,
            st.completed,
            "every request accounts for exactly one lookup"
        );

        // A second identical batch is all cache hits — one physical
        // lookup per unique key, one *counted* per request.
        let again = e.query_batch(&reqs);
        for (a, b) in resps.iter().zip(&again) {
            assert!(b.cached);
            assert_eq!(a.summary, b.summary);
        }
        let st = e.stats();
        assert_eq!(st.cache.hits, 5);
        assert_eq!(st.completed, 8);
        assert_eq!(st.cache.hits + st.cache.misses, st.completed);
        e.shutdown();
    }

    #[test]
    fn batch_matches_per_request_submission() {
        let e = engine(2);
        let g = e.current_index().0.graph().clone();
        let reqs: Vec<QueryRequest> = (0..g.n_upper())
            .flat_map(|i| {
                [
                    QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel),
                    QueryRequest::new(g.upper(i), 1, 2, Algorithm::Expand),
                ]
            })
            .collect();
        let batched = e.query_batch(&reqs);
        let e2 = engine(2);
        for (req, b) in reqs.iter().zip(&batched) {
            assert_eq!(e2.query(*req).summary, b.summary, "{req:?}");
        }
        e.shutdown();
        e2.shutdown();
    }

    #[test]
    fn batch_counters_match_per_request_submission() {
        // The same request stream with duplicates and repeats, served
        // one-by-one and as one batch on fresh engines, must produce
        // identical ServiceStats — the submission-mode invariance the
        // batch path promises.
        // Few enough unique keys that the 64-entry cache retains them
        // all — the stated precondition of counter invariance (under
        // mid-batch eviction the batch path still answers correctly
        // but may count a duplicate as the hit the entry was when the
        // leader cached it, where per-request resubmission would have
        // missed the evicted key and recomputed).
        let per_request = engine(2);
        let g = per_request.current_index().0.graph().clone();
        let mut reqs: Vec<QueryRequest> = (0..g.n_upper().min(12))
            .map(|i| QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel))
            .collect();
        reqs.push(reqs[0]); // duplicate of a computed key
        reqs.push(reqs[1]);
        for r in &reqs {
            per_request.query(*r);
        }
        let a = per_request.stats();
        per_request.shutdown();

        let batched = engine(2);
        batched.query_batch(&reqs);
        let b = batched.stats();
        batched.shutdown();

        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cache.hits, b.cache.hits, "hit counters drifted");
        assert_eq!(a.cache.misses, b.cache.misses, "miss counters drifted");
        assert_eq!(a.coalesced, b.coalesced, "coalesced counters drifted");
        assert_eq!(b.cache.hits + b.cache.misses, b.completed);
    }

    #[test]
    fn split_batch_matches_unsplit_bit_identically() {
        let split = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 4,
                cache_capacity: 64,
                cache_shards: 4,
                min_sub_batch: 1,
                split_batches: true,
            },
        );
        let unsplit = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 4,
                cache_capacity: 64,
                cache_shards: 4,
                min_sub_batch: 1,
                split_batches: false,
            },
        );
        settle();
        let g = split.current_index().0.graph().clone();
        let mut reqs: Vec<QueryRequest> = Vec::new();
        for i in 0..g.n_upper() {
            reqs.push(QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel));
            reqs.push(QueryRequest::new(g.upper(i), 1, 1, Algorithm::Expand));
        }
        reqs.push(reqs[0]); // in-batch duplicate rides along
        let a = split.query_batch(&reqs);
        let b = unsplit.query_batch(&reqs);
        assert_eq!(a.len(), reqs.len());
        for ((req, x), y) in reqs.iter().zip(&a).zip(&b) {
            assert_eq!(x.request, *req, "split batch broke submission order");
            assert_eq!(y.request, *req);
            assert_eq!(x.summary, y.summary, "{req:?} diverged under splitting");
            assert_eq!(
                (x.cached, x.coalesced, x.epoch),
                (y.cached, y.coalesced, y.epoch),
                "{req:?} flags diverged under splitting"
            );
        }
        let st = split.stats();
        let su = unsplit.stats();
        assert_eq!(st.splits, 1, "split path must have engaged");
        assert!(st.sub_batches >= 2, "sub_batches={}", st.sub_batches);
        assert_eq!(su.splits, 0, "split disabled by config");
        assert_eq!(su.sub_batches, 0);
        assert_eq!((st.completed, st.coalesced), (su.completed, su.coalesced));
        assert_eq!(
            (st.cache.hits, st.cache.misses),
            (su.cache.hits, su.cache.misses),
            "counters drifted between split and unsplit"
        );
        assert_eq!(split.inflight_len(), 0, "split batch leaked a flight");
        split.shutdown();
        unsplit.shutdown();
    }

    #[test]
    fn many_algorithm_batch_carves_per_algorithm_chunks() {
        // Five algorithms force five single-algorithm chunks even when
        // the fan-out width is smaller; the surplus chunks must queue
        // behind the capped hints (not wake extra workers) and every
        // slot must still be answered in order.
        let e = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 2,
                cache_capacity: 64,
                cache_shards: 4,
                min_sub_batch: 8,
                split_batches: true,
            },
        );
        settle();
        let g = e.current_index().0.graph().clone();
        let g = &g;
        let reqs: Vec<QueryRequest> = Algorithm::ALL
            .into_iter()
            .flat_map(|algo| (0..4).map(move |i| QueryRequest::new(g.upper(i), 2, 2, algo)))
            .collect();
        let resps = e.query_batch(&reqs);
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.request, *req, "submission order broken");
        }
        // All algorithms agree on the answer, so every response of one
        // vertex matches regardless of which chunk computed it.
        for chunk in resps.chunks(4) {
            assert_eq!(chunk[0].summary, resps[0].summary);
        }
        let st = e.stats();
        assert_eq!(st.splits, 1);
        assert_eq!(
            st.sub_batches,
            Algorithm::ALL.len() as u64,
            "one chunk per algorithm run"
        );
        assert_eq!(e.inflight_len(), 0);
        e.shutdown();
    }

    #[test]
    fn batch_handles_empty_and_unservable_requests() {
        let e = engine(2);
        assert!(e.query_batch(&[]).is_empty());
        let g_vertices = e.current_index().0.graph().n_vertices();
        let q = e.current_index().0.graph().upper(2);
        let reqs = vec![
            QueryRequest::new(
                bigraph::Vertex(g_vertices as u32 + 3),
                2,
                2,
                Algorithm::Auto,
            ),
            QueryRequest::new(q, 0, 2, Algorithm::Peel),
            QueryRequest::new(q, 2, 2, Algorithm::Peel),
        ];
        let resps = e.query_batch(&reqs);
        assert_eq!(*resps[0].summary, crate::CommunitySummary::empty());
        assert_eq!(*resps[1].summary, crate::CommunitySummary::empty());
        assert_eq!(resps[2].summary.size(), 4);
        e.shutdown();
    }

    #[test]
    fn batch_sees_installs_like_single_requests() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Auto);
        let before = e.query_batch(&[req]);
        assert_eq!(before[0].epoch, 0);
        e.install(CommunitySearch::shared(figure2_example()));
        let after = e.query_batch(&[req]);
        assert!(!after[0].cached, "install must invalidate the cache");
        assert_eq!(after[0].epoch, 1);
        assert_eq!(after[0].summary, before[0].summary);
        e.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let e = engine(3);
        let q = e.current_index().0.graph().upper(0);
        e.query(QueryRequest::new(q, 1, 1, Algorithm::Auto));
        drop(e); // must not hang or leak panicking threads
    }
}
