//! The concurrent query engine: a fixed worker pool over an immutable,
//! epoch-swappable [`CommunitySearch`].
//!
//! Life of a request:
//!
//! 1. [`QueryEngine::submit`] pushes a job onto the queue and returns a
//!    [`ResponseHandle`]; [`QueryEngine::query`] is the blocking
//!    convenience.
//! 2. A worker dequeues, checks the sharded LRU cache, and on a hit
//!    responds immediately (`cached = true`).
//! 3. On a miss it joins the in-flight table. The first thread for a key
//!    becomes the *leader* and computes the significant community on the
//!    current index snapshot; threads that arrive while the leader runs
//!    become *followers* and block on the flight's condvar instead of
//!    duplicating work (`coalesced = true`).
//! 4. The leader publishes the response, installs it in the cache and
//!    wakes the followers.
//!
//! # The warm leader path allocates nothing
//!
//! Together with the per-worker [`QueryWorkspace`] (PR 2) and
//! [`ResultArena`], every piece of per-request state is recycled, so a
//! warm engine serves leader queries with **zero** heap allocations end
//! to end (proven by `tests/alloc_free_service.rs`):
//!
//! * the job queue is a mutex-protected ring (`VecDeque`) instead of a
//!   node-allocating channel;
//! * reply slots ([`ReplyCell`]) and flights are pooled `Arc`s, reused
//!   whenever their refcount proves nothing else holds them;
//! * results are written into the worker's [`ResultArena`] — the
//!   [`crate::CommunitySummary`] wraps a slab view, not a fresh `Vec` —
//!   and [`crate::QueryResponse`] travels **by value** (cloning is a
//!   refcount bump), so there is no `Arc::new` per response;
//! * cache entries hold responses by value; **eviction (or an
//!   epoch-swap clear) drops the entry's slab handle, and once every
//!   handle of a slab's generation is gone the owning worker recycles
//!   the slab in place** — live handles, including results published to
//!   other threads by a split batch, pin their slab via refcount and a
//!   generation tag proves they can never observe recycled storage;
//! * batch bookkeeping (slot grouping, leader/follower partitions,
//!   sub-batch descriptors) lives in per-worker scratch and a pooled
//!   [`BatchShared`], all capacity-retaining.
//!
//! Batches ([`QueryEngine::submit_batch`]) ride the same machinery with
//! the per-request overheads paid once: one job carries the whole batch
//! through the queue, the serving worker reads **one** index snapshot,
//! looks every *unique* key up in the cache once, partitions the misses
//! into leaders / followers / stale up front, and answers the leaders
//! through batched kernel calls
//! ([`scs::CommunitySearch::significant_communities_arena`]). Responses
//! come back in submission order; duplicate keys inside a batch are
//! computed once and the extra slots answered exactly as a serial
//! resubmission would be, so [`ServiceStats`] cannot drift between
//! submission modes.
//!
//! When the pool has idle capacity, a batch is additionally **split**:
//! after the hit/coalesce/leader partition, the leader computations are
//! carved into per-worker sub-batches and the number of workers woken
//! to help is bounded by `min(idle workers, ceil(leaders /
//! min_sub_batch) - 1)` — chunk boundaries respect per-algorithm runs
//! (each chunk is one batched kernel call), so a many-algorithm batch
//! may carve more chunks than that, but never runs them any wider.
//! Chunks are parked in a claimable queue shared with the pool and
//! advertised with [`Job::Sub`] wake-up hints. Any worker —
//! the batch owner included — claims and runs sub-batches; each one is
//! pure compute-and-publish (one batched kernel call, each leader's
//! flight and cache entry published the moment its summary exists —
//! into the *executing* worker's arena, whose slab the published
//! handles pin), so a sub-batch can never wait on another flight and
//! the owner's join can never deadlock. The owner drains whatever the
//! pool does not claim, waits for the stragglers, and only then — with
//! every one of its leaders published — blocks on stale retries and
//! followers, preserving the no-deadlock ordering argument of the
//! unsplit path. Results are bit-identical to the unsplit (and
//! per-request) path; the split only changes which thread runs which
//! leader.
//!
//! # Sharding
//!
//! The engine is built from `ServiceConfig::shards` **independent
//! shards**: each owns its worker pool, job queue, result-cache slice,
//! in-flight table, workspaces + result arenas, telemetry plane and
//! `Arc<CommunitySearch>` index replica. Requests route to a shard by
//! a stable hash of the query vertex ([`route_of`] — a splitmix64
//! mixer, deliberately decorrelated from the cache's internal SipHash
//! sharding), so a given key always lands on the same shard and every
//! single-shard invariant above (coalescing, caching, counter
//! invariance, the allocation-free warm path) holds per shard and
//! therefore engine-wide. Cross-shard batches are partitioned into
//! per-shard sub-batches and reassembled in submission order by the
//! [`BatchHandle`]; installs fan out to every shard (serialized, so
//! all shards agree on the epoch sequence); stats aggregate. On Linux,
//! each shard's workers are pinned to a distinct CPU set
//! (best-effort); elsewhere pinning is a no-op and sharding still
//! isolates the queues, caches and arenas. The split queue is
//! shard-local — sub-batch claiming never crosses a shard boundary
//! (cross-shard stealing is a ROADMAP follow-up).
//!
//! [`QueryEngine::install`] atomically replaces the index (one
//! write-lock per shard), bumps the epoch and clears the cache, so a
//! rebuilt index — e.g. [`scs::DynamicIndex::snapshot`] after edge
//! updates — goes live without stopping the workers. In-flight leaders that started on the
//! old snapshot finish on it (their Arc keeps it alive) and their
//! responses carry the old epoch; the cache only ever holds entries
//! inserted under the epoch read together with the snapshot, and is
//! cleared on install, so a hit never serves a community computed
//! against an index older than the last install. The in-flight table is
//! fenced the same way: a request only coalesces onto a flight whose
//! epoch matches the one it observed as current, so a post-install
//! request never receives a pre-install result.

// The crate denies `unsafe_code`; this module is the one exception,
// for the `sched_setaffinity` FFI shim in `pin_worker`. Every site
// is budgeted in `unsafe-allowlist.txt` and checked by `scs analyze`.
#![allow(unsafe_code)]

use crate::cache::{CacheStats, ShardedCache};
use crate::stats::{AdmissionStats, HistSnapshot, LatencyHistogram, ServiceStats, ShardStats};
use crate::telemetry::{
    Provenance, SlowQuery, Stage, StageRecorder, StageSet, Telemetry, TelemetrySnapshot,
};
use crate::{CommunitySummary, QueryRequest, QueryResponse};
use bigraph::arena::ResultArena;
use bigraph::Vertex;
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1), distributed across the shards. When
    /// `shards` does not divide this evenly the first shards get the
    /// remainder; every shard gets at least one worker, so `shards >
    /// workers` raises the effective total (reported by
    /// [`crate::stats::ServiceStats::workers`]).
    pub workers: usize,
    /// Independent engine shards (≥ 1). Each shard owns its worker
    /// pool, job queue, result-cache slice, in-flight table, telemetry
    /// plane and index replica; requests are routed by a stable hash of
    /// the query vertex, so one key always lands on one shard and the
    /// single-shard coalescing/caching guarantees carry over verbatim.
    /// On Linux each shard's workers are additionally pinned to a
    /// distinct CPU set (best-effort; elsewhere pinning is a no-op).
    pub shards: usize,
    /// Total result-cache entries across all shards.
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Batch-splitting granularity **floor**: a split batch wakes at
    /// most one helper per effective-`min_sub_batch` leader
    /// computations (and never more than the pool's idle capacity), so
    /// tiny batches are served inline instead of being scattered.
    /// Once enough kernel-stage samples exist the engine raises the
    /// effective value from the observed per-leader kernel cost —
    /// cheap kernels get coarser chunks so scheduling overhead cannot
    /// dominate — but never below this floor (visible per shard via
    /// [`crate::stats::ShardStats::min_sub_batch_effective`]). Chunks
    /// themselves follow per-algorithm runs and can be smaller or more
    /// numerous than this fan-out; they queue behind it. Clamped to
    /// ≥ 1.
    pub min_sub_batch: usize,
    /// Adaptive batch splitting on/off. Off, every batch is served in
    /// full by the worker that dequeued it (the pre-split behaviour and
    /// the `scs serve-bench --no-split` escape hatch); results are
    /// identical either way.
    pub split_batches: bool,
    /// Edge capacity of each result-arena slab (per worker). Smaller
    /// slabs turn over — and recycle — faster at the cost of more
    /// pinned-slab fragmentation; the default
    /// ([`bigraph::arena::DEFAULT_SLAB_EDGES`]) suits production, tests
    /// shrink it to exercise recycling. Clamped to ≥ 1.
    pub arena_slab_edges: usize,
    /// Capacity of the slow-query ring: how many worst-latency requests
    /// the telemetry plane retains with their full stage breakdown
    /// (see [`crate::telemetry`]). 0 disables retention (recording
    /// skips the ring entirely); the histograms stay on regardless.
    pub slow_ring_capacity: usize,
    /// Network front end ([`crate::Server`]) only — the engine itself
    /// never sheds. Maximum requests admitted but not yet answered;
    /// past it new requests get `429 + Retry-After` instead of
    /// queueing unboundedly. Clamped to ≥ 1.
    pub pending_budget: usize,
    /// Server only: how long an accumulation bucket may wait for
    /// compatible requests before the deadline batcher flushes it into
    /// [`QueryEngine::submit_batch`], milliseconds. 0 flushes every
    /// request immediately (batching off).
    pub batch_deadline_ms: u64,
    /// Server only: an accumulation bucket reaching this many requests
    /// flushes immediately, deadline or not. Clamped to ≥ 1.
    pub batch_max: usize,
    /// Server only: per-tenant token-bucket refill rate,
    /// requests/second. 0 disables tenant quotas.
    pub tenant_rate: u64,
    /// Server only: per-tenant token-bucket burst capacity. Clamped to
    /// ≥ 1 when quotas are on.
    pub tenant_burst: u64,
    /// Server only: socket read/write timeout, milliseconds — a slow
    /// or dead client is disconnected instead of pinning a connection
    /// thread. 0 means no timeout.
    pub socket_timeout_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            shards: 1,
            cache_capacity: 4096,
            cache_shards: 16,
            min_sub_batch: 8,
            split_batches: true,
            arena_slab_edges: bigraph::arena::DEFAULT_SLAB_EDGES,
            slow_ring_capacity: 16,
            pending_budget: 1024,
            batch_deadline_ms: 2,
            batch_max: 64,
            tenant_rate: 0,
            tenant_burst: 64,
            socket_timeout_ms: 10_000,
        }
    }
}

/// What a flight's followers eventually observe.
enum FlightState {
    /// Leader still computing.
    Pending,
    /// Leader published.
    Done(QueryResponse),
    /// Leader unwound without publishing (panic in the query code).
    Poisoned,
}

/// One in-flight computation; followers sleep on `cv` until the leader
/// fills `slot`. `epoch` is the index epoch the leader computes on —
/// followers only join flights of the epoch they themselves observed as
/// current, so a post-install request can never coalesce onto a
/// pre-install computation. Flights are pooled: after the guard removes
/// one from the table it returns to [`Inner::flight_pool`], and it is
/// reset and reused once its last follower drops its reference.
struct Flight {
    epoch: AtomicU64,
    slot: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> Option<QueryResponse> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            match &*slot {
                FlightState::Pending => slot = self.cv.wait(slot).unwrap(),
                FlightState::Done(resp) => return Some(resp.clone()),
                FlightState::Poisoned => return None,
            }
        }
    }

    fn publish(&self, state: FlightState) {
        *self.slot.lock().unwrap() = state;
        self.cv.notify_all();
    }
}

enum Role {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
    /// The caller's epoch snapshot is older than the resident flight's:
    /// an install raced in; re-read the snapshot and rejoin.
    StaleSnapshot,
}

/// Cleans a leader's flight out of the in-flight table even if the
/// query code panics: on unwind the flight is poisoned (waking every
/// follower, who re-panic with context instead of blocking forever)
/// and removed so the key is not permanently wedged. The flight then
/// returns to the pool for reuse.
///
/// Owns an `Arc` to the engine state (not a borrow) so a guard can ride
/// a split batch's sub-batch to another worker thread.
struct FlightGuard {
    inner: Arc<Inner>,
    key: QueryRequest,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard {
    fn publish(&mut self, resp: QueryResponse) {
        self.flight.publish(FlightState::Done(resp));
        self.published = true;
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.published {
            self.flight.publish(FlightState::Poisoned);
        }
        // Remove only our own flight — a newer-epoch leader may have
        // replaced the entry under this key.
        {
            let mut map = self.inner.inflight.lock().unwrap();
            if map
                .get(&self.key)
                .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
            {
                map.remove(&self.key);
            }
        }
        // Pool the flight. If no follower holds it (the common case —
        // it is out of the table, so none can appear), drop the
        // published response now rather than at reuse: a stale `Done`
        // would pin its summary's arena slab for as long as the flight
        // sat in the pool. Followers may still hold references
        // otherwise; the pool only hands the flight back out once the
        // refcount proves they are gone.
        if Arc::strong_count(&self.flight) == 1 {
            *self.flight.slot.lock().unwrap() = FlightState::Pending;
        }
        self.inner.flight_pool.put(self.flight.clone());
    }
}

/// One leader computation of a batch: the flight to publish plus the
/// submission slots its key answers, as a `(start, end)` range into a
/// slot store (the owner's grouped slot table inline, the shared copy
/// when split). Slot `store[start]` is the leader's own.
struct Unit {
    guard: FlightGuard,
    slots: (u32, u32),
    /// This key's pass-1 cache-lookup time, µs — carried so the unit's
    /// eventual publisher can attribute the cache-lookup stage no
    /// matter which worker runs the unit.
    cache_us: u64,
}

/// One fanned-out share of a split batch: a same-algorithm run of
/// leader units (a range into [`BatchShared::units`]) that one worker
/// answers through one batched kernel call. Whoever pops a range owns
/// its units, so their flight guards poison-and-clean on a panic
/// exactly like an inline leader's.
struct SubRange {
    algo: Algorithm,
    units: std::ops::Range<usize>,
}

/// Join state shared between a splitting batch owner and the workers
/// that claim its sub-batches. Pooled and recycled across batches: all
/// contained buffers retain capacity, so a warm split batch allocates
/// nothing.
struct BatchShared {
    /// The owner's index snapshot: every sub-batch computes on it, so a
    /// split batch is as epoch-consistent as an unsplit one.
    search: Arc<CommunitySearch>,
    epoch: u64,
    /// The batch's dequeue time — response `service_us` is measured
    /// from it on every worker, as in the unsplit path.
    t0: Instant,
    /// The batch's queue wait (enqueue → dequeue), µs — the base of
    /// every split unit's stage attribution.
    queue_us: u64,
    /// The owner's snapshot-acquire + flight-join window, µs.
    snapshot_us: u64,
    /// Chunks carved; the owner waits until `done` reaches it.
    total: usize,
    /// Submission slots of every split unit, grouped per unit (the
    /// owner copies each unit's group here so executors need no access
    /// to the owner's scratch). Read-only once hints are posted.
    slot_store: Vec<u32>,
    /// The split units; executors `take()` the ones in their claimed
    /// range.
    units: Mutex<Vec<Option<Unit>>>,
    /// Unclaimed sub-batches. Any worker (the owner included) pops and
    /// executes; a [`Job::Sub`] hint that finds this empty is a no-op.
    queue: Mutex<Vec<SubRange>>,
    done: Mutex<usize>,
    cv: Condvar,
    /// `(submission slot, response)` pairs from executed chunks.
    results: Mutex<Vec<(u32, QueryResponse)>>,
}

/// The slice of batch context every leader-publishing site needs.
#[derive(Clone, Copy)]
struct BatchCtx<'a> {
    search: &'a CommunitySearch,
    epoch: u64,
    t0: Instant,
    /// Batch-level stage bases shared by every unit: the queue wait and
    /// the owner's snapshot-acquire window, µs.
    queue_us: u64,
    snapshot_us: u64,
    /// How this unit reached the kernel: inline batch or split chunk.
    prov: Provenance,
}

/// A pooled one-shot reply slot: the worker `put`s exactly once (or
/// `abandon`s on panic), the submitter `take`s exactly once. The
/// **worker** returns the cell to the pool right after answering — the
/// submitter's own `Arc` keeps it out of circulation until its `wait`
/// completes (the pool only reissues refcount-1 entries), so by the
/// time the submitter can submit again the cell is deterministically
/// free. A cell whose submitter never waited keeps its stale value
/// until reuse, which resets it.
struct ReplyCell<T> {
    state: Mutex<ReplyState<T>>,
    cv: Condvar,
}

enum ReplyState<T> {
    Pending,
    Done(T),
    Abandoned,
}

impl<T> ReplyCell<T> {
    fn new() -> Self {
        ReplyCell {
            state: Mutex::new(ReplyState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the worker answers (`None` if the worker panicked
    /// and abandoned the cell).
    fn take(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *state, ReplyState::Pending) {
                ReplyState::Pending => state = self.cv.wait(state).unwrap(),
                ReplyState::Done(v) => return Some(v),
                ReplyState::Abandoned => return None,
            }
        }
    }
}

/// Answers a reply cell (`Some` = response, `None` = the computation
/// panicked) and moves the worker's reference into the pool, **holding
/// the pool lock across both**. The ordering is what makes warm
/// submits deterministic: the submitter cannot finish its `take` until
/// the state lock is released, and cannot reach `take_free` until the
/// pool lock is released — by which point the cell is pooled and the
/// worker's reference gone, so after the submitter drops its handle the
/// cell is free. Without this, the worker's "pool it" step could lag
/// behind a fast submitter and force a fresh allocation.
fn respond_and_pool<T>(pool: &ArcPool<ReplyCell<T>>, cell: Arc<ReplyCell<T>>, value: Option<T>) {
    let mut items = pool.items.lock().unwrap();
    {
        let mut state = cell.state.lock().unwrap();
        *state = match value {
            Some(v) => ReplyState::Done(v),
            None => ReplyState::Abandoned,
        };
        cell.cv.notify_all();
    }
    items.push(cell);
}

/// A pool of reusable `Arc`'d objects. `take_free` only returns an
/// entry whose strong count is 1 — nothing else references it, so the
/// caller may reset and reuse it; busy entries (a follower still
/// holding a pooled flight, an unconsumed sub-batch hint) stay pooled
/// until they free up. Warm `put`s push within retained capacity.
struct ArcPool<T> {
    items: Mutex<Vec<Arc<T>>>,
}

impl<T> ArcPool<T> {
    fn new() -> Self {
        ArcPool {
            items: Mutex::new(Vec::new()),
        }
    }

    fn take_free(&self) -> Option<Arc<T>> {
        let mut items = self.items.lock().unwrap();
        let i = items.iter().position(|a| Arc::strong_count(a) == 1)?;
        Some(items.swap_remove(i))
    }

    fn put(&self, item: Arc<T>) {
        self.items.lock().unwrap().push(item); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
    }
}

/// A pool of reusable plain `Vec`s (cleared on return, capacity kept).
struct VecPool<T> {
    items: Mutex<Vec<Vec<T>>>,
}

impl<T> VecPool<T> {
    fn new() -> Self {
        VecPool {
            items: Mutex::new(Vec::new()),
        }
    }

    fn take(&self) -> Vec<T> {
        self.items.lock().unwrap().pop().unwrap_or_default()
    }

    fn put(&self, mut v: Vec<T>) {
        v.clear();
        self.items.lock().unwrap().push(v);
    }
}

/// The job queue: a mutex-protected ring with a condvar, in place of a
/// channel whose every send allocates a node. Workers parked here are
/// counted in `idle_workers` (the split heuristic's input).
struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues unless the queue is closed; returns whether it did.
    fn push(&self, job: Job) -> bool {
        let mut state = self.state.lock().unwrap();
        if !state.open {
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.cv.notify_one();
        true
    }

    /// Dequeues, advertising idleness while parked. `None` once the
    /// queue is closed **and** drained — pending jobs are always
    /// served.
    fn pop(&self, idle: &AtomicUsize) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if !state.open {
                return None;
            }
            // ordering: Relaxed — `idle` is an advisory gauge read by
            // `split_factor`; a stale count only skews the split
            // heuristic, never correctness. Pairs with nothing.
            idle.fetch_add(1, Ordering::Relaxed);
            state = self.cv.wait(state).unwrap();
            // ordering: Relaxed — same advisory gauge as above.
            idle.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.cv.notify_all();
    }
}

/// Per-worker scratch accounting, published after every served request
/// so [`QueryEngine::stats`] can aggregate without touching the
/// workspaces themselves (they are owned by the worker threads).
#[derive(Default)]
struct ScratchSlot {
    /// Resident bytes of the worker's [`QueryWorkspace`].
    bytes: AtomicUsize,
    /// Resident bytes of the worker's [`ResultArena`] slabs.
    arena_bytes: AtomicUsize,
    /// Cumulative scratch acquisitions served without allocating.
    allocs_avoided: AtomicU64,
    /// Cumulative slab recycles in the worker's arena.
    arena_recycled: AtomicU64,
}

/// The previous [`QueryEngine::stats_window`] baseline: plain-value
/// copies of every cumulative counter and histogram, subtracted from
/// the current values to yield the window's deltas.
struct WindowBase {
    at: Instant,
    service: HistSnapshot,
    telem: TelemetrySnapshot,
    completed: u64,
    coalesced: u64,
    batches: u64,
    batched: u64,
    splits: u64,
    sub_batches: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_invalidated: u64,
}

impl WindowBase {
    fn zero(at: Instant) -> Self {
        WindowBase {
            at,
            service: HistSnapshot::empty(),
            telem: TelemetrySnapshot::empty(),
            completed: 0,
            coalesced: 0,
            batches: 0,
            batched: 0,
            splits: 0,
            sub_batches: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_invalidated: 0,
        }
    }
}

/// One engine shard: everything its workers share. A shard is a
/// complete single-threaded-safe engine in itself — index replica,
/// cache slice, in-flight table, job queue, pools, telemetry — so the
/// sharded engine above it only routes, fans out and aggregates.
struct Inner {
    search: RwLock<(Arc<CommunitySearch>, u64)>,
    cache: ShardedCache<QueryRequest, QueryResponse>,
    inflight: Mutex<HashMap<QueryRequest, Arc<Flight>>>,
    queue: JobQueue,
    hist: LatencyHistogram,
    completed: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    splits: AtomicU64,
    sub_batches: AtomicU64,
    /// Workers currently parked on the job queue — the idle capacity
    /// the split heuristic consults. Reads are advisory: a stale count
    /// only mis-sizes a split, never mis-answers one.
    idle_workers: AtomicUsize,
    min_sub_batch: usize,
    split_batches: bool,
    scratch: Vec<ScratchSlot>,
    reply_pool: ArcPool<ReplyCell<QueryResponse>>,
    batch_reply_pool: ArcPool<ReplyCell<Vec<QueryResponse>>>,
    flight_pool: ArcPool<Flight>,
    shared_pool: ArcPool<BatchShared>,
    req_pool: VecPool<QueryRequest>,
    resp_pool: VecPool<QueryResponse>,
    /// Worker threads owned by this shard.
    workers: usize,
    /// The preallocated telemetry plane: per-algorithm × per-stage
    /// histograms, the slow-query ring and event counters. Recording
    /// is lock-free and allocation-free (see [`crate::telemetry`]).
    telemetry: Telemetry,
}

impl Inner {
    /// Target kernel time per sub-batch, µs — the knob behind the
    /// dynamic [`Self::effective_min_sub_batch`]. Large enough that a
    /// chunk's compute dwarfs its queue/wake cost, small enough that a
    /// medium batch still fans out.
    const TARGET_CHUNK_US: u64 = 200;

    /// The current `(index snapshot, epoch)` pair, read consistently.
    fn snapshot(&self) -> (Arc<CommunitySearch>, u64) {
        let guard = self.search.read().unwrap();
        (guard.0.clone(), guard.1) // contract-ok: Arc refcount bump under the snapshot read lock
    }

    /// Joins (or opens) the flight for `key` at `epoch`. A resident
    /// flight from an *older* epoch is replaced — its leader still
    /// answers its own followers, but nobody new coalesces onto a
    /// retired index. A resident flight from a *newer* epoch means the
    /// caller's snapshot is stale (an install won the race); it must
    /// re-read and retry rather than evict current-epoch work.
    fn join_flight(&self, key: QueryRequest, epoch: u64) -> Role {
        let mut map = self.inflight.lock().unwrap();
        if let Some(flight) = map.get(&key) {
            // ordering: Relaxed — `epoch` is only read/written under the
            // `inflight` mutex held here; the lock orders the accesses.
            let fe = flight.epoch.load(Ordering::Relaxed);
            if fe == epoch {
                return Role::Follower(flight.clone()); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
            }
            if fe > epoch {
                return Role::StaleSnapshot;
            }
        }
        // Reuse a pooled flight if one is free (refcount 1 ⇒ every
        // previous follower is gone, so the reset is unobservable).
        let flight = match self.take_free_flight() {
            Some(f) => {
                // ordering: Relaxed — written under the `inflight` mutex,
                // which orders it against every reader (see `join_flight`).
                f.epoch.store(epoch, Ordering::Relaxed);
                f
            }
            // contract-ok: cold pool-fill arm
            None => Arc::new(Flight {
                epoch: AtomicU64::new(epoch),
                slot: Mutex::new(FlightState::Pending),
                cv: Condvar::new(),
            }),
        };
        map.insert(key, flight.clone()); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
        Role::Leader(flight)
    }

    /// Takes a free pooled flight, sweeping stale state as it scans: a
    /// flight pooled while its followers were still live keeps its
    /// `Done` response — which pins an arena slab — until they drop,
    /// and nothing else ever revisits it. The sweep resets every
    /// flight that has since become free (the slot already Pending in
    /// the common case), so a pooled flight pins a slab only until the
    /// next leader creation or the next install ([`Self::sweep_flights`]
    /// also runs there, covering all-cache-hit steady states between
    /// epoch swaps); only traffic that is 100% hits with no installs
    /// retains the (bounded, transient-follower-sized) residue.
    fn take_free_flight(&self) -> Option<Arc<Flight>> {
        let mut pool = self.flight_pool.items.lock().unwrap();
        let first_free = Self::sweep_flight_slots(&mut pool);
        first_free.map(|i| pool.swap_remove(i))
    }

    /// Resets the slot of every free pooled flight (dropping any stale
    /// published response) and returns the index of one free entry.
    fn sweep_flight_slots(pool: &mut [Arc<Flight>]) -> Option<usize> {
        let mut first_free = None;
        for (i, flight) in pool.iter().enumerate() {
            if Arc::strong_count(flight) == 1 {
                let mut slot = flight.slot.lock().unwrap();
                if !matches!(*slot, FlightState::Pending) {
                    *slot = FlightState::Pending;
                }
                if first_free.is_none() {
                    first_free = Some(i);
                }
            }
        }
        first_free
    }

    /// Sweeps the flight pool without taking anything — called on
    /// install so stale `Done` responses can't outlive the epoch that
    /// produced them.
    fn sweep_flights(&self) {
        let mut pool = self.flight_pool.items.lock().unwrap();
        Self::sweep_flight_slots(&mut pool);
    }

    // scs-contract: no-alloc, no-block — every served request ends here;
    // the release counting-allocator gates assert the warm path stays
    // heap-silent, and nothing on the exit path may wait.
    fn finish(&self, resp: &QueryResponse) {
        self.hist.record(resp.service_us);
        // ordering: Relaxed — independent statistic; pairs with nothing.
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the engine can compute an answer for `req` on `search`.
    /// An unservable request (vertex outside the installed graph, zero
    /// constraint) gets the empty community rather than panicking a
    /// worker: the graph can shrink across installs, so clients cannot
    /// validate upfront. Shared by the single and batch paths so the
    /// two can never drift apart.
    fn servable(req: &QueryRequest, search: &CommunitySearch) -> bool {
        req.q.index() < search.graph().n_vertices() && req.alpha >= 1 && req.beta >= 1
    }

    /// Caches `resp` only if no install retired the index it was
    /// computed on, and reports whether it did. Holding the read lock
    /// makes the epoch-check + insert atomic w.r.t. `install`, which
    /// clears the cache under the write lock — so a stale entry can
    /// never land after the clear.
    fn cache_if_current(&self, req: QueryRequest, resp: &QueryResponse, epoch: u64) -> bool {
        let lock = self.search.read().unwrap();
        if lock.1 == epoch {
            self.cache.insert(req, resp.clone()); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
            true
        } else {
            self.telemetry.note_stale_publish();
            false
        }
    }

    /// The split granularity actually in force: the configured
    /// `min_sub_batch` floor, raised — once enough kernel-stage
    /// samples exist — so that one sub-batch covers roughly
    /// [`Self::TARGET_CHUNK_US`] of observed per-leader kernel time.
    /// Cheap kernels thus get coarser chunks (scheduling overhead
    /// cannot dominate the work), expensive kernels fall back to the
    /// floor (maximum fan-out). Two relaxed loads per algorithm; a
    /// stale reading only mis-sizes a split, never mis-answers one.
    ///
    /// Batch units record the *shared* kernel-call window, so the
    /// per-unit mean overestimates true per-leader cost under batch
    /// traffic — which only biases chunks larger, the safe direction.
    fn effective_min_sub_batch(&self) -> usize {
        /// Kernel-stage samples required before the feedback engages;
        /// below it the configured floor rules (a cold engine behaves
        /// exactly as configured).
        const MIN_SAMPLES: u64 = 32;
        let (count, sum) = self.telemetry.kernel_cost_us();
        if count < MIN_SAMPLES {
            return self.min_sub_batch;
        }
        let per_unit_us = (sum / count).max(1);
        self.min_sub_batch
            .max(((Self::TARGET_CHUNK_US / per_unit_us).max(1)) as usize)
    }

    /// How many sub-batches to carve `n_units` leader computations
    /// into: 1 (serve inline) unless splitting is enabled, and
    /// otherwise capped both by the pool's idle capacity (idle workers
    /// plus the serving worker itself) and by the one-sub-batch-per-
    /// [`Self::effective_min_sub_batch`]-leaders floor, so small
    /// batches stay whole.
    // scs-contract: no-alloc, no-block — the split decision runs per
    // batch on the worker; it must stay a couple of loads and a division.
    fn split_factor(&self, n_units: usize) -> usize {
        if !self.split_batches || n_units < 2 {
            return 1;
        }
        // ordering: Relaxed — advisory gauge written by `JobQueue::pop`;
        // a stale value only changes the split heuristic.
        let idle = self.idle_workers.load(Ordering::Relaxed);
        (idle + 1).min(n_units.div_ceil(self.effective_min_sub_batch()))
    }

    /// A recycled (or fresh) [`BatchShared`] with its plain fields set
    /// and every buffer empty-but-warm.
    fn batch_shared(
        &self,
        search: Arc<CommunitySearch>,
        epoch: u64,
        t0: Instant,
        queue_us: u64,
        snapshot_us: u64,
    ) -> Arc<BatchShared> {
        match self.shared_pool.take_free() {
            Some(mut shared) => {
                let s = Arc::get_mut(&mut shared).expect("pool returned a free entry");
                s.search = search;
                s.epoch = epoch;
                s.t0 = t0;
                s.queue_us = queue_us;
                s.snapshot_us = snapshot_us;
                s.total = 0;
                s.slot_store.clear();
                s.units.get_mut().unwrap().clear();
                s.queue.get_mut().unwrap().clear();
                *s.done.get_mut().unwrap() = 0;
                s.results.get_mut().unwrap().clear();
                shared
            }
            // contract-ok: cold pool-fill arm
            None => Arc::new(BatchShared {
                search,
                epoch,
                t0,
                queue_us,
                snapshot_us,
                total: 0,
                slot_store: Vec::new(), // contract-ok: capacity-0 construction; Vec::new never touches the heap
                units: Mutex::new(Vec::new()), // contract-ok: capacity-0 construction; Vec::new never touches the heap
                queue: Mutex::new(Vec::new()), // contract-ok: capacity-0 construction; Vec::new never touches the heap
                done: Mutex::new(0),
                cv: Condvar::new(),
                results: Mutex::new(Vec::new()), // contract-ok: capacity-0 construction; Vec::new never touches the heap
            }),
        }
    }
}

/// The per-worker compute state: the reusable workspace, the result
/// arena, and the kernel-call staging buffers. One per worker thread,
/// reused across every query, batch, sub-batch and epoch swap it
/// serves.
struct KernelState {
    ws: QueryWorkspace,
    arena: ResultArena,
    /// Batched-kernel query list, rebuilt per run.
    queries: Vec<(Vertex, usize, usize)>,
    /// Batched-kernel result handles, drained per run.
    handles: Vec<bigraph::arena::ArenaEdges>,
}

impl KernelState {
    fn new(arena_slab_edges: usize) -> Self {
        KernelState {
            ws: QueryWorkspace::new(),
            arena: ResultArena::with_slab_capacity(arena_slab_edges),
            queries: Vec::new(),
            handles: Vec::new(),
        }
    }
}

/// Owner-side batch bookkeeping, all capacity-retaining. The unique-key
/// table is a counting-sort grouping: key `k` (in first-occurrence
/// order) answers submission slots
/// `key_slots[key_start[k]..key_start[k+1]]`, ascending.
#[derive(Default)]
struct BatchScratch {
    out: Vec<Option<QueryResponse>>,
    keys: Vec<QueryRequest>,
    key_of_slot: Vec<u32>,
    key_start: Vec<u32>,
    key_cursor: Vec<u32>,
    key_slots: Vec<u32>,
    /// Pass-1 cache-lookup time per unique key, µs (stage attribution).
    key_cache_us: Vec<u64>,
    first: HashMap<QueryRequest, u32>,
    miss_keys: Vec<u32>,
    leaders: Vec<(FlightGuard, u32)>,
    followers: Vec<(Arc<Flight>, u32)>,
    stale_keys: Vec<u32>,
    sink: Vec<(u32, QueryResponse)>,
    /// One bucket per [`Algorithm::ALL`] entry.
    algo_units: Vec<Vec<Unit>>,
}

/// Sub-batch executor scratch, separate from [`BatchScratch`] because a
/// worker can run another owner's chunks while its own batch scratch is
/// in use.
#[derive(Default)]
struct SubScratch {
    units: Vec<Unit>,
    sink: Vec<(u32, QueryResponse)>,
}

/// Everything a worker thread owns.
struct WorkerState {
    kernel: KernelState,
    batch: BatchScratch,
    sub: SubScratch,
    /// Per-request stage stopwatch — plain scalars, reused forever, so
    /// stage attribution costs clock reads and nothing else.
    rec: StageRecorder,
}

fn algo_rank(algo: Algorithm) -> usize {
    Algorithm::ALL
        .iter()
        .position(|&a| a == algo)
        .expect("every algorithm is in ALL")
}

/// Serves one request with full per-request accounting: one cache
/// lookup, then — on a miss — the flight protocol of [`serve_miss`].
///
/// `rec` must have been started by the caller (who owns the enqueue
/// timestamp); this function marks the cache-lookup stage and
/// [`serve_miss`] the rest. The caller records the trace after the
/// reply, so a panicking request is never recorded — mirroring the
/// `completed` counter.
// scs-contract: no-alloc — the warm leader path: pooled flights, arena
// kernels, refcounted responses; proven transitively by `scs analyze`.
fn serve_one(
    inner: &Arc<Inner>,
    req: QueryRequest,
    k: &mut KernelState,
    rec: &mut StageRecorder,
) -> QueryResponse {
    let t0 = Instant::now();
    let hit = inner.cache.get(&req);
    rec.mark(Stage::CacheLookup);
    if let Some(hit) = hit {
        let resp = QueryResponse {
            cached: true,
            coalesced: false,
            service_us: t0.elapsed().as_micros() as u64,
            ..hit
        };
        inner.finish(&resp);
        return resp;
    }
    serve_miss(inner, req, k, t0, rec)
}

/// The miss path of [`serve_one`]: joins (or opens) the flight for `req`
/// and computes or waits. Factored out of [`serve_one`] so the batch path
/// can resolve a stale-snapshot key without a second cache lookup being
/// counted — its pass-1 lookup already recorded the miss, exactly the
/// one lookup a per-request submission performs.
fn serve_miss(
    inner: &Arc<Inner>,
    req: QueryRequest,
    k: &mut KernelState,
    t0: Instant,
    rec: &mut StageRecorder,
) -> QueryResponse {
    // Epochs are monotonic, so the retry loop terminates: it only
    // loops when an install landed between our snapshot and the
    // join, and each retry re-reads the newer snapshot.
    let (search, epoch, role) = loop {
        let (search, epoch) = inner.snapshot();
        match inner.join_flight(req, epoch) {
            Role::StaleSnapshot => continue,
            role => break (search, epoch, role),
        }
    };
    rec.mark(Stage::Snapshot);
    match role {
        Role::StaleSnapshot => unreachable!("retried above"),
        Role::Leader(flight) => {
            let mut guard = FlightGuard {
                inner: inner.clone(), // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
                key: req,
                flight,
                published: false,
            };
            let summary = if Inner::servable(&req, &search) {
                // The worker's workspace provides every scratch buffer
                // and its arena the result storage; nothing is
                // allocated once both are warm.
                let edges = search.significant_community_arena(
                    req.q,
                    req.alpha as usize,
                    req.beta as usize,
                    req.algo,
                    &mut k.ws,
                    &mut k.arena,
                );
                CommunitySummary::from_arena_edges(search.graph(), edges, &mut k.ws)
            } else {
                CommunitySummary::empty()
            };
            rec.mark(Stage::Kernel);
            let resp = QueryResponse {
                request: req,
                summary,
                cached: false,
                coalesced: false,
                epoch,
                service_us: t0.elapsed().as_micros() as u64,
            };
            inner.cache_if_current(req, &resp, epoch);
            // Publish, then let the guard's Drop clear the table
            // entry: a thread that found this flight always gets an
            // answer; threads arriving after the removal start a
            // fresh flight (and typically hit the cache first).
            guard.publish(resp.clone()); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
            drop(guard);
            inner.finish(&resp);
            rec.mark(Stage::Publish);
            resp
        }
        Role::Follower(flight) => {
            let shared = flight.wait().unwrap_or_else(|| {
                panic!("in-flight leader for {req:?} panicked before publishing")
            });
            // A coalesced request's "kernel" is the wait on the
            // leader's computation — that is where its time went.
            rec.mark(Stage::Kernel);
            let resp = QueryResponse {
                cached: false,
                coalesced: true,
                service_us: t0.elapsed().as_micros() as u64,
                ..shared
            };
            // ordering: Relaxed — independent statistic; pairs with nothing.
            inner.coalesced.fetch_add(1, Ordering::Relaxed);
            inner.finish(&resp);
            rec.mark(Stage::Publish);
            resp
        }
    }
}

/// Builds and publishes one leader's response (cache + flight), then
/// answers every submission slot of its key into `sink`. `slots[0]` is
/// the leader's own. Duplicate slots are answered the way a serial
/// per-request resubmission would be: as cache hits when the leader's
/// result went into the cache, otherwise (an install retired the epoch
/// before the insert) as misses coalesced onto this computation — so
/// the cache and coalescing counters cannot drift between submission
/// modes, provided the cache is large enough to retain the batch's
/// unique keys (with a cache smaller than one batch's key set, a
/// duplicate counts as the hit its entry was at insert time even if
/// eviction would have forced a per-request resubmission to recompute;
/// deliberately so — re-probing, let alone recomputing, could block,
/// and sub-batch execution must never wait).
#[allow(clippy::too_many_arguments)] // internal plumbing; the args are the trace
fn publish_unit(
    inner: &Arc<Inner>,
    ctx: BatchCtx<'_>,
    mut guard: FlightGuard,
    slots: &[u32],
    summary: CommunitySummary,
    kernel_us: u64,
    cache_us: u64,
    sink: &mut Vec<(u32, QueryResponse)>,
) {
    let us = |t0: &Instant| t0.elapsed().as_micros() as u64;
    let pt0 = Instant::now();
    let req = guard.key;
    let resp = QueryResponse {
        request: req,
        summary,
        cached: false,
        coalesced: false,
        epoch: ctx.epoch,
        service_us: us(&ctx.t0),
    };
    let resident = inner.cache_if_current(req, &resp, ctx.epoch);
    guard.publish(resp.clone()); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
    drop(guard);
    inner.finish(&resp);
    // Stage attribution for every slot this unit answers: the batch's
    // queue wait and snapshot window, this key's pass-1 lookup, the
    // (shared) kernel-call window and this unit's publish window — all
    // disjoint wall-clock sub-intervals, so the stage sum never
    // exceeds the end-to-end total.
    let mut stages = StageSet::new();
    stages
        .set(Stage::QueueWait, ctx.queue_us)
        .set(Stage::Snapshot, ctx.snapshot_us)
        .set(Stage::CacheLookup, cache_us)
        .set(Stage::Kernel, kernel_us)
        .set(Stage::Publish, us(&pt0));
    inner.telemetry.record(&stages.trace(
        &req,
        ctx.epoch,
        false,
        false,
        ctx.prov,
        ctx.queue_us + us(&ctx.t0),
    ));
    sink.push((slots[0], resp.clone())); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
    for &slot in &slots[1..] {
        let r = if resident {
            inner.cache.record_extra_hit();
            QueryResponse {
                cached: true,
                service_us: us(&ctx.t0),
                ..resp.clone() // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
            }
        } else {
            inner.cache.record_extra_miss();
            // ordering: Relaxed — independent statistic; pairs with nothing.
            inner.coalesced.fetch_add(1, Ordering::Relaxed);
            QueryResponse {
                coalesced: true,
                service_us: us(&ctx.t0),
                ..resp.clone() // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
            }
        };
        inner.finish(&r);
        inner.telemetry.record(&stages.trace(
            &req,
            ctx.epoch,
            r.cached,
            r.coalesced,
            ctx.prov,
            ctx.queue_us + r.service_us,
        ));
        sink.push((slot, r)); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
    }
}

/// Answers a same-algorithm run of leader units through **one** batched
/// kernel call on the executing worker's kernel state — results land in
/// that worker's arena — publishing each leader the moment its summary
/// exists and appending `(slot, response)` pairs to `sink`. `units` is
/// drained (capacity kept); `store` resolves each unit's slot range. A
/// panic inside the kernel unwinds through the remaining guards,
/// poisoning every unpublished flight.
fn run_units(
    inner: &Arc<Inner>,
    ctx: BatchCtx<'_>,
    algo: Algorithm,
    units: &mut Vec<Unit>,
    store: &[u32],
    k: &mut KernelState,
    sink: &mut Vec<(u32, QueryResponse)>,
) {
    k.queries.clear();
    // contract-ok: warm pooled buffer; growth is cold
    k.queries.extend(units.iter().map(|u| {
        (
            u.guard.key.q,
            u.guard.key.alpha as usize,
            u.guard.key.beta as usize,
        )
    }));
    // `units` lives in caller-owned reusable scratch, so a panic
    // unwinding out of the kernel would no longer drop the guards by
    // itself (it did when units was an owned Vec) — clear the buffer
    // before re-raising so every unpublished flight is poisoned and no
    // stale unit (whose slot range indexes *this* batch's tables) can
    // leak into the next batch served from the same scratch.
    let kt0 = Instant::now();
    let kernel = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ctx.search.significant_communities_arena(
            &k.queries,
            algo,
            &mut k.ws,
            &mut k.arena,
            &mut k.handles,
        )
    }));
    if let Err(panic) = kernel {
        units.clear();
        std::panic::resume_unwind(panic);
    }
    // One batched call served the whole run, so each of its units is
    // attributed the full kernel window — the cost the run's members
    // shared; a per-unit split would misstate where the batch's time
    // went (the units ran *inside* this window, not after each other).
    let kernel_us = kt0.elapsed().as_micros() as u64;
    // A panic below (publishing) is already safe: `Drain` drops the
    // not-yet-yielded units on unwind, poisoning their flights.
    for (unit, edges) in units.drain(..).zip(k.handles.drain(..)) {
        let summary = CommunitySummary::from_arena_edges(ctx.search.graph(), edges, &mut k.ws);
        let (s0, s1) = unit.slots;
        publish_unit(
            inner,
            ctx,
            unit.guard,
            &store[s0 as usize..s1 as usize],
            summary,
            kernel_us,
            unit.cache_us,
            sink,
        );
    }
}

/// Drains and executes a split batch's unclaimed sub-batches; called by
/// the batch owner (who runs whatever the pool does not claim) and by
/// any worker that dequeued a [`Job::Sub`] hint. Chunk execution is
/// pure compute-and-publish — it never waits on another flight — which
/// is what keeps the split path deadlock-free: every chunk is either
/// unclaimed (the owner will run it) or actively computing, so the
/// owner's join always makes progress.
fn run_split_chunks(
    inner: &Arc<Inner>,
    shared: &BatchShared,
    k: &mut KernelState,
    sub: &mut SubScratch,
) {
    loop {
        let Some(range) = shared.queue.lock().unwrap().pop() else {
            return;
        };
        // Count the chunk done even if the kernel panics (its guards
        // poison the flights), so the owner's join never hangs — the
        // missing results make the owner fail loudly instead.
        struct DoneGuard<'a>(&'a BatchShared);
        impl Drop for DoneGuard<'_> {
            fn drop(&mut self) {
                *self.0.done.lock().unwrap() += 1;
                self.0.cv.notify_all();
            }
        }
        let _done = DoneGuard(shared);
        let ctx = BatchCtx {
            search: &shared.search,
            epoch: shared.epoch,
            t0: shared.t0,
            queue_us: shared.queue_us,
            snapshot_us: shared.snapshot_us,
            prov: Provenance::Split,
        };
        sub.units.clear();
        {
            let mut units = shared.units.lock().unwrap();
            // contract-ok: Range clone is a stack copy
            for i in range.units.clone() {
                if let Some(unit) = units[i].take() {
                    sub.units.push(unit); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
                }
            }
        }
        sub.sink.clear();
        run_units(
            inner,
            ctx,
            range.algo,
            &mut sub.units,
            &shared.slot_store,
            k,
            &mut sub.sink,
        );
        shared.results.lock().unwrap().extend(sub.sink.drain(..)); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
    }
}

/// Serves a whole batch, amortizing the per-request costs: one cache
/// lookup per *unique* key, one index-snapshot read, batched kernel
/// calls for the leaders — fanned out across idle workers when the
/// split heuristic (see [`Inner::split_factor`]) says the pool has
/// capacity — and one response vector (pooled) in submission order.
// scs-contract: no-alloc — the warm batch path reuses pooled buffers
// end to end; proven transitively by `scs analyze`.
fn serve_batch(
    inner: &Arc<Inner>,
    reqs: &[QueryRequest],
    state: &mut WorkerState,
    enqueued: Instant,
) -> Vec<QueryResponse> {
    let WorkerState {
        kernel: k,
        batch: b,
        sub,
        rec,
    } = state;
    let t0 = Instant::now();
    // The whole batch waited in the queue together; every one of its
    // requests is attributed the same queue-wait stage.
    let queue_us = t0.saturating_duration_since(enqueued).as_micros() as u64;
    // ordering: Relaxed — independent statistics; pair with nothing.
    inner.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .batched
        .fetch_add(reqs.len() as u64, Ordering::Relaxed);
    let us = |t0: &Instant| t0.elapsed().as_micros() as u64;

    // Reset every buffer a previous batch could have left populated by
    // panicking mid-serve (the worker survives panics): leftover sink
    // responses would pin arena slabs, leftover follower/leader
    // entries would pin pooled flights, and a stale unit's slot range
    // would index *this* batch's tables. Clears are O(leftovers) and
    // free in the steady state.
    b.sink.clear();
    b.followers.clear();
    b.leaders.clear();
    for bucket in &mut b.algo_units {
        bucket.clear();
    }

    // Unique keys in first-occurrence order, each with every submission
    // slot it answers (counting-sort grouping, all reusable buffers).
    // Duplicates inside the batch are computed (or looked up) once; the
    // extra slots are answered as a serial resubmission would be.
    b.keys.clear();
    b.key_of_slot.clear();
    b.first.clear();
    for req in reqs {
        // contract-ok: warm pooled buffer; growth is cold
        let idx = match b.first.entry(*req) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let i = b.keys.len() as u32;
                e.insert(i); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
                b.keys.push(*req); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
                i
            }
        };
        b.key_of_slot.push(idx); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
    }
    let nk = b.keys.len();
    b.key_start.clear();
    b.key_start.resize(nk + 1, 0); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
    for &kx in &b.key_of_slot {
        b.key_start[kx as usize + 1] += 1;
    }
    for i in 0..nk {
        b.key_start[i + 1] += b.key_start[i];
    }
    b.key_cursor.clear();
    b.key_cursor.extend_from_slice(&b.key_start[..nk]);
    b.key_slots.clear();
    b.key_slots.resize(reqs.len(), 0); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
    for (slot, &kx) in b.key_of_slot.iter().enumerate() {
        let cursor = &mut b.key_cursor[kx as usize];
        b.key_slots[*cursor as usize] = slot as u32;
        *cursor += 1;
    }

    b.out.clear();
    b.out.resize(reqs.len(), None); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)

    // Pass 1: one physical cache lookup per unique key, with duplicate
    // slots of a hit counted as the hits they are — per-request
    // submission performs one lookup per request, and the stats must
    // not depend on how requests were submitted.
    b.miss_keys.clear();
    b.key_cache_us.clear();
    for kx in 0..nk {
        let req = b.keys[kx];
        let (s0, s1) = (b.key_start[kx] as usize, b.key_start[kx + 1] as usize);
        let lt0 = Instant::now();
        let hit = inner.cache.get(&req);
        let cache_us = lt0.elapsed().as_micros() as u64;
        b.key_cache_us.push(cache_us); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
        if let Some(hit) = hit {
            let mut stages = StageSet::new();
            stages
                .set(Stage::QueueWait, queue_us)
                .set(Stage::CacheLookup, cache_us);
            for (j, &slot) in b.key_slots[s0..s1].iter().enumerate() {
                if j > 0 {
                    inner.cache.record_extra_hit();
                }
                let resp = QueryResponse {
                    cached: true,
                    coalesced: false,
                    service_us: us(&t0),
                    ..hit.clone() // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
                };
                inner.finish(&resp);
                inner.telemetry.record(&stages.trace(
                    &req,
                    resp.epoch,
                    true,
                    false,
                    Provenance::Batch,
                    queue_us + resp.service_us,
                ));
                b.out[slot as usize] = Some(resp);
            }
        } else {
            b.miss_keys.push(kx as u32); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
        }
    }

    if !b.miss_keys.is_empty() {
        // One snapshot read for every miss in the batch; the
        // snapshot-acquire stage covers it together with the flight
        // joins, matching the per-request path's attribution.
        let st0 = Instant::now();
        let (search, epoch) = inner.snapshot();
        b.leaders.clear();
        b.followers.clear();
        b.stale_keys.clear();
        for &kx in &b.miss_keys {
            let req = b.keys[kx as usize];
            match inner.join_flight(req, epoch) {
                // contract-ok: warm pooled buffer; growth is cold
                Role::Leader(flight) => b.leaders.push((
                    FlightGuard {
                        inner: inner.clone(), // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
                        key: req,
                        flight,
                        published: false,
                    },
                    kx,
                )),
                Role::Follower(flight) => b.followers.push((flight, kx)), // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
                // An install raced between our snapshot and this
                // join; resolved below via the per-request miss path.
                Role::StaleSnapshot => b.stale_keys.push(kx), // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
            }
        }
        let snapshot_us = st0.elapsed().as_micros() as u64;

        // Partition the servable leaders into per-algorithm runs; the
        // unservable get the empty community immediately.
        let ctx = BatchCtx {
            search: &search,
            epoch,
            t0,
            queue_us,
            snapshot_us,
            prov: Provenance::Batch,
        };
        b.sink.clear();
        while b.algo_units.len() < Algorithm::ALL.len() {
            b.algo_units.push(Vec::new()); // contract-ok: capacity-0 construction; Vec::new never touches the heap
        }
        let mut n_units = 0usize;
        for (guard, kx) in b.leaders.drain(..) {
            let (s0, s1) = (b.key_start[kx as usize], b.key_start[kx as usize + 1]);
            if !Inner::servable(&guard.key, &search) {
                // No kernel ran for an unservable key; a 0µs kernel
                // stage still marks the path it took.
                publish_unit(
                    inner,
                    ctx,
                    guard,
                    &b.key_slots[s0 as usize..s1 as usize],
                    CommunitySummary::empty(),
                    0,
                    b.key_cache_us[kx as usize],
                    &mut b.sink,
                );
                continue;
            }
            n_units += 1;
            let cache_us = b.key_cache_us[kx as usize];
            // contract-ok: warm pooled buffer; growth is cold
            b.algo_units[algo_rank(guard.key.algo)].push(Unit {
                guard,
                slots: (s0, s1),
                cache_us,
            });
        }

        let fanout = inner.split_factor(n_units);
        if fanout <= 1 {
            // Inline: this worker answers every leader itself, one
            // batched kernel call per algorithm present.
            for rank in 0..Algorithm::ALL.len() {
                if b.algo_units[rank].is_empty() {
                    continue;
                }
                run_units(
                    inner,
                    ctx,
                    Algorithm::ALL[rank],
                    &mut b.algo_units[rank],
                    &b.key_slots,
                    k,
                    &mut b.sink,
                );
            }
        } else {
            // Split: carve the leader runs into `fanout`-ish chunks
            // (chunk boundaries respect algorithm runs, so each chunk
            // is still one kernel call — which also means a batch with
            // more algorithms than `fanout` carves more, smaller
            // chunks than `fanout`; the concurrency bound is enforced
            // on executors below, not on chunk count), park them in a
            // pooled, claimable [`BatchShared`] and wake idle workers
            // with hints. We claim and run whatever the pool does not,
            // then wait for stragglers.
            let chunk_size = n_units.div_ceil(fanout);
            let mut shared = inner.batch_shared(search.clone(), epoch, t0, queue_us, snapshot_us); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
            {
                let s = Arc::get_mut(&mut shared).expect("owner holds the only reference");
                for rank in 0..Algorithm::ALL.len() {
                    if b.algo_units[rank].is_empty() {
                        continue;
                    }
                    let algo = Algorithm::ALL[rank];
                    let units_store = s.units.get_mut().unwrap();
                    let queue = s.queue.get_mut().unwrap();
                    for (taken, unit) in b.algo_units[rank].drain(..).enumerate() {
                        // Re-home the unit's slot group into the shared
                        // store so executors never touch owner scratch.
                        let (s0, s1) = unit.slots;
                        let ns0 = s.slot_store.len() as u32;
                        s.slot_store
                            .extend_from_slice(&b.key_slots[s0 as usize..s1 as usize]);
                        let ns1 = s.slot_store.len() as u32;
                        if taken % chunk_size == 0 {
                            let at = units_store.len();
                            // contract-ok: warm pooled buffer; growth is cold
                            queue.push(SubRange {
                                algo,
                                units: at..at,
                            });
                        }
                        // contract-ok: warm pooled buffer; growth is cold
                        units_store.push(Some(Unit {
                            guard: unit.guard,
                            slots: (ns0, ns1),
                            cache_us: unit.cache_us,
                        }));
                        queue.last_mut().expect("range opened above").units.end = units_store.len();
                    }
                }
                s.total = s.queue.get_mut().unwrap().len();
            }
            // ordering: Relaxed — independent statistics; pair with
            // nothing.
            inner.splits.fetch_add(1, Ordering::Relaxed);
            inner
                .sub_batches
                .fetch_add(shared.total as u64, Ordering::Relaxed);
            // A hint is only a wake-up: whoever pops a chunk runs it,
            // and a hinted worker drains chunks in a loop — so the
            // hint count, not the chunk count, is what bounds the
            // fan-out width. Cap it at `fanout - 1` helpers (idle
            // capacity), or a many-algorithm batch would wake more
            // workers than the pool has idle. A closed queue (shutdown
            // in progress) just means we run every chunk ourselves.
            for _ in 1..shared.total.min(fanout) {
                // contract-ok: refcount bump, no heap
                if !inner.queue.push(Job::Sub(shared.clone())) {
                    break;
                }
            }
            run_split_chunks(inner, &shared, k, sub);
            let mut done = shared.done.lock().unwrap();
            while *done < shared.total {
                done = shared.cv.wait(done).unwrap();
            }
            drop(done);
            b.sink.extend(shared.results.lock().unwrap().drain(..)); // contract-ok: pooled buffer retains warm capacity across batches; growth is cold (alloc-gated)
                                                                     // Recycle the shared state; unconsumed hints still holding
                                                                     // it keep it out of circulation until they drain.
            inner.shared_pool.put(shared);
        }
        for (slot, resp) in b.sink.drain(..) {
            b.out[slot as usize] = Some(resp);
        }

        // Every leader above is published before we wait on anyone
        // else's flight (the stale retries and followers below), so
        // two workers batching each other's keys can never deadlock
        // on one another.
        // Rare install race: resolve each slot through the per-request
        // path — the first without a second cache lookup (pass 1
        // already counted this key's miss), duplicates with their own
        // lookup, exactly as if resubmitted.
        for i in 0..b.stale_keys.len() {
            let kx = b.stale_keys[i] as usize;
            let req = b.keys[kx];
            let (s0, s1) = (b.key_start[kx] as usize, b.key_start[kx + 1] as usize);
            for (j, &slot) in b.key_slots[s0..s1].iter().enumerate() {
                // The per-request path records through the worker's
                // stage stopwatch; the batch's queue wait is its base
                // and the trace carries batch provenance.
                rec.start_with_queue_us(queue_us);
                let resp = if j == 0 {
                    serve_miss(inner, req, k, t0, rec)
                } else {
                    serve_one(inner, req, k, rec)
                };
                inner.telemetry.record(&rec.trace(
                    &req,
                    resp.epoch,
                    resp.cached,
                    resp.coalesced,
                    Provenance::Batch,
                ));
                b.out[slot as usize] = Some(resp);
            }
        }

        for i in 0..b.followers.len() {
            let (flight, kx) = (b.followers[i].0.clone(), b.followers[i].1 as usize); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
            let req = b.keys[kx];
            let wt0 = Instant::now();
            let shared = flight.wait().unwrap_or_else(|| {
                panic!("in-flight leader for {req:?} panicked before publishing")
            });
            // As on the per-request path, a coalesced request's kernel
            // stage is the wait on the leader's computation.
            let kernel_us = wt0.elapsed().as_micros() as u64;
            let mut stages = StageSet::new();
            stages
                .set(Stage::QueueWait, queue_us)
                .set(Stage::Snapshot, snapshot_us)
                .set(Stage::CacheLookup, b.key_cache_us[kx])
                .set(Stage::Kernel, kernel_us);
            let (s0, s1) = (b.key_start[kx] as usize, b.key_start[kx + 1] as usize);
            for (j, &slot) in b.key_slots[s0..s1].iter().enumerate() {
                if j > 0 {
                    // Pass 1 counted one miss for this key; its
                    // duplicates waited on the same flight and are
                    // accounted like the extra followers they are.
                    inner.cache.record_extra_miss();
                }
                let resp = QueryResponse {
                    cached: false,
                    coalesced: true,
                    service_us: us(&t0),
                    ..shared.clone() // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
                };
                // ordering: Relaxed — independent statistic; pairs with
                // nothing.
                inner.coalesced.fetch_add(1, Ordering::Relaxed);
                inner.finish(&resp);
                inner.telemetry.record(&stages.trace(
                    &req,
                    resp.epoch,
                    false,
                    true,
                    Provenance::Batch,
                    queue_us + resp.service_us,
                ));
                b.out[slot as usize] = Some(resp);
            }
        }
        b.followers.clear();
    }

    let mut responses = inner.resp_pool.take();
    // contract-ok: warm pooled buffer; growth is cold
    responses.extend(
        b.out
            .drain(..)
            .map(|r| r.expect("every batch slot answered")),
    );
    responses
}

enum Job {
    /// One request, one response; the `Instant` is the enqueue time
    /// (the queue-wait stage is measured from it at dequeue).
    Single(QueryRequest, Arc<ReplyCell<QueryResponse>>, Instant),
    /// N requests served by one worker with amortized snapshot, cache
    /// and workspace handling; answered as one vector in request order.
    /// The request vector is pooled and returned after serving. The
    /// `Instant` is the enqueue time, as in [`Job::Single`].
    Batch(
        Vec<QueryRequest>,
        Arc<ReplyCell<Vec<QueryResponse>>>,
        Instant,
    ),
    /// Wake-up hint that a split batch has unclaimed sub-batches; the
    /// receiving worker drains [`BatchShared::queue`] (possibly finding
    /// nothing — the owner and other workers race for chunks).
    Sub(Arc<BatchShared>),
}

/// A pending response; produced by [`QueryEngine::submit`].
pub struct ResponseHandle {
    cell: Arc<ReplyCell<QueryResponse>>,
}

impl ResponseHandle {
    /// Blocks until the engine answers.
    ///
    /// # Panics
    /// Panics if the query panicked inside the engine or the engine
    /// shut down before answering.
    pub fn wait(self) -> QueryResponse {
        self.cell
            .take()
            .expect("query panicked in the engine or engine shut down before responding")
    }
}

/// A pending batch of responses; produced by
/// [`QueryEngine::submit_batch`]. Responses arrive together, in the
/// order the requests were submitted — also when the batch was fanned
/// out across engine shards, in which case the handle reassembles the
/// per-shard answers on `wait`.
pub struct BatchHandle {
    parts: BatchParts,
}

enum BatchParts {
    /// The whole batch went to one shard (always the case with one
    /// shard configured): the answer vector passes through unchanged,
    /// so this path stays allocation-free for warm callers.
    Single {
        cell: Arc<ReplyCell<Vec<QueryResponse>>>,
        inner: Arc<Inner>,
    },
    /// The batch was partitioned across shards: one sub-batch job per
    /// participating shard, answers merged back into submission order
    /// by walking `route` with per-shard cursors. Responses are cloned
    /// out of the per-shard vectors — a refcount bump for arena-backed
    /// summaries — and every buffer returns to its owning shard's pool.
    Fanout {
        /// `(shard index, pending reply)` per participating shard, in
        /// shard order.
        parts: Vec<(u32, Arc<ReplyCell<Vec<QueryResponse>>>)>,
        /// Slot → shard route of the original submission order.
        route: Vec<u32>,
        core: Arc<EngineCore>,
    },
}

const BATCH_WAIT_MSG: &str = "batch panicked in the engine or engine shut down before responding";

impl BatchHandle {
    /// Blocks until the engine answers the whole batch.
    ///
    /// # Panics
    /// Panics if a query panicked inside the engine or the engine shut
    /// down before answering.
    pub fn wait(self) -> Vec<QueryResponse> {
        match self.parts {
            BatchParts::Single { cell, .. } => cell.take().expect(BATCH_WAIT_MSG),
            fanout @ BatchParts::Fanout { .. } => {
                let mut out = Vec::new();
                BatchHandle { parts: fanout }.wait_into(&mut out);
                out
            }
        }
    }

    /// [`Self::wait`] into a caller-owned buffer: appends every
    /// response to `out` and returns the engine's internal vectors to
    /// their pools, so a caller reusing `out` completes a warm
    /// single-shard batch without a single allocation on either side.
    /// (A cross-shard batch allocates modest merge bookkeeping; the
    /// responses themselves are still refcount bumps.)
    pub fn wait_into(self, out: &mut Vec<QueryResponse>) {
        match self.parts {
            BatchParts::Single { cell, inner } => {
                let mut got = cell.take().expect(BATCH_WAIT_MSG);
                out.append(&mut got);
                inner.resp_pool.put(got);
            }
            BatchParts::Fanout { parts, route, core } => {
                let mut got: Vec<(u32, Vec<QueryResponse>, usize)> = parts
                    .into_iter()
                    .map(|(s, cell)| (s, cell.take().expect(BATCH_WAIT_MSG), 0usize))
                    .collect();
                out.reserve(route.len());
                for &s in &route {
                    let (_, answers, cursor) = got
                        .iter_mut()
                        .find(|(sid, _, _)| *sid == s)
                        .expect("every routed shard answered");
                    out.push(answers[*cursor].clone());
                    *cursor += 1;
                }
                for (s, answers, _) in got {
                    core.shards[s as usize].resp_pool.put(answers);
                }
                core.route_pool.put(route);
            }
        }
    }
}

/// Engine-shard router: a splitmix64 finalizer over the query vertex,
/// range-reduced by widening multiply (exact for any shard count, not
/// just powers of two). Deliberately a *different* mixer family than
/// the `DefaultHasher` (SipHash) inside [`ShardedCache`], so
/// engine-shard routing cannot correlate with cache-sub-shard
/// placement and concentrate one shard's keys onto one cache slice —
/// regression-tested by `router_and_cache_hashes_decorrelate`.
// scs-contract: no-alloc, no-panic, no-block — routing runs on the
// submitter for every request; it is pure integer mixing by
// construction and must stay so.
fn route_of(vertex: Vertex, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let mut x = (vertex.index() as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    ((x as u128 * n_shards as u128) >> 64) as usize
}

/// Best-effort CPU pinning: confines the calling worker thread to the
/// CPU set `{c : c ≡ shard (mod n_shards)}`, so each shard's workers
/// share cache/NUMA locality and shards don't migrate onto each
/// other's cores. Linux-only (`sched_setaffinity` via a std-only FFI
/// shim — no crate dependency); failure is ignored (a restricted
/// cpuset or exotic kernel just leaves the scheduler in charge), and
/// on other platforms it is a no-op — sharding still isolates queues,
/// caches and arenas.
#[cfg(target_os = "linux")]
fn pin_worker(shard: usize, n_shards: usize) {
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16]; // cpu_set_t-sized: 1024 CPUs
    let cpus = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(mask.len() * 64);
    let mut any = false;
    let mut c = shard;
    while c < cpus {
        mask[c / 64] |= 1 << (c % 64);
        any = true;
        c += n_shards;
    }
    if !any {
        // Fewer CPUs than shards: leave this shard unpinned rather
        // than pinning it to an empty set (which would fail anyway).
        return;
    }
    // SAFETY: `mask` is a live, properly sized local; the kernel only
    // reads `size_of_val(&mask)` bytes from it. pid 0 means "the calling
    // thread", so no other thread's state is touched, and a failing call
    // (bad mask, restricted cpuset) just leaves the affinity unchanged.
    unsafe {
        sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_worker(_shard: usize, _n_shards: usize) {}

/// What the engine handle holds above its shards: the routing table,
/// cross-shard pools and the aggregate-stats state. Shards never see
/// it — all cross-shard coordination (installs, stats, batch fan-out)
/// goes through the handle.
struct EngineCore {
    shards: Vec<Arc<Inner>>,
    /// Pool for [`BatchParts::Fanout`] route vectors, so warm
    /// cross-shard batches reuse their slot→shard maps.
    route_pool: VecPool<u32>,
    started: Instant,
    /// Baseline of the last [`QueryEngine::stats_window`] call. Off the
    /// serving path entirely — only stats readers lock it.
    window: Mutex<WindowBase>,
    /// Serializes [`QueryEngine::install`]: installs fan out shard by
    /// shard, and serializing them keeps every shard's epoch sequence
    /// identical — which is what lets `install` return *the* new epoch
    /// and flights/caches reason about "the" current epoch per key.
    install_lock: Mutex<()>,
    /// Configured slow-ring capacity: the cross-shard slow-query merge
    /// keeps the worst this-many entries.
    slow_ring: usize,
}

/// Cross-shard cumulative totals plus the per-shard rows, computed by
/// one fold over the shards and shared by [`QueryEngine::stats`],
/// [`QueryEngine::stats_window`] and [`QueryEngine::render_metrics`].
struct Agg {
    workers: usize,
    completed: u64,
    coalesced: u64,
    batches: u64,
    batched: u64,
    splits: u64,
    sub_batches: u64,
    cache: CacheStats,
    epoch: u64,
    service: HistSnapshot,
    telem: TelemetrySnapshot,
    scratch_bytes: usize,
    arena_bytes: usize,
    allocs_avoided: u64,
    arena_recycled: u64,
    per_shard: Vec<ShardStats>,
    slow: Vec<SlowQuery>,
}

impl EngineCore {
    fn aggregate(&self) -> Agg {
        let mut agg = Agg {
            workers: 0,
            completed: 0,
            coalesced: 0,
            batches: 0,
            batched: 0,
            splits: 0,
            sub_batches: 0,
            cache: CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
                capacity: 0,
                shards: 0,
                evictions: 0,
                invalidated: 0,
            },
            epoch: 0,
            service: HistSnapshot::empty(),
            telem: TelemetrySnapshot::empty(),
            scratch_bytes: 0,
            arena_bytes: 0,
            allocs_avoided: 0,
            arena_recycled: 0,
            per_shard: Vec::with_capacity(self.shards.len()),
            slow: Vec::new(),
        };
        for (i, inner) in self.shards.iter().enumerate() {
            // ordering: Relaxed — statistics reads; the counters are
            // independent and stats() promises no cross-counter snapshot.
            let completed = inner.completed.load(Ordering::Relaxed);
            let coalesced = inner.coalesced.load(Ordering::Relaxed);
            let splits = inner.splits.load(Ordering::Relaxed);
            let cache = inner.cache.stats();
            let hist = inner.hist.snapshot();
            agg.workers += inner.workers;
            agg.completed += completed;
            agg.coalesced += coalesced;
            // ordering: Relaxed — statistics reads, as above.
            agg.batches += inner.batches.load(Ordering::Relaxed);
            agg.batched += inner.batched.load(Ordering::Relaxed);
            agg.splits += splits;
            agg.sub_batches += inner.sub_batches.load(Ordering::Relaxed);
            agg.cache.hits += cache.hits;
            agg.cache.misses += cache.misses;
            agg.cache.entries += cache.entries;
            agg.cache.capacity += cache.capacity;
            agg.cache.shards += cache.shards;
            agg.cache.evictions += cache.evictions;
            agg.cache.invalidated += cache.invalidated;
            // Serialized installs keep every shard at the same epoch;
            // max (not first) stays meaningful even mid-install.
            agg.epoch = agg.epoch.max(inner.snapshot().1);
            agg.service = agg.service.merge(&hist);
            agg.telem = agg.telem.merge(&inner.telemetry.snapshot());
            for s in &inner.scratch {
                // ordering: Relaxed — residency gauges; a submitter that
                // must see its own query's effect is ordered by the
                // reply-cell mutex handoff, not by these loads.
                agg.scratch_bytes += s.bytes.load(Ordering::Relaxed);
                agg.arena_bytes += s.arena_bytes.load(Ordering::Relaxed);
                agg.allocs_avoided += s.allocs_avoided.load(Ordering::Relaxed);
                agg.arena_recycled += s.arena_recycled.load(Ordering::Relaxed);
            }
            agg.per_shard.push(ShardStats {
                shard: i,
                workers: inner.workers,
                completed,
                coalesced,
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                splits,
                p50_us: hist.quantile_us(0.50),
                p99_us: hist.quantile_us(0.99),
                min_sub_batch_effective: inner.effective_min_sub_batch(),
            });
            agg.slow.extend(inner.telemetry.slow_queries());
        }
        // Per-shard rings each hold their shard's worst; the engine's
        // slow list is the global worst `slow_ring` of the union.
        agg.slow.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        agg.slow.truncate(self.slow_ring);
        agg
    }
}

/// The concurrent query-serving engine — since the sharding refactor a
/// thin router over `ServiceConfig::shards` independent shards (see
/// the [module docs](self)); `QueryEngine` remains the primary name.
pub type QueryEngine = ShardedEngine;

/// The sharded query-serving engine. See the [module docs](self).
pub struct ShardedEngine {
    core: Arc<EngineCore>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardedEngine {
    /// Spawns every shard's worker pool and returns the serving handle.
    pub fn start(search: Arc<CommunitySearch>, config: ServiceConfig) -> Self {
        let n_shards = config.shards.max(1);
        let total_workers = config.workers.max(1);
        let arena_slab_edges = config.arena_slab_edges.max(1);
        // Each shard gets a slice of the configured cache budget, so
        // the engine-wide capacity keeps its meaning across shard
        // counts (± the per-slice ≥-1-entry floor).
        let slice_capacity = (config.cache_capacity / n_shards).max(1);
        let now = Instant::now();
        let mut shards = Vec::with_capacity(n_shards);
        let mut handles = Vec::new();
        for s in 0..n_shards {
            // Distribute workers round-robin-ish: the first
            // `total % n` shards absorb the remainder, and every shard
            // runs at least one worker.
            let workers =
                (total_workers / n_shards + usize::from(s < total_workers % n_shards)).max(1);
            let inner = Arc::new(Inner {
                search: RwLock::new((search.clone(), 0)),
                cache: ShardedCache::new(slice_capacity, config.cache_shards),
                inflight: Mutex::new(HashMap::new()),
                queue: JobQueue::new(),
                hist: LatencyHistogram::default(),
                completed: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                batched: AtomicU64::new(0),
                splits: AtomicU64::new(0),
                sub_batches: AtomicU64::new(0),
                idle_workers: AtomicUsize::new(0),
                min_sub_batch: config.min_sub_batch.max(1),
                split_batches: config.split_batches,
                scratch: (0..workers).map(|_| ScratchSlot::default()).collect(),
                reply_pool: ArcPool::new(),
                batch_reply_pool: ArcPool::new(),
                flight_pool: ArcPool::new(),
                shared_pool: ArcPool::new(),
                req_pool: VecPool::new(),
                resp_pool: VecPool::new(),
                workers,
                telemetry: Telemetry::new(config.slow_ring_capacity),
            });
            for i in 0..workers {
                let inner = inner.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("scs-worker-{s}-{i}"))
                        .spawn(move || {
                            if n_shards > 1 {
                                pin_worker(s, n_shards);
                            }
                            // The worker's compute state: workspace, result
                            // arena and staging buffers, reused across every
                            // query it serves and across index epoch swaps
                            // (buffers simply grow on the first query against
                            // a larger installed graph). After warm-up the
                            // steady-state serving path stops allocating.
                            let mut state = WorkerState {
                                kernel: KernelState::new(arena_slab_edges),
                                batch: BatchScratch::default(),
                                sub: SubScratch::default(),
                                rec: StageRecorder::new(),
                            };
                            while let Some(job) = inner.queue.pop(&inner.idle_workers) {
                                // Backstop: a panic in query code must not
                                // shrink the pool. The flight guards have
                                // already poisoned their keys' followers;
                                // abandoning the reply cell makes the
                                // submitter's wait() fail loudly. A submitter
                                // that dropped its handle just doesn't
                                // collect the result.
                                //
                                // Scratch accounting is published *before*
                                // the reply: a submitter that reads stats()
                                // the moment its blocking query returns must
                                // see this worker's workspace and arena.
                                let publish_scratch = |k: &KernelState| {
                                    let slot = &inner.scratch[i];
                                    // ordering: Relaxed — gauge stores; the
                                    // reply-cell mutex handoff that follows
                                    // publishes them to the submitter.
                                    slot.bytes.store(k.ws.heap_bytes(), Ordering::Relaxed);
                                    slot.arena_bytes
                                        .store(k.arena.resident_bytes(), Ordering::Relaxed);
                                    slot.allocs_avoided
                                        // ordering: Relaxed — as above.
                                        .store(k.ws.allocations_avoided(), Ordering::Relaxed);
                                    slot.arena_recycled
                                        // ordering: Relaxed — as above.
                                        .store(k.arena.stats().recycled, Ordering::Relaxed);
                                };
                                match job {
                                    Job::Single(req, reply, enqueued) => {
                                        state.rec.start(enqueued);
                                        let resp = std::panic::catch_unwind(
                                            std::panic::AssertUnwindSafe(|| {
                                                serve_one(
                                                    &inner,
                                                    req,
                                                    &mut state.kernel,
                                                    &mut state.rec,
                                                )
                                            }),
                                        );
                                        publish_scratch(&state.kernel);
                                        // Trace metadata before the response
                                        // moves into the reply cell; the
                                        // record itself happens after the
                                        // reply so the reply stage is real,
                                        // and not at all on a panic (the
                                        // completed counter skips it too).
                                        let meta = resp
                                            .as_ref()
                                            .ok()
                                            .map(|r| (r.epoch, r.cached, r.coalesced));
                                        // Answer and pool the cell in one
                                        // step; the submitter's handle keeps
                                        // it unissuable until wait() is done.
                                        respond_and_pool(&inner.reply_pool, reply, resp.ok());
                                        if let Some((epoch, cached, coalesced)) = meta {
                                            state.rec.mark(Stage::Reply);
                                            inner.telemetry.record(&state.rec.trace(
                                                &req,
                                                epoch,
                                                cached,
                                                coalesced,
                                                Provenance::Single,
                                            ));
                                        }
                                    }
                                    Job::Batch(reqs, reply, enqueued) => {
                                        let resp =
                                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                                || serve_batch(&inner, &reqs, &mut state, enqueued),
                                            ));
                                        publish_scratch(&state.kernel);
                                        inner.req_pool.put(reqs);
                                        respond_and_pool(&inner.batch_reply_pool, reply, resp.ok());
                                    }
                                    Job::Sub(shared) => {
                                        // A panicking chunk already poisoned
                                        // its flights and bumped the owner's
                                        // done-count; the pool survives it.
                                        let _ = std::panic::catch_unwind(
                                            std::panic::AssertUnwindSafe(|| {
                                                run_split_chunks(
                                                    &inner,
                                                    &shared,
                                                    &mut state.kernel,
                                                    &mut state.sub,
                                                )
                                            }),
                                        );
                                        publish_scratch(&state.kernel);
                                    }
                                }
                            }
                        })
                        .expect("spawn worker thread"),
                );
            }
            shards.push(inner);
        }
        let core = Arc::new(EngineCore {
            shards,
            route_pool: VecPool::new(),
            started: now,
            window: Mutex::new(WindowBase::zero(now)),
            install_lock: Mutex::new(()),
            slow_ring: config.slow_ring_capacity,
        });
        ShardedEngine { core, handles }
    }

    /// The shard serving `vertex`'s requests.
    fn shard_for(&self, vertex: Vertex) -> &Arc<Inner> {
        &self.core.shards[route_of(vertex, self.core.shards.len())]
    }

    /// Enqueues a request on the shard its query vertex routes to; the
    /// returned handle yields the response. The reply slot comes from
    /// (and returns to) the shard's pool, so a warm submit+wait
    /// round-trip allocates nothing.
    pub fn submit(&self, req: QueryRequest) -> ResponseHandle {
        let inner = self.shard_for(req.q);
        let cell = match inner.reply_pool.take_free() {
            // A reissued cell may hold the stale value of a submitter
            // that never waited; reset it (refcount 1 ⇒ unobservable).
            Some(cell) => {
                *cell.state.lock().unwrap() = ReplyState::Pending;
                cell
            }
            None => Arc::new(ReplyCell::new()),
        };
        assert!(
            inner
                .queue
                .push(Job::Single(req, cell.clone(), Instant::now())),
            "engine already shut down"
        );
        ResponseHandle { cell }
    }

    /// Enqueues a whole batch as **one** job: one queue round-trip, one
    /// index-snapshot read, one cache lookup per unique key, and
    /// batched kernel calls for the leaders (see
    /// [`scs::CommunitySearch::significant_communities_arena`]). The
    /// handle yields every response in submission order; results are
    /// identical to submitting each request on its own.
    ///
    /// Batching amortizes the per-request fixed costs; when the pool
    /// has idle workers the engine additionally **splits** a large
    /// batch's leader computations into per-worker sub-batches (see the
    /// [module docs](self) and [`ServiceConfig::min_sub_batch`]), so a
    /// single big submitter saturates the pool instead of one thread.
    /// With splitting disabled the whole batch is served by one worker,
    /// which still pays off when requests are individually cheap or the
    /// submitter is one of many concurrent clients keeping the pool
    /// busy.
    ///
    /// With more than one shard the batch is partitioned by the shard
    /// router into per-shard sub-batches — each rides the machinery
    /// above on its own shard (one job, one snapshot read, one batched
    /// kernel call per algorithm *per shard*), and the handle merges
    /// the answers back into submission order. Each per-shard
    /// sub-batch counts one `batches` job in the stats, so a
    /// cross-shard batch over k shards bumps `batches` by k; the
    /// per-request counters (hits, misses, coalesced, completed) stay
    /// submission-mode-invariant because routing is a pure function of
    /// the key.
    pub fn submit_batch(&self, reqs: &[QueryRequest]) -> BatchHandle {
        let take_cell = |inner: &Inner| match inner.batch_reply_pool.take_free() {
            Some(cell) => {
                *cell.state.lock().unwrap() = ReplyState::Pending;
                cell
            }
            None => Arc::new(ReplyCell::new()),
        };
        let shards = &self.core.shards;
        if shards.len() == 1 {
            let inner = &shards[0];
            let mut owned = inner.req_pool.take();
            owned.extend_from_slice(reqs);
            let cell = take_cell(inner);
            assert!(
                inner
                    .queue
                    .push(Job::Batch(owned, cell.clone(), Instant::now())),
                "engine already shut down"
            );
            return BatchHandle {
                parts: BatchParts::Single {
                    cell,
                    inner: inner.clone(),
                },
            };
        }
        // Cross-shard fan-out: partition the batch, preserving relative
        // order inside each shard (so each shard's dedup/counting sees
        // exactly the subsequence a per-shard submitter would send).
        let mut route = self.core.route_pool.take();
        route.extend(reqs.iter().map(|r| route_of(r.q, shards.len()) as u32));
        let mut owned: Vec<Vec<QueryRequest>> =
            shards.iter().map(|inner| inner.req_pool.take()).collect();
        for (&s, req) in route.iter().zip(reqs) {
            owned[s as usize].push(*req);
        }
        let mut parts = Vec::new();
        for (s, sub) in owned.into_iter().enumerate() {
            let inner = &shards[s];
            if sub.is_empty() {
                inner.req_pool.put(sub);
                continue;
            }
            let cell = take_cell(inner);
            assert!(
                inner
                    .queue
                    .push(Job::Batch(sub, cell.clone(), Instant::now())),
                "engine already shut down"
            );
            parts.push((s as u32, cell));
        }
        BatchHandle {
            parts: BatchParts::Fanout {
                parts,
                route,
                core: self.core.clone(),
            },
        }
    }

    /// Submits and waits: one blocking round-trip through the pool.
    pub fn query(&self, req: QueryRequest) -> QueryResponse {
        self.submit(req).wait()
    }

    /// [`Self::submit_batch`] and wait: one blocking round-trip for the
    /// whole batch.
    pub fn query_batch(&self, reqs: &[QueryRequest]) -> Vec<QueryResponse> {
        self.submit_batch(reqs).wait()
    }

    /// [`Self::query_batch`] appending into a caller-reused buffer (see
    /// [`BatchHandle::wait_into`]) — the allocation-free form.
    pub fn query_batch_into(&self, reqs: &[QueryRequest], out: &mut Vec<QueryResponse>) {
        self.submit_batch(reqs).wait_into(out);
    }

    /// Installs a new index snapshot without stopping the workers: bumps
    /// the epoch and invalidates the result cache. Queries already
    /// computing finish on the snapshot they started with (tagged with
    /// the prior epoch). Dropping the cached responses releases their
    /// arena handles, freeing the backing slabs for recycling once no
    /// client holds a response either.
    ///
    /// With multiple shards the install fans out: every shard gets the
    /// new `Arc` replica, bumps its epoch and clears its cache slice,
    /// shard by shard, and the call returns only once the last shard
    /// has published. Installs are serialized against each other, so
    /// all shards step through the same epoch sequence — a mixed-epoch
    /// window exists only *across* shards mid-install, never within
    /// one, and per-key consistency (one key, one shard) is untouched.
    pub fn install(&self, search: Arc<CommunitySearch>) -> u64 {
        let _serial = self.core.install_lock.lock().unwrap();
        let mut epoch = 0;
        for inner in &self.core.shards {
            let mut guard = inner.search.write().unwrap();
            guard.0 = search.clone();
            guard.1 += 1;
            epoch = guard.1;
            // Clear under the write lock: leaders re-check the epoch
            // before caching, so no stale entry can land after this.
            inner.cache.clear();
            drop(guard);
            // Free pooled flights may still hold responses published
            // to now-departed followers; drop them with the cache so
            // their arena slabs recycle too.
            inner.sweep_flights();
            inner.telemetry.note_install();
        }
        epoch
    }

    /// The current `(index snapshot, epoch)` pair (shard 0's replica —
    /// identical across shards outside an in-progress install).
    pub fn current_index(&self) -> (Arc<CommunitySearch>, u64) {
        self.core.shards[0].snapshot()
    }

    /// Number of leader computations currently registered in the
    /// in-flight tables, summed over shards — a diagnostic for tests
    /// and monitoring: at quiescence (no request outstanding anywhere)
    /// this must be 0, or a flight leaked.
    pub fn inflight_len(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|inner| inner.inflight.lock().unwrap().len())
            .sum()
    }

    /// Metrics snapshot since engine start, aggregated across shards:
    /// every total keeps its unsharded meaning (counters sum,
    /// histograms merge, the cache section is the union of the
    /// slices), and `per_shard` carries one row per shard for
    /// imbalance diagnostics.
    pub fn stats(&self) -> ServiceStats {
        let agg = self.core.aggregate();
        let elapsed = self.core.started.elapsed().as_secs_f64().max(1e-9);
        ServiceStats {
            workers: agg.workers,
            completed: agg.completed,
            coalesced: agg.coalesced,
            batches: agg.batches,
            batched: agg.batched,
            splits: agg.splits,
            sub_batches: agg.sub_batches,
            cache: agg.cache,
            epoch: agg.epoch,
            installs: agg.telem.installs,
            stale_publishes: agg.telem.stale_publishes,
            qps: agg.completed as f64 / elapsed,
            mean_us: agg.service.mean_us(),
            p50_us: agg.service.quantile_us(0.50),
            p90_us: agg.service.quantile_us(0.90),
            p99_us: agg.service.quantile_us(0.99),
            max_us: agg.service.max_us(),
            scratch_bytes: agg.scratch_bytes,
            arena_bytes: agg.arena_bytes,
            allocs_avoided: agg.allocs_avoided,
            arena_recycled: agg.arena_recycled,
            stages: agg.telem.stage_summaries(),
            algos: agg.telem.algo_stats(),
            admission: AdmissionStats::default(),
            slow: agg.slow,
            per_shard: agg.per_shard,
        }
    }

    /// Metrics for the window since the previous `stats_window` call
    /// (or engine start, for the first call): counters, rates and
    /// latency quantiles cover only the requests completed inside the
    /// window, so a benchmark can discard warmup by calling this once
    /// after warmup and once after the measured run — the second
    /// snapshot is the steady state.
    ///
    /// Point-in-time fields (workers, epoch, cache residency/capacity,
    /// scratch/arena residency, the cumulative `allocs_avoided` /
    /// `arena_recycled` reuse counters) and the slow-query ring report
    /// current values — residency and worst-ever requests have no
    /// meaningful delta.
    ///
    /// The `per_shard` rows stay cumulative even here — shard balance
    /// is a property of the whole run, and windowed per-shard deltas
    /// would cost a per-shard baseline for marginal insight.
    ///
    /// The slow-query list reports the worst requests *of the window*:
    /// each call re-arms every shard's slow ring (clearing the slots
    /// and the reject threshold), so a fast window following a slow
    /// warmup still surfaces its own spikes instead of losing them
    /// under the warmup's stale threshold.
    ///
    /// If the baseline is found to be *ahead* of the current counters —
    /// any histogram bucket, count or plain counter going backwards,
    /// which proves the counters were replaced or reset mid-window —
    /// the stale baseline is discarded and the window is recomputed
    /// from zero (everything since the reset), rather than returning
    /// saturated per-field deltas whose `count` disagrees with
    /// `Σ buckets` and whose quantiles read the wrong bucket.
    pub fn stats_window(&self) -> ServiceStats {
        let mut base = self.core.window.lock().unwrap();
        let now = Instant::now();
        let agg = self.core.aggregate();
        let regressed = agg.service.regressed_from(&base.service)
            || agg.telem.regressed_from(&base.telem)
            || agg.completed < base.completed
            || agg.coalesced < base.coalesced
            || agg.batches < base.batches
            || agg.batched < base.batched
            || agg.splits < base.splits
            || agg.sub_batches < base.sub_batches
            || agg.cache.hits < base.cache_hits
            || agg.cache.misses < base.cache_misses
            || agg.cache.evictions < base.cache_evictions
            || agg.cache.invalidated < base.cache_invalidated;
        if regressed {
            // Resnapshot: the recorded baseline belongs to storage that
            // no longer backs the counters. Zeroing it makes every
            // subtraction below exact (delta vs. zero ≡ the cumulative
            // values since the reset, which all fall inside this
            // window) and keeps count ≡ Σ buckets for the quantiles.
            *base = WindowBase::zero(base.at);
        }
        let d_service = agg.service.delta(&base.service);
        let d_telem = agg.telem.delta(&base.telem);
        let d_completed = agg.completed.saturating_sub(base.completed);
        let secs = now.saturating_duration_since(base.at).as_secs_f64();
        let stats = ServiceStats {
            workers: agg.workers,
            completed: d_completed,
            coalesced: agg.coalesced.saturating_sub(base.coalesced),
            batches: agg.batches.saturating_sub(base.batches),
            batched: agg.batched.saturating_sub(base.batched),
            splits: agg.splits.saturating_sub(base.splits),
            sub_batches: agg.sub_batches.saturating_sub(base.sub_batches),
            cache: CacheStats {
                hits: agg.cache.hits.saturating_sub(base.cache_hits),
                misses: agg.cache.misses.saturating_sub(base.cache_misses),
                evictions: agg.cache.evictions.saturating_sub(base.cache_evictions),
                invalidated: agg.cache.invalidated.saturating_sub(base.cache_invalidated),
                ..agg.cache
            },
            epoch: agg.epoch,
            installs: d_telem.installs,
            stale_publishes: d_telem.stale_publishes,
            qps: d_completed as f64 / secs.max(1e-9),
            mean_us: d_service.mean_us(),
            p50_us: d_service.quantile_us(0.50),
            p90_us: d_service.quantile_us(0.90),
            p99_us: d_service.quantile_us(0.99),
            max_us: d_service.max_us(),
            scratch_bytes: agg.scratch_bytes,
            arena_bytes: agg.arena_bytes,
            allocs_avoided: agg.allocs_avoided,
            arena_recycled: agg.arena_recycled,
            stages: d_telem.stage_summaries(),
            algos: d_telem.algo_stats(),
            admission: AdmissionStats::default(),
            slow: agg.slow,
            per_shard: agg.per_shard,
        };
        // Re-arm the slow rings for the next window (the worst-of-window
        // list above was already captured by `aggregate`). Without this
        // the reject threshold ratchets up during a slow warmup and a
        // fast measured window records no slow queries at all.
        for inner in &self.core.shards {
            inner.telemetry.reset_slow_window();
        }
        *base = WindowBase {
            at: now,
            service: agg.service,
            telem: agg.telem,
            completed: agg.completed,
            coalesced: agg.coalesced,
            batches: agg.batches,
            batched: agg.batched,
            splits: agg.splits,
            sub_batches: agg.sub_batches,
            cache_hits: agg.cache.hits,
            cache_misses: agg.cache.misses,
            cache_evictions: agg.cache.evictions,
            cache_invalidated: agg.cache.invalidated,
        };
        stats
    }

    /// The engine's metrics in Prometheus text exposition format
    /// (version 0.0.4): every counter and gauge of
    /// [`ServiceStats`] plus the per-algorithm end-to-end and
    /// per-algorithm × per-stage latency histograms. Cumulative since
    /// engine start; scrape-ready (`scs serve-bench --metrics-out`
    /// writes exactly this).
    pub fn render_metrics(&self) -> String {
        self.render_metrics_with(AdmissionStats::default())
    }

    /// [`Self::render_metrics`] with the network front end's admission
    /// counters spliced in — the `scs_admission_*` families are always
    /// emitted (zero for in-process engines), so dashboards keep a
    /// stable shape whether or not `scs serve` fronts the engine.
    pub fn render_metrics_with(&self, admission: AdmissionStats) -> String {
        let agg = self.core.aggregate();
        let mut stats = self.stats();
        stats.admission = admission;
        crate::telemetry::render_prometheus(&stats, &agg.telem)
    }

    /// Records one network-front-end accept window (socket accept →
    /// engine enqueue, µs) into the [`crate::telemetry::Stage::Accept`]
    /// histogram of the shard that will serve `req` — so the stage
    /// breakdown attributes front-end time to the same per-algorithm
    /// plane as the engine-side stages. Only [`crate::Server`] calls
    /// this; the in-process submission paths never touch the stage.
    pub fn record_accept(&self, req: &QueryRequest, accept_us: u64) {
        let shard = route_of(req.q, self.core.shards.len());
        self.core.shards[shard]
            .telemetry
            .record_accept(req.algo, accept_us);
    }

    /// Stops accepting work, drains every shard's queue and joins
    /// every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        for inner in &self.core.shards {
            inner.queue.close();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::figure2_example;
    use scs::Algorithm;

    fn engine(workers: usize) -> QueryEngine {
        QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers,
                cache_capacity: 64,
                cache_shards: 4,
                ..ServiceConfig::default()
            },
        )
    }

    /// Workers advertise idleness once they reach the queue; give a
    /// freshly spawned pool a beat to park so split-engagement
    /// assertions don't race thread startup.
    fn settle() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    #[test]
    fn serves_and_caches() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Peel);
        let first = e.query(req);
        assert!(!first.cached);
        assert_eq!(first.summary.size(), 4);
        assert_eq!(first.summary.min_weight, Some(13.0));
        let second = e.query(req);
        assert!(second.cached);
        assert_eq!(second.summary, first.summary);
        let st = e.stats();
        assert_eq!(st.completed, 2);
        assert_eq!(st.cache.hits, 1);
        assert!(st.scratch_bytes > 0, "worker workspace must be resident");
        e.shutdown();
    }

    #[test]
    fn arena_bytes_published_before_reply() {
        // PR 4 regression class: scratch accounting must be visible to
        // a submitter the moment its blocking query returns — now for
        // the arena too, not just the workspace.
        let e = engine(1);
        let q = e.current_index().0.graph().upper(2);
        e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        let st = e.stats();
        assert!(st.scratch_bytes > 0, "workspace bytes not published");
        assert!(
            st.arena_bytes > 0,
            "arena bytes must be published before the reply"
        );
        // The leader's summary is arena-backed.
        let resp = e.query(QueryRequest::new(q, 1, 1, Algorithm::Peel));
        assert!(matches!(
            resp.summary.store(),
            crate::EdgeStore::Arena(a) if a.pinned()
        ));
        e.shutdown();
    }

    #[test]
    fn distinct_algorithms_get_distinct_cache_slots() {
        let e = engine(1);
        let q = e.current_index().0.graph().upper(2);
        let a = e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        let b = e.query(QueryRequest::new(q, 2, 2, Algorithm::Expand));
        assert!(!a.cached && !b.cached);
        assert_eq!(a.summary, b.summary); // algorithms agree on the answer
        e.shutdown();
    }

    #[test]
    fn install_bumps_epoch_and_invalidates() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Auto);
        let before = e.query(req);
        assert_eq!(before.epoch, 0);
        let epoch = e.install(CommunitySearch::shared(figure2_example()));
        assert_eq!(epoch, 1);
        let after = e.query(req);
        assert!(!after.cached, "install must invalidate the cache");
        assert_eq!(after.epoch, 1);
        assert_eq!(after.summary, before.summary);
        e.shutdown();
    }

    #[test]
    fn unservable_requests_get_empty_answers_and_pool_survives() {
        let e = engine(2);
        let g_vertices = e.current_index().0.graph().n_vertices();
        // Query vertex outside the graph: empty community, no panic.
        let bad = e.query(QueryRequest::new(
            bigraph::Vertex(g_vertices as u32 + 10),
            2,
            2,
            Algorithm::Auto,
        ));
        assert_eq!(bad.summary, crate::CommunitySummary::empty());
        // Zero degree constraint (the index asserts ≥ 1): also empty.
        let q = e.current_index().0.graph().upper(2);
        let zero = e.query(QueryRequest::new(q, 0, 2, Algorithm::Peel));
        assert_eq!(zero.summary, crate::CommunitySummary::empty());
        // The pool is still alive and serving real queries.
        let good = e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        assert_eq!(good.summary.size(), 4);
        e.shutdown();
    }

    #[test]
    fn batch_answers_in_submission_order_and_dedups() {
        let e = engine(2);
        let g = e.current_index().0.graph().clone();
        let q = g.upper(2);
        let other = g.upper(0);
        let reqs = vec![
            QueryRequest::new(q, 2, 2, Algorithm::Peel),
            QueryRequest::new(other, 1, 1, Algorithm::Peel),
            QueryRequest::new(q, 2, 2, Algorithm::Peel), // in-batch duplicate
            QueryRequest::new(q, 2, 2, Algorithm::Expand), // distinct key
        ];
        let resps = e.query_batch(&reqs);
        assert_eq!(resps.len(), 4);
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.request, *req, "answers must keep submission order");
        }
        assert_eq!(resps[0].summary.size(), 4);
        assert_eq!(resps[0].summary, resps[2].summary);
        assert!(!resps[0].cached && !resps[0].coalesced);
        assert!(
            resps[2].cached && !resps[2].coalesced,
            "duplicate key inside a batch is answered like a serial \
             resubmission: a cache hit on the leader's fresh result"
        );
        let st = e.stats();
        assert_eq!(st.completed, 4);
        assert_eq!(st.batches, 1);
        assert_eq!(st.batched, 4);
        assert_eq!(st.coalesced, 0);
        // 3 unique keys miss; the duplicate slot counts as the hit a
        // per-request resubmission would have been.
        assert_eq!(st.cache.misses, 3);
        assert_eq!(st.cache.hits, 1);
        assert_eq!(
            st.cache.hits + st.cache.misses,
            st.completed,
            "every request accounts for exactly one lookup"
        );

        // A second identical batch is all cache hits — one physical
        // lookup per unique key, one *counted* per request.
        let again = e.query_batch(&reqs);
        for (a, b) in resps.iter().zip(&again) {
            assert!(b.cached);
            assert_eq!(a.summary, b.summary);
        }
        let st = e.stats();
        assert_eq!(st.cache.hits, 5);
        assert_eq!(st.completed, 8);
        assert_eq!(st.cache.hits + st.cache.misses, st.completed);
        e.shutdown();
    }

    #[test]
    fn batch_matches_per_request_submission() {
        let e = engine(2);
        let g = e.current_index().0.graph().clone();
        let reqs: Vec<QueryRequest> = (0..g.n_upper())
            .flat_map(|i| {
                [
                    QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel),
                    QueryRequest::new(g.upper(i), 1, 2, Algorithm::Expand),
                ]
            })
            .collect();
        let batched = e.query_batch(&reqs);
        let e2 = engine(2);
        for (req, b) in reqs.iter().zip(&batched) {
            assert_eq!(e2.query(*req).summary, b.summary, "{req:?}");
        }
        e.shutdown();
        e2.shutdown();
    }

    #[test]
    fn batch_counters_match_per_request_submission() {
        // The same request stream with duplicates and repeats, served
        // one-by-one and as one batch on fresh engines, must produce
        // identical ServiceStats — the submission-mode invariance the
        // batch path promises.
        // Few enough unique keys that the 64-entry cache retains them
        // all — the stated precondition of counter invariance (under
        // mid-batch eviction the batch path still answers correctly
        // but may count a duplicate as the hit the entry was when the
        // leader cached it, where per-request resubmission would have
        // missed the evicted key and recomputed).
        let per_request = engine(2);
        let g = per_request.current_index().0.graph().clone();
        let mut reqs: Vec<QueryRequest> = (0..g.n_upper().min(12))
            .map(|i| QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel))
            .collect();
        reqs.push(reqs[0]); // duplicate of a computed key
        reqs.push(reqs[1]);
        for r in &reqs {
            per_request.query(*r);
        }
        let a = per_request.stats();
        per_request.shutdown();

        let batched = engine(2);
        batched.query_batch(&reqs);
        let b = batched.stats();
        batched.shutdown();

        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cache.hits, b.cache.hits, "hit counters drifted");
        assert_eq!(a.cache.misses, b.cache.misses, "miss counters drifted");
        assert_eq!(a.coalesced, b.coalesced, "coalesced counters drifted");
        assert_eq!(b.cache.hits + b.cache.misses, b.completed);
    }

    #[test]
    fn split_batch_matches_unsplit_bit_identically() {
        let split = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 4,
                cache_capacity: 64,
                cache_shards: 4,
                min_sub_batch: 1,
                split_batches: true,
                ..ServiceConfig::default()
            },
        );
        let unsplit = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 4,
                cache_capacity: 64,
                cache_shards: 4,
                min_sub_batch: 1,
                split_batches: false,
                ..ServiceConfig::default()
            },
        );
        settle();
        let g = split.current_index().0.graph().clone();
        let mut reqs: Vec<QueryRequest> = Vec::new();
        for i in 0..g.n_upper() {
            reqs.push(QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel));
            reqs.push(QueryRequest::new(g.upper(i), 1, 1, Algorithm::Expand));
        }
        reqs.push(reqs[0]); // in-batch duplicate rides along
        let a = split.query_batch(&reqs);
        let b = unsplit.query_batch(&reqs);
        assert_eq!(a.len(), reqs.len());
        for ((req, x), y) in reqs.iter().zip(&a).zip(&b) {
            assert_eq!(x.request, *req, "split batch broke submission order");
            assert_eq!(y.request, *req);
            assert_eq!(x.summary, y.summary, "{req:?} diverged under splitting");
            assert_eq!(
                (x.cached, x.coalesced, x.epoch),
                (y.cached, y.coalesced, y.epoch),
                "{req:?} flags diverged under splitting"
            );
        }
        let st = split.stats();
        let su = unsplit.stats();
        assert_eq!(st.splits, 1, "split path must have engaged");
        assert!(st.sub_batches >= 2, "sub_batches={}", st.sub_batches);
        assert_eq!(su.splits, 0, "split disabled by config");
        assert_eq!(su.sub_batches, 0);
        assert_eq!((st.completed, st.coalesced), (su.completed, su.coalesced));
        assert_eq!(
            (st.cache.hits, st.cache.misses),
            (su.cache.hits, su.cache.misses),
            "counters drifted between split and unsplit"
        );
        assert_eq!(split.inflight_len(), 0, "split batch leaked a flight");
        split.shutdown();
        unsplit.shutdown();
    }

    #[test]
    fn many_algorithm_batch_carves_per_algorithm_chunks() {
        // Five algorithms force five single-algorithm chunks even when
        // the fan-out width is smaller; the surplus chunks must queue
        // behind the capped hints (not wake extra workers) and every
        // slot must still be answered in order.
        let e = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 2,
                cache_capacity: 64,
                cache_shards: 4,
                min_sub_batch: 8,
                split_batches: true,
                ..ServiceConfig::default()
            },
        );
        settle();
        let g = e.current_index().0.graph().clone();
        let g = &g;
        let reqs: Vec<QueryRequest> = Algorithm::ALL
            .into_iter()
            .flat_map(|algo| (0..4).map(move |i| QueryRequest::new(g.upper(i), 2, 2, algo)))
            .collect();
        let resps = e.query_batch(&reqs);
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.request, *req, "submission order broken");
        }
        // All algorithms agree on the answer, so every response of one
        // vertex matches regardless of which chunk computed it.
        for chunk in resps.chunks(4) {
            assert_eq!(chunk[0].summary, resps[0].summary);
        }
        let st = e.stats();
        assert_eq!(st.splits, 1);
        assert_eq!(
            st.sub_batches,
            Algorithm::ALL.len() as u64,
            "one chunk per algorithm run"
        );
        assert_eq!(e.inflight_len(), 0);
        e.shutdown();
    }

    #[test]
    fn batch_handles_empty_and_unservable_requests() {
        let e = engine(2);
        assert!(e.query_batch(&[]).is_empty());
        let g_vertices = e.current_index().0.graph().n_vertices();
        let q = e.current_index().0.graph().upper(2);
        let reqs = vec![
            QueryRequest::new(
                bigraph::Vertex(g_vertices as u32 + 3),
                2,
                2,
                Algorithm::Auto,
            ),
            QueryRequest::new(q, 0, 2, Algorithm::Peel),
            QueryRequest::new(q, 2, 2, Algorithm::Peel),
        ];
        let resps = e.query_batch(&reqs);
        assert_eq!(resps[0].summary, crate::CommunitySummary::empty());
        assert_eq!(resps[1].summary, crate::CommunitySummary::empty());
        assert_eq!(resps[2].summary.size(), 4);
        e.shutdown();
    }

    #[test]
    fn batch_sees_installs_like_single_requests() {
        let e = engine(2);
        let q = e.current_index().0.graph().upper(2);
        let req = QueryRequest::new(q, 2, 2, Algorithm::Auto);
        let before = e.query_batch(&[req]);
        assert_eq!(before[0].epoch, 0);
        e.install(CommunitySearch::shared(figure2_example()));
        let after = e.query_batch(&[req]);
        assert!(!after[0].cached, "install must invalidate the cache");
        assert_eq!(after[0].epoch, 1);
        assert_eq!(after[0].summary, before[0].summary);
        e.shutdown();
    }

    #[test]
    fn batch_into_reuses_the_response_buffer() {
        let e = engine(2);
        let g = e.current_index().0.graph().clone();
        let reqs: Vec<QueryRequest> = (0..g.n_upper())
            .map(|i| QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel))
            .collect();
        let mut out = Vec::new();
        e.query_batch_into(&reqs, &mut out);
        assert_eq!(out.len(), reqs.len());
        let direct = e.query_batch(&reqs);
        for ((req, a), b) in reqs.iter().zip(&out).zip(&direct) {
            assert_eq!(a.request, *req);
            assert_eq!(a.summary, b.summary);
        }
        // Appending: a second wait_into extends rather than clobbers.
        e.query_batch_into(&reqs, &mut out);
        assert_eq!(out.len(), 2 * reqs.len());
        e.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let e = engine(3);
        let q = e.current_index().0.graph().upper(0);
        e.query(QueryRequest::new(q, 1, 1, Algorithm::Auto));
        drop(e); // must not hang or leak panicking threads
    }

    #[test]
    fn router_and_cache_hashes_decorrelate() {
        // Keys uniform over vertices must land near-uniform over the
        // joint (engine shard × cache sub-shard) grid: if the two hash
        // families correlated, one engine shard's keys would pile onto
        // few cache sub-shards and its slice would degrade to a couple
        // of lock-contended LRU lists. Tested for a power-of-two and a
        // prime engine-shard count.
        const N: usize = 80_000;
        const CACHE_SHARDS: usize = 16;
        let cache: ShardedCache<QueryRequest, ()> = ShardedCache::new(1024, CACHE_SHARDS);
        for &n_shards in &[4usize, 7] {
            let mut grid = vec![vec![0u32; CACHE_SHARDS]; n_shards];
            for v in 0..N as u32 {
                let req = QueryRequest::new(Vertex(v), 2, 2, Algorithm::Peel);
                grid[route_of(req.q, n_shards)][cache.shard_index(&req)] += 1;
            }
            let expect = (N / (n_shards * CACHE_SHARDS)) as u32;
            for (s, row) in grid.iter().enumerate() {
                // Engine-shard marginal: each shard gets ~1/n of keys.
                let row_total: u32 = row.iter().sum();
                let row_expect = (N / n_shards) as u32;
                assert!(
                    row_total > row_expect / 2 && row_total < row_expect * 2,
                    "engine shard {s}/{n_shards} got {row_total} of {N} keys"
                );
                // Joint cells: no cache sub-shard starves or floods
                // within any engine shard.
                for (c, &count) in row.iter().enumerate() {
                    assert!(
                        count > expect / 2 && count < expect * 2,
                        "cell (engine {s}, cache {c}) got {count}, expected ~{expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn router_covers_every_shard() {
        // The widening-multiply range reduction must reach all shards,
        // including non-power-of-two counts, and stay in bounds.
        for &n in &[1usize, 2, 3, 7, 12] {
            let mut seen = vec![false; n];
            for v in 0..10_000u32 {
                let s = route_of(Vertex(v), n);
                assert!(s < n);
                seen[s] = true;
            }
            assert!(seen.iter().all(|&s| s), "shard starved at n={n}");
        }
    }

    #[test]
    fn sharded_engine_serves_and_aggregates() {
        let e = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 4,
                shards: 3,
                cache_capacity: 768,
                cache_shards: 4,
                ..ServiceConfig::default()
            },
        );
        let g = e.current_index().0.graph().clone();
        // 120 unique keys ≪ capacity: every shard slice retains its
        // whole key share — this test is about routing/aggregation,
        // not eviction (cache.rs covers that).
        let reqs: Vec<QueryRequest> = (0..g.n_upper().min(60))
            .flat_map(|i| {
                [
                    QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel),
                    QueryRequest::new(g.upper(i), 1, 1, Algorithm::Expand),
                ]
            })
            .collect();
        // Cross-shard batch: submission order and results survive the
        // fan-out/merge round-trip.
        let batched = e.query_batch(&reqs);
        assert_eq!(batched.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&batched) {
            assert_eq!(resp.request, *req, "fan-out broke submission order");
            assert!(!resp.cached);
        }
        // Per-request resubmission hits the same shard's cache slice.
        for (req, first) in reqs.iter().zip(&batched) {
            let again = e.query(*req);
            assert!(again.cached, "{req:?} routed away from its cache entry");
            assert_eq!(again.summary, first.summary);
        }
        let st = e.stats();
        assert_eq!(st.per_shard.len(), 3);
        assert_eq!(st.completed, 2 * reqs.len() as u64);
        assert_eq!(
            st.per_shard.iter().map(|s| s.completed).sum::<u64>(),
            st.completed,
            "per-shard rows must sum to the aggregate"
        );
        assert_eq!(
            st.per_shard.iter().map(|s| s.workers).sum::<usize>(),
            st.workers
        );
        assert_eq!(st.cache.hits + st.cache.misses, st.completed);
        // 60 distinct query vertices spread over 3 shards: every
        // shard should have seen work (the router test above proves
        // coverage in the large; this is the end-to-end check).
        assert!(
            st.per_shard.iter().filter(|s| s.completed > 0).count() >= 2,
            "traffic did not spread: {:?}",
            st.per_shard
        );
        // Install fans out: every shard at the new epoch, counted once.
        let epoch = e.install(CommunitySearch::shared(figure2_example()));
        assert_eq!(epoch, 1);
        let st = e.stats();
        assert_eq!(st.epoch, 1);
        assert_eq!(st.installs, 1, "per-shard install fan-out multiply-counted");
        let after = e.query(reqs[0]);
        assert!(!after.cached, "install must clear every cache slice");
        assert_eq!(after.epoch, 1);
        assert_eq!(after.summary, batched[0].summary);
        assert_eq!(e.inflight_len(), 0);
        e.shutdown();
    }

    #[test]
    fn sharded_engine_matches_unsharded_bit_identically() {
        // The quick in-module version of tests/shard_oracle.rs: same
        // requests, 1 vs 3 shards, identical summaries and flags.
        let sharded = QueryEngine::start(
            CommunitySearch::shared(figure2_example()),
            ServiceConfig {
                workers: 3,
                shards: 3,
                cache_capacity: 64,
                cache_shards: 4,
                ..ServiceConfig::default()
            },
        );
        let unsharded = engine(2);
        let g = sharded.current_index().0.graph().clone();
        let mut reqs: Vec<QueryRequest> = (0..g.n_upper())
            .map(|i| QueryRequest::new(g.upper(i), 2, 2, Algorithm::Peel))
            .collect();
        reqs.push(reqs[0]); // duplicate rides along
        let a = sharded.query_batch(&reqs);
        let b = unsharded.query_batch(&reqs);
        for ((req, x), y) in reqs.iter().zip(&a).zip(&b) {
            assert_eq!(x.request, *req);
            assert_eq!(x.summary, y.summary, "{req:?} diverged under sharding");
            assert_eq!(
                (x.cached, x.coalesced, x.epoch),
                (y.cached, y.coalesced, y.epoch),
                "{req:?} flags diverged under sharding"
            );
        }
        let (sa, sb) = (sharded.stats(), unsharded.stats());
        assert_eq!(sa.completed, sb.completed);
        assert_eq!(sa.coalesced, sb.coalesced);
        assert_eq!(
            (sa.cache.hits, sa.cache.misses),
            (sb.cache.hits, sb.cache.misses),
            "counters drifted between sharded and unsharded"
        );
        sharded.shutdown();
        unsharded.shutdown();
    }

    #[test]
    fn min_sub_batch_feedback_respects_the_floor() {
        let e = engine(1);
        // Cold engine: below the sample gate, the configured floor
        // rules (default config floor is 8).
        assert_eq!(e.stats().per_shard.len(), 1);
        assert_eq!(e.stats().per_shard[0].min_sub_batch_effective, 8);
        // Warm it past the gate with unique leader queries (each
        // records one kernel-stage sample).
        let g = e.current_index().0.graph().clone();
        let mut n = 0;
        'outer: for algo in Algorithm::ALL {
            for i in 0..g.n_upper() {
                for (a, b) in [(1usize, 1usize), (1, 2), (2, 1), (2, 2)] {
                    e.query(QueryRequest::new(g.upper(i), a, b, algo));
                    n += 1;
                    if n >= 48 {
                        break 'outer;
                    }
                }
            }
        }
        // figure2 kernels are cheap, so the feedback can only raise
        // the effective value — never drop it below the floor.
        let eff = e.stats().per_shard[0].min_sub_batch_effective;
        assert!(eff >= 8, "effective {eff} fell below the configured floor");
        e.shutdown();
    }

    #[test]
    fn stats_window_resnapshots_on_baseline_regression() {
        // Regression (ISSUE 10, satellite 1): a window baseline that is
        // *ahead* of the live counters (the counters were replaced or
        // reset after the baseline was taken) used to produce saturated
        // per-field deltas — `completed` clamped to 0 while histogram
        // buckets kept nonzero counts, so quantiles read garbage. The
        // fix detects the regression and resnapshots from zero.
        let e = engine(1);
        let q = e.current_index().0.graph().upper(2);
        e.query(QueryRequest::new(q, 2, 2, Algorithm::Peel));
        e.stats_window(); // establish a legitimate baseline
        e.query(QueryRequest::new(q, 3, 2, Algorithm::Peel));
        e.query(QueryRequest::new(q, 2, 1, Algorithm::Peel));
        let live_completed = e.stats().completed;
        // Force the mid-window reset: overwrite the baseline with one
        // recorded from different (busier) storage, exactly what a
        // telemetry-plane swap mid-window looks like to the reader.
        {
            let ahead = LatencyHistogram::default();
            for _ in 0..1000 {
                ahead.record(50);
            }
            let mut base = e.core.window.lock().unwrap();
            base.completed = 1_000_000;
            base.service = ahead.snapshot();
        }
        let w = e.stats_window();
        // The stale baseline is discarded: the window reports everything
        // the counters currently hold (all of it post-"reset"), not a
        // zero count over nonzero buckets.
        assert_eq!(
            w.completed, live_completed,
            "regressed baseline must be resnapshotted, not saturated"
        );
        assert!(w.mean_us > 0.0, "window quantiles must see the samples");
        // And the rollover leaves a sane baseline behind: the next
        // window counts only its own traffic.
        e.query(QueryRequest::new(q, 1, 2, Algorithm::Peel));
        assert_eq!(e.stats_window().completed, 1);
        e.shutdown();
    }

    #[test]
    fn stats_window_rearms_the_slow_ring() {
        // Regression (ISSUE 10, satellite 2), engine-level: each window
        // rollover clears the per-shard slow rings, so a window's slow
        // list holds that window's worst — not warmup's — and the
        // ratcheted reject threshold cannot suppress a later window's
        // spikes.
        // Real queries on figure2 can finish in 0µs (which the ring
        // ignores by design), so drive the shard's telemetry plane with
        // synthetic traces of known latency for determinism.
        let e = engine(1);
        let trace = |q: u32, total_us: u64| crate::telemetry::RequestTrace {
            q,
            alpha: 2,
            beta: 2,
            algo: Algorithm::Peel,
            epoch: 0,
            provenance: Provenance::Single,
            cached: false,
            coalesced: false,
            total_us,
            stages_us: [0; crate::telemetry::N_STAGES],
            touched: 0,
        };
        // Slow warmup fills the ring and ratchets the reject threshold.
        for (q, us) in [(1u32, 10_000u64), (2, 12_000), (3, 14_000)] {
            e.core.shards[0].telemetry.record(&trace(q, us));
        }
        let w1 = e.stats_window();
        assert_eq!(w1.slow.len(), 3, "warmup queries must be retained");
        // Rollover cleared the ring: cumulative stats see none until
        // new traffic arrives...
        assert!(e.stats().slow.is_empty(), "rollover must re-arm the ring");
        // ...and the next window captures its own spike, even though it
        // is far below the warmup latencies the old threshold retained.
        e.core.shards[0].telemetry.record(&trace(9, 500));
        let w2 = e.stats_window();
        assert_eq!(
            w2.slow
                .iter()
                .filter(|s| s.q == 9 && s.total_us == 500)
                .count(),
            1,
            "post-rollover spike lost: {:?}",
            w2.slow
        );
        e.shutdown();
    }
}
