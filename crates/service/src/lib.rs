//! # scs-service — concurrent query serving for significant (α,β)-community search
//!
//! The paper (Wang et al., ICDE 2021) splits community search into an
//! offline index build and an online two-step query precisely so queries
//! can be answered at interactive speed. This crate supplies the serving
//! layer that premise implies: an in-process, std-only query engine that
//! owns a shared [`scs::CommunitySearch`] and answers
//! [`QueryRequest`]s through a fixed pool of worker threads.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──submit──▶ mpsc job queue ──▶ worker 0..N
//!                                           │
//!                         ┌─────────────────┼──────────────────┐
//!                         ▼                 ▼                  ▼
//!                  sharded LRU cache   in-flight table   Arc<CommunitySearch>
//!                  (hit → respond)     (dedup identical  (read-locked slot,
//!                                       concurrent work)  epoch-swappable)
//! ```
//!
//! * [`engine::QueryEngine`] — the worker pool. [`engine::QueryEngine::submit`]
//!   enqueues and returns a handle; [`engine::QueryEngine::query`] blocks.
//! * batch submission — [`engine::QueryEngine::submit_batch`] carries N
//!   requests through the queue as one job: one index-snapshot read, one
//!   cache lookup per unique key, one worker workspace and one batched
//!   kernel call per algorithm for the whole batch
//!   ([`scs::CommunitySearch::significant_communities_in`]), answered in
//!   submission order with results identical to per-request submission.
//! * adaptive batch splitting — when the pool has idle workers, a large
//!   batch's leader computations are carved into per-worker sub-batches
//!   (at most one per [`engine::ServiceConfig::min_sub_batch`] leaders)
//!   and fanned out through the queue, so one big submitter saturates
//!   the pool; results and [`stats::ServiceStats`] counters are
//!   bit-identical to the unsplit path, and `--no-split` /
//!   [`engine::ServiceConfig::split_batches`] turns it off for A/B runs.
//! * [`cache::ShardedCache`] — a power-of-two-sharded, per-shard-locked
//!   LRU keyed by `(q, α, β, algorithm)` with hit/miss counters.
//! * in-flight deduplication — when identical queries race, one worker
//!   computes and the rest wait on the same result (`singleflight`).
//! * [`stats::ServiceStats`] — QPS, p50/p90/p99 latency from a lock-free
//!   log-bucketed histogram, cache hit rate, coalescing counters, plus
//!   scratch/arena residency, allocations-avoided and slab-recycle
//!   counts from the workers' workspaces and arenas.
//! * [`telemetry`] — per-stage latency attribution (queue wait, snapshot
//!   acquire, cache lookup, kernel compute, arena publish, reply) into
//!   per-algorithm × per-stage lock-free histograms, a fixed-capacity
//!   slow-query ring retaining the worst requests with their full stage
//!   breakdown and provenance, and machine-readable exporters:
//!   Prometheus text ([`engine::QueryEngine::render_metrics`]) and the
//!   schema-versioned `BENCH_service.json` bench artifact. Recording is
//!   lock-free and allocation-free, on by default — the counting-
//!   allocator gate runs with telemetry enabled. Windowed snapshots
//!   ([`engine::QueryEngine::stats_window`]) report steady-state rates.
//! * per-worker scratch **and result** reuse — every worker owns a
//!   [`scs::QueryWorkspace`] and a [`bigraph::arena::ResultArena`],
//!   both reused across queries (and across epoch swaps, growing if a
//!   larger graph is installed). Summaries are arena-backed
//!   ([`EdgeStore::Arena`]), responses travel by value, and reply
//!   slots, flights and batch descriptors are pooled, so the
//!   steady-state **warm leader path performs zero heap allocations
//!   end to end** — enforced by the counting-allocator binary
//!   `tests/alloc_free_service.rs`. Slabs recycle when the cache
//!   evicts (or an install clears) the last handle into them; live
//!   handles pin their slab by refcount, with generation tags as the
//!   auditable proof.
//! * epoch swap — [`engine::QueryEngine::install`] atomically replaces
//!   the index (e.g. a [`scs::DynamicIndex::snapshot`] after edge
//!   updates) without stopping the workers; the cache is invalidated and
//!   every response is tagged with the epoch that produced it.
//! * [`replay`] — workload construction (reusing `datasets::workload`)
//!   and a multi-client replay harness, the backing of the
//!   `scs serve-bench` subcommand and the scaling benchmark.
//!
//! ## Example
//!
//! ```
//! use bigraph::GraphBuilder;
//! use scs::{Algorithm, CommunitySearch};
//! use scs_service::{QueryEngine, QueryRequest, ServiceConfig};
//!
//! let mut b = GraphBuilder::new();
//! for u in 0..3 {
//!     for l in 0..3 {
//!         b.add_edge(u, l, if u == 2 && l == 2 { 1.0 } else { 5.0 });
//!     }
//! }
//! let search = CommunitySearch::shared(b.build().unwrap());
//! let q = search.graph().upper(0);
//!
//! let engine = QueryEngine::start(search, ServiceConfig::default());
//! let resp = engine.query(QueryRequest::new(q, 2, 2, Algorithm::Auto));
//! assert_eq!(resp.summary.min_weight, Some(5.0));
//! let again = engine.query(QueryRequest::new(q, 2, 2, Algorithm::Auto));
//! assert!(again.cached);
//! engine.shutdown();
//! ```

// Unsafe is confined to the one module that needs it (see the
// module-level `allow`); everything else in the crate is checked.
#![deny(unsafe_code)]

pub mod batcher;
pub mod cache;
pub mod engine;
pub mod replay;
pub mod server;
pub mod stats;
pub mod telemetry;

pub use batcher::{DeadlineBuckets, FlushCause, TenantQuotas, TokenBucket};
pub use cache::{CacheStats, ShardedCache};
pub use engine::{BatchHandle, QueryEngine, ResponseHandle, ServiceConfig, ShardedEngine};
pub use replay::{
    build_workload, replay, replay_batched, try_build_workload, ReplayReport, WorkloadError,
    WorkloadSpec,
};
pub use server::{Server, ServerHandle};
pub use stats::{AdmissionStats, HistSnapshot, LatencyHistogram, ServiceStats, ShardStats};
pub use telemetry::{
    render_bench_json, render_prometheus, validate_bench_json, validate_prometheus, AlgoStats,
    BenchMeta, LatencySummary, Provenance, SlowQuery, Stage, BENCH_SCHEMA, N_STAGES,
};

use bigraph::arena::ArenaEdges;
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};
use scs::{Algorithm, QueryWorkspace};

/// One community-search query, as accepted by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryRequest {
    /// Query vertex (global id space, either side).
    pub q: Vertex,
    /// Minimum degree for upper vertices.
    pub alpha: u32,
    /// Minimum degree for lower vertices.
    pub beta: u32,
    /// Second-step algorithm.
    pub algo: Algorithm,
}

impl QueryRequest {
    /// Convenience constructor from the usual `usize` parameters.
    ///
    /// # Panics
    /// Panics if `alpha` or `beta` exceeds `u32::MAX` — silently
    /// truncating would serve a different (and likely nonempty) query
    /// than the caller asked for. No real degree constraint comes close.
    pub fn new(q: Vertex, alpha: usize, beta: usize, algo: Algorithm) -> Self {
        QueryRequest {
            q,
            alpha: u32::try_from(alpha).expect("alpha exceeds u32::MAX"),
            beta: u32::try_from(beta).expect("beta exceeds u32::MAX"),
            algo,
        }
    }
}

/// Backing storage of a [`CommunitySummary`]'s edge list: an owned
/// `Vec` (oracle comparisons, tooling, anything without an arena) or a
/// shared view into a [`bigraph::arena::ResultArena`] slab (the serving
/// hot path — cloning is a refcount bump, and the live handle pins its
/// slab against recycling).
#[derive(Debug, Clone)]
pub enum EdgeStore {
    /// Heap-owned edge list.
    Owned(Vec<EdgeId>),
    /// Arena-slab view; see [`bigraph::arena`] for lifetime semantics.
    Arena(ArenaEdges),
}

impl EdgeStore {
    /// The edge ids, whatever the backing.
    pub fn as_slice(&self) -> &[EdgeId] {
        match self {
            EdgeStore::Owned(v) => v,
            EdgeStore::Arena(a) => a.as_slice(),
        }
    }
}

/// An owned, thread-independent description of a query result — the
/// significant (α,β)-community detached from the graph's lifetime so it
/// can be cached and shipped across threads.
///
/// Two summaries are equal iff the underlying communities are identical
/// (same edge set of the same graph, regardless of how the edge list is
/// stored), which is what the oracle tests assert against direct
/// [`scs::CommunitySearch::significant_community`] calls.
#[derive(Debug, Clone)]
pub struct CommunitySummary {
    /// The community's edge ids, sorted (empty result ⇒ empty store).
    edges: EdgeStore,
    /// Upper-side member count.
    pub n_upper: usize,
    /// Lower-side member count.
    pub n_lower: usize,
    /// `f(R)` — the maximised minimum edge weight; `None` for an empty
    /// result.
    pub min_weight: Option<f64>,
}

impl PartialEq for CommunitySummary {
    fn eq(&self, other: &Self) -> bool {
        self.edges() == other.edges()
            && self.n_upper == other.n_upper
            && self.n_lower == other.n_lower
            && self.min_weight == other.min_weight
    }
}

impl CommunitySummary {
    /// Captures a borrowed [`Subgraph`] into an owned summary
    /// (allocating — the path for oracles and one-off callers; the
    /// engine's leader path uses [`Self::from_arena_edges`]).
    pub fn from_subgraph(sub: &Subgraph<'_>) -> Self {
        let (us, ls) = sub.layer_vertices();
        CommunitySummary {
            edges: EdgeStore::Owned(sub.edges().to_vec()),
            n_upper: us.len(),
            n_lower: ls.len(),
            min_weight: sub.min_weight(),
        }
    }

    /// Builds a summary around an arena-stored edge list without
    /// allocating: member counts come from `ws.layer_counts` (reusable
    /// scratch) and the minimum weight from one pass over the edges.
    pub fn from_arena_edges(
        g: &BipartiteGraph,
        edges: ArenaEdges,
        ws: &mut QueryWorkspace,
    ) -> Self {
        let (n_upper, n_lower) = ws.layer_counts(g, edges.as_slice());
        let min_weight = edges
            .as_slice()
            .iter()
            .map(|&e| g.weight(e))
            .min_by(|a, b| a.total_cmp(b));
        CommunitySummary {
            edges: EdgeStore::Arena(edges),
            n_upper,
            n_lower,
            min_weight,
        }
    }

    /// The empty community — what the engine answers for requests no
    /// community can satisfy (query vertex outside the installed graph,
    /// or a zero degree constraint). Allocation-free.
    pub fn empty() -> Self {
        CommunitySummary {
            edges: EdgeStore::Owned(Vec::new()), // contract-ok: capacity-0 construction; Vec::new never touches the heap
            n_upper: 0,
            n_lower: 0,
            min_weight: None,
        }
    }

    /// The community's sorted edge ids.
    pub fn edges(&self) -> &[EdgeId] {
        self.edges.as_slice()
    }

    /// The backing storage (owned vs arena) — exposed so tests can
    /// assert the slab-pinning invariants of arena-backed results.
    pub fn store(&self) -> &EdgeStore {
        &self.edges
    }

    /// Number of edges in the community.
    pub fn size(&self) -> usize {
        self.edges.as_slice().len()
    }
}

/// What the engine hands back for one request.
///
/// Passed **by value**: the summary's edge list lives in shared arena
/// storage (or an empty vec), so cloning a response is a refcount bump
/// plus a few scalar copies — no `Arc<QueryResponse>` box and no deep
/// copy anywhere on the cached or coalesced paths.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The request this answers.
    pub request: QueryRequest,
    /// The community.
    pub summary: CommunitySummary,
    /// `true` if served from the result cache (no recomputation).
    pub cached: bool,
    /// `true` if this thread waited on another in-flight identical query
    /// instead of computing (always `false` when `cached`).
    pub coalesced: bool,
    /// Index epoch that produced the summary (bumped by
    /// [`engine::QueryEngine::install`]).
    pub epoch: u64,
    /// End-to-end service time for this request, microseconds, measured
    /// from dequeue to response (compute or cache lookup, not queueing).
    pub service_us: u64,
}
